//! Parallel experiment-suite runner.
//!
//! Independent simulations are pure functions of their [`ExperimentSpec`]
//! (each run builds its own [`Cluster`](dualpar_cluster::Cluster), event
//! queue, RNG streams, and telemetry), so a suite of them fans out over a
//! scoped worker pool with no shared mutable state. Determinism is a hard
//! guarantee: every run produces a byte-identical serialized report and
//! event trace regardless of `jobs` — only the wall-clock numbers vary.
//!
//! The pool is built from std primitives alone: workers claim entries
//! from a shared work queue (an [`AtomicUsize`] cursor over a claim-order
//! permutation) and deliver `(original_index, result)` over an [`mpsc`]
//! channel, so no locks are held anywhere (the workspace lint bans
//! `std::sync::Mutex`, and the claim/deliver pattern does not want one
//! anyway). Results are re-ordered by input index before returning.
//!
//! [`run_parallel`] claims in *longest-expected-first* order
//! ([`crate::spec::expected_cost`]): the dominant run (`btio_vanilla`,
//! ~65 % of the suite's serial wall) starts immediately while idle workers
//! steal the remaining entries off the shared queue behind it, instead of
//! discovering it last and serializing the tail. Claim order changes
//! *which worker* runs an entry and *when* — never the entry's private
//! simulation — so reports and traces stay byte-identical at every
//! `--jobs` level, including `--jobs 1` (which short-circuits to a plain
//! serial map).

use crate::spec::{build_cluster, expected_cost, ExperimentSpec, ProgramEntry, WorkloadSpec};
use dualpar_cluster::prelude::IoKind;
use dualpar_cluster::{IoStrategy, RunReport, TelemetryLevel};
use dualpar_sim::FxHasher;
use dualpar_workloads::{Btio, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim};
use serde::Serialize;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// One named run of a suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    pub name: String,
    pub spec: ExperimentSpec,
}

impl SuiteEntry {
    pub fn new(name: impl Into<String>, spec: ExperimentSpec) -> Self {
        SuiteEntry {
            name: name.into(),
            spec,
        }
    }
}

/// A finished run: the structured report plus its canonical serialized
/// form (what determinism is judged on) and the measured wall time (the
/// one field that legitimately varies between runs).
#[derive(Debug)]
pub struct SuiteRun {
    pub name: String,
    pub report: RunReport,
    /// `serde_json` rendering of `report`; byte-identical across repeat
    /// runs of the same spec at any `jobs` level.
    pub report_json: String,
    /// The JSONL event trace, captured in memory when the spec asked for
    /// trace-level telemetry; byte-identical across repeat runs too.
    pub trace_jsonl: Option<String>,
    pub wall_secs: f64,
    /// Telemetry level the spec ran at (`"off"`, `"counters"`, `"trace"`).
    pub telemetry: &'static str,
    /// Whether span recording was on — spans add per-event bookkeeping, so
    /// wall-clock numbers from a spans-on run are not comparable to a
    /// spans-off baseline.
    pub spans: bool,
}

/// Execute one entry start-to-finish on the calling thread.
pub fn run_entry(entry: &SuiteEntry) -> SuiteRun {
    let t0 = Instant::now();
    let mut cluster = build_cluster(&entry.spec);
    let report = cluster.run();
    let wall_secs = t0.elapsed().as_secs_f64();
    let trace_jsonl = (entry.spec.cluster.telemetry.level == TelemetryLevel::Trace).then(|| {
        let mut buf = Vec::new();
        cluster
            .export_trace(&mut buf)
            .expect("in-memory trace export cannot fail");
        String::from_utf8(buf).expect("trace is UTF-8 JSONL")
    });
    let report_json = serde_json::to_string_pretty(&report).expect("serialise report");
    SuiteRun {
        name: entry.name.clone(),
        report,
        report_json,
        trace_jsonl,
        wall_secs,
        telemetry: match entry.spec.cluster.telemetry.level {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Trace => "trace",
        },
        spans: entry.spec.cluster.telemetry.spans,
    }
}

/// Order-preserving parallel map over `items` with up to `jobs` worker
/// threads. `f(index, item)` runs exactly once per item; results come
/// back in input order. `jobs <= 1` degenerates to a plain serial map on
/// the calling thread (no pool, identical results by construction).
///
/// A panicking worker propagates its panic out of this call after the
/// scope joins — no result is silently dropped.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let order: Vec<usize> = (0..items.len()).collect();
    parallel_map_in_claim_order(items, jobs, &order, f)
}

/// Like [`parallel_map`], but with priorities: workers claim items in
/// descending `priority` order (ties break toward the earlier index).
/// Results still come back in *input* order — the priority only decides
/// when each item starts, which is what makes longest-first scheduling
/// safe for byte-identity guarantees.
pub fn parallel_map_prioritized<T, R, F>(items: &[T], jobs: usize, priority: &[u64], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_eq!(
        priority.len(),
        items.len(),
        "one priority per item required"
    );
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Stable sort: equal priorities keep their input order.
    order.sort_by_key(|&i| std::cmp::Reverse(priority[i]));
    parallel_map_in_claim_order(items, jobs, &order, f)
}

/// The shared work queue underneath both maps: `claim_order` is the queue
/// content (a permutation of the item indices); workers steal the next
/// unclaimed position with a single `fetch_add` on the cursor. `jobs <= 1`
/// degenerates to a plain serial map over `items` in input order (no pool,
/// identical results by construction — per-item work is independent, so
/// claim order cannot change any result).
///
/// A panicking worker propagates its panic out of this call after the
/// scope joins — no result is silently dropped.
fn parallel_map_in_claim_order<T, R, F>(
    items: &[T],
    jobs: usize,
    claim_order: &[usize],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    debug_assert_eq!(claim_order.len(), items.len());
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                if pos >= claim_order.len() {
                    break;
                }
                let i = claim_order[pos];
                // The receiver outlives the scope, so send only fails if
                // the parent already panicked; stopping is then correct.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in &rx {
            slots[i] = Some(r);
        }
    });
    // Reached only if every worker exited cleanly (a worker panic
    // re-raises when the scope joins, before this line).
    slots
        .into_iter()
        .map(|s| s.expect("every claimed index delivered a result"))
        .collect()
}

/// Run a whole suite, `jobs` entries at a time, claiming entries in
/// longest-expected-first order so the dominant run never serializes the
/// tail. Entry `i` of the result corresponds to entry `i` of the input,
/// whatever order they started or finished in.
pub fn run_parallel(entries: &[SuiteEntry], jobs: usize) -> Vec<SuiteRun> {
    let costs: Vec<u64> = entries.iter().map(|e| expected_cost(&e.spec)).collect();
    parallel_map_prioritized(entries, jobs, &costs, |_, e| run_entry(e))
}

/// Keep the entries whose name contains `filter` (substring match), in
/// their original order. An empty filter keeps everything.
pub fn filter_entries(entries: Vec<SuiteEntry>, filter: &str) -> Vec<SuiteEntry> {
    if filter.is_empty() {
        return entries;
    }
    entries
        .into_iter()
        .filter(|e| e.name.contains(filter))
        .collect()
}

/// Short stable fingerprint of a serialized report, for summaries and
/// serial-twin verification without embedding whole reports.
pub fn report_fingerprint(report_json: &str) -> String {
    let mut h = FxHasher::default();
    h.write(report_json.as_bytes());
    format!("{:016x}", h.finish())
}

/// Machine-readable per-run line of `BENCH_suite.json`.
#[derive(Debug, Serialize)]
pub struct SuiteRunSummary {
    pub name: String,
    /// Wall-clock of this run, as measured inside the pool. Includes any
    /// telemetry/span overhead the spec enabled — check the two flags
    /// below before comparing against runs with different settings.
    pub wall_secs: f64,
    /// Telemetry level the run used (`"off"`, `"counters"`, `"trace"`).
    pub telemetry: &'static str,
    /// True when span recording (the profiler's input) was on for the run.
    pub spans: bool,
    /// Events the simulation processed.
    pub sim_events: u64,
    /// Events per wall-clock second: the engine-throughput figure of merit.
    pub sim_events_per_sec: f64,
    /// Simulated makespan.
    pub sim_end_secs: f64,
    pub aggregate_mbps: f64,
    /// Fingerprint of the serialized report; equal across `--jobs` levels.
    pub report_fingerprint: String,
}

/// Machine-readable output of `dualpar suite` (`BENCH_suite.json`).
#[derive(Debug, Serialize)]
pub struct SuiteSummary {
    /// Format tag for downstream tooling.
    pub schema: &'static str,
    pub jobs: usize,
    /// Wall-clock for the whole suite, fan-out included.
    pub total_wall_secs: f64,
    /// Sum of the individual run walls. With `--verify-serial` these come
    /// from a true serial pass; otherwise they are the walls observed
    /// inside the parallel run, which oversubscription inflates (workers
    /// timeshare cores), so treat the derived speedup as an upper bound.
    pub serial_wall_secs_sum: f64,
    /// `serial_wall_secs_sum / total_wall_secs`: parallel speedup
    /// realised on this machine (bounded by its core count).
    pub speedup_estimate: f64,
    pub runs: Vec<SuiteRunSummary>,
}

pub const SUITE_SCHEMA: &str = "dualpar-bench-suite/v1";

/// Fold finished runs into the summary written to `BENCH_suite.json`.
pub fn summarize(runs: &[SuiteRun], jobs: usize, total_wall_secs: f64) -> SuiteSummary {
    let serial_wall_secs_sum: f64 = runs.iter().map(|r| r.wall_secs).sum();
    SuiteSummary {
        schema: SUITE_SCHEMA,
        jobs,
        total_wall_secs,
        serial_wall_secs_sum,
        speedup_estimate: if total_wall_secs > 0.0 {
            serial_wall_secs_sum / total_wall_secs
        } else {
            0.0
        },
        runs: runs
            .iter()
            .map(|r| SuiteRunSummary {
                name: r.name.clone(),
                wall_secs: r.wall_secs,
                telemetry: r.telemetry,
                spans: r.spans,
                sim_events: r.report.events_processed,
                sim_events_per_sec: if r.wall_secs > 0.0 {
                    r.report.events_processed as f64 / r.wall_secs
                } else {
                    0.0
                },
                sim_end_secs: r.report.sim_end.as_secs_f64(),
                aggregate_mbps: r.report.aggregate_throughput_mbps(),
                report_fingerprint: report_fingerprint(&r.report_json),
            })
            .collect(),
    }
}

/// Suite scale: `Small` keeps every run under a second for smoke tests;
/// `Paper` uses the evaluation's full workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Paper,
}

/// The built-in figure-set suite: each paper benchmark under the vanilla
/// and DualPar strategies, plus a two-program interference pair — the
/// independent single-run configurations behind Figs. 3–5.
pub fn builtin_suite(scale: Scale) -> Vec<SuiteEntry> {
    let cluster = match scale {
        Scale::Small => crate::small_cluster(),
        Scale::Paper => crate::paper_cluster(),
    };
    let shrink = |full: u64, small: u64| match scale {
        Scale::Small => small,
        Scale::Paper => full,
    };
    let nprocs = shrink(64, 16) as usize;
    let strategies = [
        ("vanilla", IoStrategy::Vanilla),
        ("dualpar", IoStrategy::DualParForced),
    ];
    let workloads: Vec<(&str, WorkloadSpec)> = vec![
        (
            "mpiio",
            WorkloadSpec::MpiIoTest(MpiIoTest {
                nprocs,
                file_size: shrink(2 << 30, 32 << 20),
                ..Default::default()
            }),
        ),
        (
            "hpio",
            WorkloadSpec::Hpio(Hpio {
                nprocs,
                region_count: shrink(4096, 256),
                ..Default::default()
            }),
        ),
        (
            "ior",
            WorkloadSpec::IorMpiIo(IorMpiIo {
                nprocs,
                file_size: shrink(16 << 30, 64 << 20),
                ..Default::default()
            }),
        ),
        (
            "noncontig",
            WorkloadSpec::Noncontig(Noncontig {
                nprocs,
                rows: shrink(8192, 512),
                ..Default::default()
            }),
        ),
        (
            "btio",
            WorkloadSpec::Btio(Btio {
                nprocs,
                dataset: shrink(6800 << 20, 16 << 20),
                steps: shrink(40, 4),
                kind: IoKind::Write,
                ..Default::default()
            }),
        ),
        (
            "s3asim",
            WorkloadSpec::S3asim(S3asim {
                nprocs,
                queries: shrink(16, 4),
                db_size: shrink(1 << 30, 64 << 20),
                result_size: shrink(256 << 20, 16 << 20),
                ..Default::default()
            }),
        ),
    ];
    let mut entries = Vec::new();
    for (wname, workload) in &workloads {
        for (sname, strategy) in strategies {
            entries.push(SuiteEntry::new(
                format!("{wname}_{sname}"),
                ExperimentSpec {
                    cluster: cluster.clone(),
                    programs: vec![ProgramEntry {
                        workload: workload.clone(),
                        strategy,
                        start_secs: 0.0,
                    }],
                },
            ));
        }
    }
    // Interference pair (the Fig. 7 shape): two MPI-IO apps sharing the
    // cluster, the second starting mid-flight of the first.
    let pair = |strategy| ProgramEntry {
        workload: WorkloadSpec::MpiIoTest(MpiIoTest {
            nprocs,
            file_size: shrink(1 << 30, 16 << 20),
            ..Default::default()
        }),
        strategy,
        start_secs: 0.0,
    };
    entries.push(SuiteEntry::new(
        "interference_pair",
        ExperimentSpec {
            cluster,
            programs: vec![
                pair(IoStrategy::DualPar),
                ProgramEntry {
                    start_secs: 0.5,
                    ..pair(IoStrategy::DualPar)
                },
            ],
        },
    ));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    // Workers build private clusters, so suite entries only need to cross
    // the spawn boundary; assert the whole entry type stays Send + Sync.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SuiteEntry>();
    };

    #[test]
    fn parallel_map_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..37).collect();
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn prioritized_map_runs_everything_in_input_order() {
        let items: Vec<u64> = (0..23).collect();
        // Priorities deliberately reverse the input order; results must
        // still come back in input order at every jobs level.
        let priority: Vec<u64> = (0..23).map(|i| 100 - i).collect();
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map_prioritized(&items, jobs, &priority, |i, &x| {
                assert_eq!(i as u64, x);
                x + 1
            });
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn suite_costs_put_btio_vanilla_first() {
        // The LPT schedule only helps if the estimator actually ranks the
        // dominant run first; pin that (btio_vanilla is ~65 % of the
        // small suite's serial wall in bench_results/BENCH_suite.json).
        let entries = builtin_suite(Scale::Small);
        let costs: Vec<(String, u64)> = entries
            .iter()
            .map(|e| (e.name.clone(), crate::spec::expected_cost(&e.spec)))
            .collect();
        let max = costs.iter().max_by_key(|(_, c)| *c).expect("non-empty");
        assert_eq!(max.0, "btio_vanilla", "costs: {costs:?}");
        // Sanity: every entry has a nonzero cost so the sort is total.
        assert!(costs.iter().all(|(_, c)| *c > 0));
    }

    #[test]
    fn filter_entries_matches_substrings() {
        let entries = builtin_suite(Scale::Small);
        let total = entries.len();
        let mpiio = filter_entries(builtin_suite(Scale::Small), "mpiio");
        assert_eq!(mpiio.len(), 2);
        assert!(mpiio.iter().all(|e| e.name.contains("mpiio")));
        let all = filter_entries(builtin_suite(Scale::Small), "");
        assert_eq!(all.len(), total);
        let none = filter_entries(entries, "no_such_entry");
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = report_fingerprint("{\"x\":1}");
        assert_eq!(a, report_fingerprint("{\"x\":1}"));
        assert_ne!(a, report_fingerprint("{\"x\":2}"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn small_suite_runs_deterministically_across_jobs() {
        // Three fast entries; the full builtin suite is exercised by the
        // check.sh smoke stage and the integration tests.
        let entries: Vec<SuiteEntry> = builtin_suite(Scale::Small)
            .into_iter()
            .filter(|e| e.name.starts_with("mpiio") || e.name == "interference_pair")
            .collect();
        assert_eq!(entries.len(), 3);
        let serial = run_parallel(&entries, 1);
        let parallel = run_parallel(&entries, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.report_json, p.report_json,
                "{}: report must not depend on --jobs",
                s.name
            );
        }
        let summary = summarize(&parallel, 4, 1.0);
        assert_eq!(summary.schema, SUITE_SCHEMA);
        assert_eq!(summary.runs.len(), 3);
        assert!(summary.runs.iter().all(|r| r.sim_events > 0));
    }
}
