//! Parallel experiment-suite runner.
//!
//! Independent simulations are pure functions of their [`ExperimentSpec`]
//! (each run builds its own [`Cluster`](dualpar_cluster::Cluster), event
//! queue, RNG streams, and telemetry), so a suite of them fans out over a
//! scoped worker pool with no shared mutable state. Determinism is a hard
//! guarantee: every run produces a byte-identical serialized report and
//! event trace regardless of `jobs` — only the wall-clock numbers vary.
//!
//! The pool itself lives in [`dualpar_sim::pool`] (it is shared with the
//! lint file scanner): workers claim entries from a shared work queue and
//! deliver `(original_index, result)` over a channel, so no locks are held
//! anywhere. Results are re-ordered by input index before returning.
//!
//! [`run_parallel`] claims in *longest-expected-first* order
//! ([`crate::spec::expected_cost`]): the dominant run (`btio_vanilla`,
//! ~65 % of the suite's serial wall) starts immediately while idle workers
//! steal the remaining entries off the shared queue behind it, instead of
//! discovering it last and serializing the tail. Claim order changes
//! *which worker* runs an entry and *when* — never the entry's private
//! simulation — so reports and traces stay byte-identical at every
//! `--jobs` level, including `--jobs 1` (which short-circuits to a plain
//! serial map).

use crate::spec::{build_cluster, expected_cost, ExperimentSpec, ProgramEntry, WorkloadSpec};
use dualpar_cluster::prelude::IoKind;
use dualpar_cluster::{IoStrategy, RunReport, TelemetryLevel};
use dualpar_sim::{run_with_deadline, DeadlineError, FxHasher};
pub use dualpar_sim::{parallel_map, parallel_map_prioritized};
use dualpar_workloads::{Btio, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim};
use serde::{Deserialize, Serialize};
use std::hash::Hasher;
use std::time::{Duration, Instant};

/// One named run of a suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    pub name: String,
    pub spec: ExperimentSpec,
}

impl SuiteEntry {
    pub fn new(name: impl Into<String>, spec: ExperimentSpec) -> Self {
        SuiteEntry {
            name: name.into(),
            spec,
        }
    }
}

/// A finished run: the structured report plus its canonical serialized
/// form (what determinism is judged on) and the measured wall time (the
/// one field that legitimately varies between runs).
#[derive(Debug)]
pub struct SuiteRun {
    pub name: String,
    pub report: RunReport,
    /// `serde_json` rendering of `report`; byte-identical across repeat
    /// runs of the same spec at any `jobs` level.
    pub report_json: String,
    /// The JSONL event trace, captured in memory when the spec asked for
    /// trace-level telemetry; byte-identical across repeat runs too.
    pub trace_jsonl: Option<String>,
    pub wall_secs: f64,
    /// Telemetry level the spec ran at (`"off"`, `"counters"`, `"trace"`).
    pub telemetry: &'static str,
    /// Whether span recording was on — spans add per-event bookkeeping, so
    /// wall-clock numbers from a spans-on run are not comparable to a
    /// spans-off baseline.
    pub spans: bool,
}

/// Execute one entry start-to-finish on the calling thread.
pub fn run_entry(entry: &SuiteEntry) -> SuiteRun {
    run_entry_sharded(entry, 1)
}

/// [`run_entry`] on the sharded engine: server event windows execute on a
/// pool of `shards` worker threads inside the run. The report and trace
/// are byte-identical at every `shards` level — the partition into logical
/// shards is fixed by the cluster topology, `shards` only picks where each
/// window executes (see `docs/PERF.md`).
pub fn run_entry_sharded(entry: &SuiteEntry, shards: usize) -> SuiteRun {
    let t0 = Instant::now();
    let mut cluster = build_cluster(&entry.spec);
    let report = cluster.run_sharded(shards);
    let wall_secs = t0.elapsed().as_secs_f64();
    let trace_jsonl = (entry.spec.cluster.telemetry.level == TelemetryLevel::Trace).then(|| {
        let mut buf = Vec::new();
        cluster
            .export_trace(&mut buf)
            .expect("in-memory trace export cannot fail");
        String::from_utf8(buf).expect("trace is UTF-8 JSONL")
    });
    let report_json = serde_json::to_string_pretty(&report).expect("serialise report");
    SuiteRun {
        name: entry.name.clone(),
        report,
        report_json,
        trace_jsonl,
        wall_secs,
        telemetry: match entry.spec.cluster.telemetry.level {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Trace => "trace",
        },
        spans: entry.spec.cluster.telemetry.spans,
    }
}

/// A suite entry that produced no report: it either overran the per-run
/// deadline or its worker panicked. Carries everything the summary needs
/// to still account for the entry.
#[derive(Debug)]
pub struct FailedRun {
    pub name: String,
    /// Human-readable cause, reproduced verbatim in `BENCH_suite.json`.
    pub error: String,
}

/// Outcome of one suite entry under [`run_parallel_with_timeout`].
pub type SuiteRunResult = Result<SuiteRun, FailedRun>;

/// Run a whole suite, `jobs` entries at a time, claiming entries in
/// longest-expected-first order so the dominant run never serializes the
/// tail. Entry `i` of the result corresponds to entry `i` of the input,
/// whatever order they started or finished in.
pub fn run_parallel(entries: &[SuiteEntry], jobs: usize) -> Vec<SuiteRun> {
    run_parallel_with_timeout(entries, jobs, None)
        .into_iter()
        .map(|r| match r {
            Ok(run) => run,
            Err(f) => unreachable!("{}: failure without a deadline configured: {}", f.name, f.error),
        })
        .collect()
}

/// [`run_parallel`] with an optional per-run wall-clock deadline: an entry
/// that overruns `timeout` fails with a reported error instead of hanging
/// the whole suite. The hung simulation's thread is abandoned, not killed
/// (see [`run_with_deadline`]), so a timed-out suite should exit soon
/// after reporting. Without a timeout, entries run directly on the pool
/// workers and a panic propagates as before.
pub fn run_parallel_with_timeout(
    entries: &[SuiteEntry],
    jobs: usize,
    timeout: Option<Duration>,
) -> Vec<SuiteRunResult> {
    run_suite_entries(entries, jobs, timeout, 1, 0)
}

/// One pooled pass over the entries: the building block under
/// [`run_suite_entries`]' retry loop.
fn run_pass(
    entries: &[SuiteEntry],
    jobs: usize,
    timeout: Option<Duration>,
    shards: usize,
) -> Vec<SuiteRunResult> {
    let costs: Vec<u64> = entries.iter().map(|e| expected_cost(&e.spec)).collect();
    parallel_map_prioritized(entries, jobs, &costs, |_, e| {
        let Some(limit) = timeout else {
            return Ok(run_entry_sharded(e, shards));
        };
        // The deadline thread outlives the borrow of `e`, so it gets its
        // own copy of the entry.
        let owned = e.clone();
        match run_with_deadline(move || run_entry_sharded(&owned, shards), limit) {
            Ok(run) => Ok(run),
            Err(DeadlineError::TimedOut) => Err(FailedRun {
                name: e.name.clone(),
                error: format!("timed out after {:.1}s wall-clock", limit.as_secs_f64()),
            }),
            Err(DeadlineError::Panicked) => Err(FailedRun {
                name: e.name.clone(),
                error: "worker panicked before producing a report".into(),
            }),
        }
    })
}

/// The full suite runner behind `dualpar suite`: a pooled pass plus up to
/// `retries` follow-up passes over whichever entries failed (timed out or
/// panicked). Retries change nothing about a run's simulation — a retried
/// entry that completes produces the same byte-identical report it would
/// have produced the first time — they only give transiently overloaded
/// machines another chance before the suite is declared failed. An entry
/// that still fails after every retry keeps its slot, with the attempt
/// count recorded in the error.
pub fn run_suite_entries(
    entries: &[SuiteEntry],
    jobs: usize,
    timeout: Option<Duration>,
    shards: usize,
    retries: u32,
) -> Vec<SuiteRunResult> {
    let mut results = run_pass(entries, jobs, timeout, shards);
    for _ in 0..retries {
        let failed: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_err())
            .map(|(i, _)| i)
            .collect();
        if failed.is_empty() {
            break;
        }
        let again: Vec<SuiteEntry> = failed.iter().map(|&i| entries[i].clone()).collect();
        for (slot, outcome) in failed.into_iter().zip(run_pass(&again, jobs, timeout, shards)) {
            results[slot] = outcome;
        }
    }
    if retries > 0 {
        for r in &mut results {
            if let Err(f) = r {
                f.error = format!("{} (after {} attempts)", f.error, retries + 1);
            }
        }
    }
    results
}

/// Keep the entries whose name matches `filter`, in their original order:
/// substring containment by default, whole-name equality when `exact`. An
/// empty filter keeps everything (even under `exact` — there is nothing to
/// select by).
pub fn filter_entries(entries: Vec<SuiteEntry>, filter: &str, exact: bool) -> Vec<SuiteEntry> {
    if filter.is_empty() {
        return entries;
    }
    entries
        .into_iter()
        .filter(|e| {
            if exact {
                e.name == filter
            } else {
                e.name.contains(filter)
            }
        })
        .collect()
}

/// Parse suite entries from a JSON document: either a whole suite
/// (`{"entries": [{"name": ..., "spec": {...}}, ...]}`) or a bare
/// [`ExperimentSpec`], which becomes a single entry named `fallback_name`.
/// Every spec is schema-migrated and validated on the way in.
pub fn entries_from_spec_json(
    json: &str,
    fallback_name: &str,
) -> Result<Vec<SuiteEntry>, String> {
    let doc: serde::Value =
        serde_json::from_str(json).map_err(|e| format!("invalid spec JSON: {e}"))?;
    let suite_entries = doc
        .as_map()
        .and_then(|m| serde::find_field(m, "entries"))
        .and_then(serde::Value::as_seq);
    let Some(items) = suite_entries else {
        // Not a suite document: parse the whole thing as one experiment.
        let spec = ExperimentSpec::from_json(json)?;
        return Ok(vec![SuiteEntry::new(fallback_name, spec)]);
    };
    let mut entries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let map = item
            .as_map()
            .ok_or_else(|| format!("entries[{i}]: expected an object"))?;
        let name = serde::find_field(map, "name")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| format!("entries[{i}]: missing string field \"name\""))?;
        let spec_value = serde::find_field(map, "spec")
            .ok_or_else(|| format!("entries[{i}] ({name}): missing field \"spec\""))?;
        let spec = ExperimentSpec::from_value(spec_value)
            .map_err(|e| format!("entries[{i}] ({name}): {e}"))?
            .upgrade()
            .map_err(|e| format!("entries[{i}] ({name}): {e}"))?;
        spec.validate()
            .map_err(|e| format!("entries[{i}] ({name}): {e}"))?;
        entries.push(SuiteEntry::new(name, spec));
    }
    if entries.is_empty() {
        return Err("suite document has an empty \"entries\" list".into());
    }
    Ok(entries)
}

/// Short stable fingerprint of a serialized report, for summaries and
/// serial-twin verification without embedding whole reports.
pub fn report_fingerprint(report_json: &str) -> String {
    let mut h = FxHasher::default();
    h.write(report_json.as_bytes());
    format!("{:016x}", h.finish())
}

/// Machine-readable per-run line of `BENCH_suite.json`.
#[derive(Debug, Serialize)]
pub struct SuiteRunSummary {
    pub name: String,
    /// Wall-clock of this run, as measured inside the pool. Includes any
    /// telemetry/span overhead the spec enabled — check the two flags
    /// below before comparing against runs with different settings.
    pub wall_secs: f64,
    /// Telemetry level the run used (`"off"`, `"counters"`, `"trace"`).
    pub telemetry: &'static str,
    /// True when span recording (the profiler's input) was on for the run.
    pub spans: bool,
    /// Events the simulation processed.
    pub sim_events: u64,
    /// Events per wall-clock second: the engine-throughput figure of merit.
    pub sim_events_per_sec: f64,
    /// Simulated makespan.
    pub sim_end_secs: f64,
    pub aggregate_mbps: f64,
    /// Fingerprint of the serialized report; equal across `--jobs` levels.
    pub report_fingerprint: String,
    /// `null` for a completed run; the failure cause (timeout, panic) for
    /// an entry that produced no report — every numeric field above is
    /// zero and the fingerprint empty in that case.
    pub error: Option<String>,
}

/// Machine-readable output of `dualpar suite` (`BENCH_suite.json`).
#[derive(Debug, Serialize)]
pub struct SuiteSummary {
    /// Format tag for downstream tooling.
    pub schema: &'static str,
    pub jobs: usize,
    /// Shard workers each run executed with (`--shards`). Reports are
    /// byte-identical at every level; only wall-clock figures respond.
    pub shards: usize,
    /// Wall-clock for the whole suite, fan-out included.
    pub total_wall_secs: f64,
    /// Sum of the individual run walls. With `--verify-serial` these come
    /// from a true serial pass; otherwise they are the walls observed
    /// inside the parallel run, which oversubscription inflates (workers
    /// timeshare cores), so treat the derived speedup as an upper bound.
    pub serial_wall_secs_sum: f64,
    /// `serial_wall_secs_sum / total_wall_secs`: parallel speedup
    /// realised on this machine (bounded by its core count).
    pub speedup_estimate: f64,
    pub runs: Vec<SuiteRunSummary>,
}

pub const SUITE_SCHEMA: &str = "dualpar-bench-suite/v1";

/// Fold finished runs into the summary written to `BENCH_suite.json`.
pub fn summarize(runs: &[SuiteRun], jobs: usize, total_wall_secs: f64) -> SuiteSummary {
    let serial_wall_secs_sum: f64 = runs.iter().map(|r| r.wall_secs).sum();
    SuiteSummary {
        schema: SUITE_SCHEMA,
        jobs,
        shards: 1,
        total_wall_secs,
        serial_wall_secs_sum,
        speedup_estimate: if total_wall_secs > 0.0 {
            serial_wall_secs_sum / total_wall_secs
        } else {
            0.0
        },
        runs: runs.iter().map(summarize_run).collect(),
    }
}

fn summarize_run(r: &SuiteRun) -> SuiteRunSummary {
    SuiteRunSummary {
        name: r.name.clone(),
        wall_secs: r.wall_secs,
        telemetry: r.telemetry,
        spans: r.spans,
        sim_events: r.report.events_processed,
        sim_events_per_sec: if r.wall_secs > 0.0 {
            r.report.events_processed as f64 / r.wall_secs
        } else {
            0.0
        },
        sim_end_secs: r.report.sim_end.as_secs_f64(),
        aggregate_mbps: r.report.aggregate_throughput_mbps(),
        report_fingerprint: report_fingerprint(&r.report_json),
        error: None,
    }
}

/// [`summarize`] over deadline-aware results: failed entries keep their
/// slot in `runs` with the error recorded and every measurement zeroed,
/// so a partially-failed suite still writes a complete, honest artifact.
pub fn summarize_results(
    results: &[SuiteRunResult],
    jobs: usize,
    total_wall_secs: f64,
) -> SuiteSummary {
    let serial_wall_secs_sum: f64 = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.wall_secs)
        .sum();
    SuiteSummary {
        schema: SUITE_SCHEMA,
        jobs,
        shards: 1,
        total_wall_secs,
        serial_wall_secs_sum,
        speedup_estimate: if total_wall_secs > 0.0 {
            serial_wall_secs_sum / total_wall_secs
        } else {
            0.0
        },
        runs: results
            .iter()
            .map(|r| match r {
                Ok(run) => summarize_run(run),
                Err(f) => SuiteRunSummary {
                    name: f.name.clone(),
                    wall_secs: 0.0,
                    telemetry: "",
                    spans: false,
                    sim_events: 0,
                    sim_events_per_sec: 0.0,
                    sim_end_secs: 0.0,
                    aggregate_mbps: 0.0,
                    report_fingerprint: String::new(),
                    error: Some(f.error.clone()),
                },
            })
            .collect(),
    }
}

/// Suite scale: `Small` keeps every run under a second for smoke tests;
/// `Paper` uses the evaluation's full workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Paper,
}

/// The built-in figure-set suite: each paper benchmark under the vanilla
/// and DualPar strategies, plus a two-program interference pair — the
/// independent single-run configurations behind Figs. 3–5.
pub fn builtin_suite(scale: Scale) -> Vec<SuiteEntry> {
    let cluster = match scale {
        Scale::Small => crate::small_cluster(),
        Scale::Paper => crate::paper_cluster(),
    };
    let shrink = |full: u64, small: u64| match scale {
        Scale::Small => small,
        Scale::Paper => full,
    };
    let nprocs = shrink(64, 16) as usize;
    let strategies = [
        ("vanilla", IoStrategy::Vanilla),
        ("dualpar", IoStrategy::DualParForced),
    ];
    let workloads: Vec<(&str, WorkloadSpec)> = vec![
        (
            "mpiio",
            WorkloadSpec::named(MpiIoTest {
                nprocs,
                file_size: shrink(2 << 30, 32 << 20),
                ..Default::default()
            }),
        ),
        (
            "hpio",
            WorkloadSpec::named(Hpio {
                nprocs,
                region_count: shrink(4096, 256),
                ..Default::default()
            }),
        ),
        (
            "ior",
            WorkloadSpec::named(IorMpiIo {
                nprocs,
                file_size: shrink(16 << 30, 64 << 20),
                ..Default::default()
            }),
        ),
        (
            "noncontig",
            WorkloadSpec::named(Noncontig {
                nprocs,
                rows: shrink(8192, 512),
                ..Default::default()
            }),
        ),
        (
            "btio",
            WorkloadSpec::named(Btio {
                nprocs,
                dataset: shrink(6800 << 20, 16 << 20),
                steps: shrink(40, 4),
                kind: IoKind::Write,
                ..Default::default()
            }),
        ),
        (
            "s3asim",
            WorkloadSpec::named(S3asim {
                nprocs,
                queries: shrink(16, 4),
                db_size: shrink(1 << 30, 64 << 20),
                result_size: shrink(256 << 20, 16 << 20),
                ..Default::default()
            }),
        ),
    ];
    let mut entries = Vec::new();
    for (wname, workload) in &workloads {
        for (sname, strategy) in strategies {
            entries.push(SuiteEntry::new(
                format!("{wname}_{sname}"),
                ExperimentSpec {
                    cluster: cluster.clone(),
                    programs: vec![ProgramEntry {
                        workload: workload.clone(),
                        strategy,
                        start_secs: 0.0,
                    }],
                    ..Default::default()
                },
            ));
        }
    }
    // Interference pair (the Fig. 7 shape): two MPI-IO apps sharing the
    // cluster, the second starting mid-flight of the first.
    let pair = |strategy| ProgramEntry {
        workload: WorkloadSpec::named(MpiIoTest {
            nprocs,
            file_size: shrink(1 << 30, 16 << 20),
            ..Default::default()
        }),
        strategy,
        start_secs: 0.0,
    };
    entries.push(SuiteEntry::new(
        "interference_pair",
        ExperimentSpec {
            cluster,
            programs: vec![
                pair(IoStrategy::DualPar),
                ProgramEntry {
                    start_secs: 0.5,
                    ..pair(IoStrategy::DualPar)
                },
            ],
            ..Default::default()
        },
    ));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    // Workers build private clusters, so suite entries only need to cross
    // the spawn boundary; assert the whole entry type stays Send + Sync.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SuiteEntry>();
    };

    #[test]
    fn parallel_map_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..37).collect();
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn prioritized_map_runs_everything_in_input_order() {
        let items: Vec<u64> = (0..23).collect();
        // Priorities deliberately reverse the input order; results must
        // still come back in input order at every jobs level.
        let priority: Vec<u64> = (0..23).map(|i| 100 - i).collect();
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map_prioritized(&items, jobs, &priority, |i, &x| {
                assert_eq!(i as u64, x);
                x + 1
            });
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn suite_costs_put_btio_vanilla_first() {
        // The LPT schedule only helps if the estimator actually ranks the
        // dominant run first; pin that (btio_vanilla is ~65 % of the
        // small suite's serial wall in bench_results/BENCH_suite.json).
        let entries = builtin_suite(Scale::Small);
        let costs: Vec<(String, u64)> = entries
            .iter()
            .map(|e| (e.name.clone(), crate::spec::expected_cost(&e.spec)))
            .collect();
        let max = costs.iter().max_by_key(|(_, c)| *c).expect("non-empty");
        assert_eq!(max.0, "btio_vanilla", "costs: {costs:?}");
        // Sanity: every entry has a nonzero cost so the sort is total.
        assert!(costs.iter().all(|(_, c)| *c > 0));
    }

    #[test]
    fn filter_entries_matches_substrings() {
        let entries = builtin_suite(Scale::Small);
        let total = entries.len();
        let mpiio = filter_entries(builtin_suite(Scale::Small), "mpiio", false);
        assert_eq!(mpiio.len(), 2);
        assert!(mpiio.iter().all(|e| e.name.contains("mpiio")));
        let all = filter_entries(builtin_suite(Scale::Small), "", false);
        assert_eq!(all.len(), total);
        let none = filter_entries(entries, "no_such_entry", false);
        assert!(none.is_empty());
    }

    #[test]
    fn filter_entries_exact_matches_whole_names() {
        // "mpiio_vanilla" is a substring-mode hit for "mpiio", so exact
        // mode must reject the prefix and accept only the full name.
        let one = filter_entries(builtin_suite(Scale::Small), "mpiio_vanilla", true);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name, "mpiio_vanilla");
        let none = filter_entries(builtin_suite(Scale::Small), "mpiio", true);
        assert!(none.is_empty());
        let all = filter_entries(builtin_suite(Scale::Small), "", true);
        assert_eq!(all.len(), builtin_suite(Scale::Small).len());
    }

    #[test]
    fn entries_from_spec_json_accepts_both_shapes() {
        // A bare experiment becomes one entry under the fallback name.
        let single = serde_json::to_string(&ExperimentSpec::default()).expect("json");
        let entries = entries_from_spec_json(&single, "solo").expect("bare spec loads");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "solo");
        // A suite document yields one entry per element, keeping names.
        let suite = format!(
            r#"{{"entries": [{{"name": "a", "spec": {single}}}, {{"name": "b", "spec": {single}}}]}}"#
        );
        let entries = entries_from_spec_json(&suite, "ignored").expect("suite loads");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a");
        assert_eq!(entries[1].name, "b");
        // Bad documents fail with a located message.
        let broken = r#"{"entries": [{"spec": {}}]}"#;
        let err = entries_from_spec_json(broken, "x").expect_err("missing name");
        assert!(err.contains("entries[0]"), "{err}");
        assert!(entries_from_spec_json(r#"{"entries": []}"#, "x").is_err());
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = report_fingerprint("{\"x\":1}");
        assert_eq!(a, report_fingerprint("{\"x\":1}"));
        assert_ne!(a, report_fingerprint("{\"x\":2}"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn timeout_runner_matches_untimed_results_and_records_failures() {
        let entries: Vec<SuiteEntry> = builtin_suite(Scale::Small)
            .into_iter()
            .filter(|e| e.name.starts_with("mpiio"))
            .collect();
        assert_eq!(entries.len(), 2);
        // A generous deadline changes nothing: same reports as the plain
        // runner, just wrapped in Ok.
        let timed = run_parallel_with_timeout(&entries, 2, Some(Duration::from_secs(600)));
        let plain = run_parallel(&entries, 1);
        for (t, p) in timed.iter().zip(&plain) {
            let t = t.as_ref().expect("well under the deadline");
            assert_eq!(t.name, p.name);
            assert_eq!(t.report_json, p.report_json);
        }
        // A failed entry keeps its slot in the summary with the error
        // recorded and every measurement zeroed.
        let results: Vec<SuiteRunResult> = vec![
            Err(FailedRun {
                name: "hung_entry".into(),
                error: "timed out after 1.0s wall-clock".into(),
            }),
            timed.into_iter().nth(1).expect("two results"),
        ];
        let summary = summarize_results(&results, 2, 1.0);
        assert_eq!(summary.runs.len(), 2);
        let failed = &summary.runs[0];
        assert_eq!(failed.name, "hung_entry");
        assert_eq!(failed.error.as_deref(), Some("timed out after 1.0s wall-clock"));
        assert_eq!(failed.sim_events, 0);
        assert!(failed.report_fingerprint.is_empty());
        let ok = &summary.runs[1];
        assert!(ok.error.is_none());
        assert!(ok.sim_events > 0);
        // Only completed runs contribute to the serial-wall sum.
        assert!((summary.serial_wall_secs_sum - ok.wall_secs).abs() < 1e-12);
    }

    #[test]
    fn small_suite_runs_deterministically_across_jobs() {
        // Three fast entries; the full builtin suite is exercised by the
        // check.sh smoke stage and the integration tests.
        let entries: Vec<SuiteEntry> = builtin_suite(Scale::Small)
            .into_iter()
            .filter(|e| e.name.starts_with("mpiio") || e.name == "interference_pair")
            .collect();
        assert_eq!(entries.len(), 3);
        let serial = run_parallel(&entries, 1);
        let parallel = run_parallel(&entries, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.report_json, p.report_json,
                "{}: report must not depend on --jobs",
                s.name
            );
        }
        let summary = summarize(&parallel, 4, 1.0);
        assert_eq!(summary.schema, SUITE_SCHEMA);
        assert_eq!(summary.runs.len(), 3);
        assert!(summary.runs.iter().all(|r| r.sim_events > 0));
    }
}
