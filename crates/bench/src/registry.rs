//! The open workload registry behind [`crate::spec::WorkloadSpec`].
//!
//! Each benchmark is a [`Workload`] trait object registered under its
//! stable serde tag (the old closed enum's snake_case variant names, so
//! every committed v0 spec keeps parsing). Adding a workload means
//! implementing the trait and appending one [`PresetEntry`] — no enum to
//! edit, no dispatch `match` to grow.
//!
//! The trait collapses what used to be three separate `match`es (file
//! creation in `add_workload`, cost estimation in `workload_cost`, serde
//! dispatch in the enum) into one object: `materialize` creates the
//! workload's backing files on the cluster and compiles its script,
//! `cost` feeds longest-expected-first suite scheduling, and
//! `tag`/`payload` round-trip it through JSON. `reseeded` hands open-loop
//! arrival instances decorrelated copies (only workloads with internal
//! randomness override it).

use dualpar_cluster::Cluster;
use dualpar_mpiio::ProgramScript;
use dualpar_workloads::{
    instance_seed, Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim,
    TraceReplay,
};
use serde::{Deserialize, Serialize, Value};

/// A benchmark workload as a trait object: serializable parameters plus
/// the behaviour the spec layer needs from them.
pub trait Workload: std::fmt::Debug + Send + Sync {
    /// Stable serde tag (the key this workload appears under in spec
    /// JSON).
    fn tag(&self) -> &'static str;

    /// The parameter payload, in the serde stub's value model.
    fn payload(&self) -> Value;

    /// Estimated file requests generated — the suite scheduler's cost
    /// proxy. Only the ordering matters; the estimates are deliberately
    /// crude (no caching/merging/contention modelling).
    fn cost(&self) -> u64;

    /// Reject impossible parameterisations.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// A decorrelated copy for open-loop arrival instance `instance`.
    /// Workloads without internal randomness return a plain clone.
    fn reseeded(&self, _instance: u64) -> Box<dyn Workload> {
        self.clone_box()
    }

    /// Clone through the trait object.
    fn clone_box(&self) -> Box<dyn Workload>;

    /// Create the workload's backing files on `cluster` (names suffixed
    /// with `label` so concurrent instances stay disjoint) and compile the
    /// program script.
    fn materialize(&self, cluster: &mut Cluster, label: &str) -> ProgramScript;
}

macro_rules! preset {
    ($ty:ty, $tag:literal,
     cost: |$cw:ident| $cost:expr,
     materialize: |$mw:ident, $cluster:ident, $label:ident| $mat:expr
     $(, reseeded: |$rw:ident, $inst:ident| $re:expr)?
    ) => {
        impl Workload for $ty {
            fn tag(&self) -> &'static str {
                $tag
            }
            fn payload(&self) -> Value {
                Serialize::to_value(self)
            }
            fn cost(&self) -> u64 {
                let $cw = self;
                $cost
            }
            fn clone_box(&self) -> Box<dyn Workload> {
                Box::new(self.clone())
            }
            $(
                fn reseeded(&self, $inst: u64) -> Box<dyn Workload> {
                    let $rw = self;
                    Box::new($re)
                }
            )?
            fn materialize(&self, $cluster: &mut Cluster, $label: &str) -> ProgramScript {
                let $mw = self;
                $mat
            }
        }
    };
}

preset!(MpiIoTest, "mpi_io_test",
    cost: |w| w.file_size / w.request_size.max(1),
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("mpiio-{label}"), w.file_size);
        w.build(f)
    }
);

preset!(Hpio, "hpio",
    cost: |w| w.nprocs as u64 * w.region_count,
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("hpio-{label}"), w.file_size());
        w.build(f)
    }
);

preset!(IorMpiIo, "ior_mpi_io",
    cost: |w| w.file_size / w.request_size.max(1),
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("ior-{label}"), w.file_size);
        w.build(f)
    }
);

preset!(Noncontig, "noncontig",
    cost: |w| w.rows * w.nprocs as u64,
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("noncontig-{label}"), w.file_size());
        w.build(f)
    }
);

preset!(S3asim, "s3asim",
    cost: |w| w.queries * w.fragments.max(1) * w.nprocs as u64,
    materialize: |w, cluster, label| {
        let db = cluster.create_file(&format!("s3db-{label}"), w.db_size);
        let res = cluster.create_file(&format!("s3res-{label}"), w.result_size);
        w.build(db, res)
    },
    reseeded: |w, instance| S3asim {
        seed: instance_seed(w.seed, instance),
        ..w.clone()
    }
);

preset!(Btio, "btio",
    cost: |w| {
        // BTIO's cell shrinks with the process count, so request count
        // (dataset / cell) is what explodes — the suite's dominant run.
        let passes = if w.verify { 2 } else { 1 };
        passes * w.dataset / w.cell_bytes().max(1)
    },
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("btio-{label}"), w.file_size());
        w.build(f)
    }
);

preset!(Demo, "demo",
    cost: |w| w.file_size / w.segment_size.max(1),
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("demo-{label}"), w.file_size);
        w.build(f)
    }
);

preset!(DependentReader, "dependent_reader",
    cost: |w| w.total_bytes / w.request_size.max(1),
    materialize: |w, cluster, label| {
        let f = cluster.create_file(&format!("dep-{label}"), w.file_size());
        w.build(f)
    },
    reseeded: |w, instance| DependentReader {
        seed: instance_seed(w.seed, instance),
        ..w.clone()
    }
);

preset!(TraceReplay, "trace_replay",
    cost: |w| w.entries.len() as u64,
    materialize: |w, cluster, label| {
        let files: Vec<_> = w
            .required_file_sizes()
            .iter()
            .enumerate()
            .map(|(i, &sz)| cluster.create_file(&format!("trace-{label}-{i}"), sz.max(1)))
            .collect();
        w.build(&files)
    }
);

/// One registry row: a stable tag plus the deserializer that rebuilds the
/// workload from its payload.
pub struct PresetEntry {
    /// The serde tag.
    pub tag: &'static str,
    /// Payload deserializer.
    pub de: fn(&Value) -> Result<Box<dyn Workload>, serde::Error>,
}

fn de<T: Deserialize + Workload + 'static>(v: &Value) -> Result<Box<dyn Workload>, serde::Error> {
    T::from_value(v).map(|w| Box::new(w) as Box<dyn Workload>)
}

/// Every registered preset. Linear scan is fine: specs are parsed once and
/// the table has single digits of rows.
pub static PRESETS: &[PresetEntry] = &[
    PresetEntry { tag: "mpi_io_test", de: de::<MpiIoTest> },
    PresetEntry { tag: "hpio", de: de::<Hpio> },
    PresetEntry { tag: "ior_mpi_io", de: de::<IorMpiIo> },
    PresetEntry { tag: "noncontig", de: de::<Noncontig> },
    PresetEntry { tag: "s3asim", de: de::<S3asim> },
    PresetEntry { tag: "btio", de: de::<Btio> },
    PresetEntry { tag: "demo", de: de::<Demo> },
    PresetEntry { tag: "dependent_reader", de: de::<DependentReader> },
    PresetEntry { tag: "trace_replay", de: de::<TraceReplay> },
];

/// All registered tags, for error messages and docs.
pub fn known_tags() -> Vec<&'static str> {
    PRESETS.iter().map(|p| p.tag).collect()
}

/// Rebuild a preset workload from its tag and payload.
pub fn deserialize_preset(tag: &str, payload: &Value) -> Result<Box<dyn Workload>, serde::Error> {
    match PRESETS.iter().find(|p| p.tag == tag) {
        Some(p) => (p.de)(payload),
        None => Err(serde::Error::custom(format!(
            "unknown workload {tag:?}; known workloads: dsl, {}",
            known_tags().join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_round_trips_via_the_registry() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(MpiIoTest::default()),
            Box::new(Hpio::default()),
            Box::new(IorMpiIo::default()),
            Box::new(Noncontig::default()),
            Box::new(S3asim::default()),
            Box::new(Btio::default()),
            Box::new(Demo::default()),
            Box::new(DependentReader::default()),
            Box::new(TraceReplay::default()),
        ];
        assert_eq!(workloads.len(), PRESETS.len());
        for w in &workloads {
            let back = deserialize_preset(w.tag(), &w.payload()).expect("registry rebuilds");
            assert_eq!(back.tag(), w.tag());
            assert_eq!(back.payload(), w.payload(), "{} payload drifted", w.tag());
            assert_eq!(back.cost(), w.cost());
        }
    }

    #[test]
    fn unknown_tags_report_the_available_set() {
        let err = deserialize_preset("nope", &Value::Null).expect_err("unknown tag");
        let msg = err.to_string();
        assert!(msg.contains("nope"), "{msg}");
        assert!(msg.contains("mpi_io_test"), "{msg}");
        assert!(msg.contains("dsl"), "{msg}");
    }

    #[test]
    fn reseeding_touches_only_seeded_workloads() {
        let s3 = S3asim::default();
        let r = s3.reseeded(3);
        assert_ne!(
            r.payload(),
            s3.payload(),
            "s3asim must decorrelate per instance"
        );
        let mpiio = MpiIoTest::default();
        assert_eq!(
            mpiio.reseeded(3).payload(),
            mpiio.payload(),
            "deterministic workloads reseed to themselves"
        );
    }
}
