//! # dualpar-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md §5 for the index), plus ablation
//! benches for the design choices and criterion micro-benchmarks of the
//! simulator itself.
//!
//! Each harness is a `harness = false` bench target: it runs the relevant
//! simulations, prints the paper-style rows, and writes machine-readable
//! JSON under `bench_results/`.

use dualpar_cluster::{Cluster, ClusterConfig};
use serde::Serialize;
use std::path::PathBuf;

pub mod experiments;
pub mod registry;
pub mod spec;
pub mod suite;

pub use registry::{known_tags, PresetEntry, Workload, PRESETS};
pub use spec::{
    add_workload, build_cluster, expected_cost, workload_cost, ArrivalEntry, ExperimentSpec,
    ProgramEntry, WorkloadSpec, SPEC_VERSION,
};
pub use suite::{
    builtin_suite, entries_from_spec_json, filter_entries, parallel_map, parallel_map_prioritized,
    run_entry, run_parallel, summarize, Scale, SuiteEntry, SuiteRun, SuiteSummary,
};

/// `--jobs N` from the process arguments, defaulting to the machine's
/// available parallelism. Exits with status 2 on a malformed value — user
/// input, so no panics.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        None => default_jobs(),
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("error: --jobs requires a positive integer");
                std::process::exit(2);
            }
        },
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The paper's platform scaled for simulation: nine data servers (as on
/// Darwin), four compute nodes, 64 KB striping, CFQ, GigE.
pub fn paper_cluster() -> ClusterConfig {
    ClusterConfig::default()
}

/// A smaller cluster for quick sanity runs.
pub fn small_cluster() -> ClusterConfig {
    ClusterConfig {
        num_data_servers: 3,
        num_compute_nodes: 2,
        ..ClusterConfig::default()
    }
}

pub fn cluster(cfg: ClusterConfig) -> Cluster {
    Cluster::new(cfg)
}

/// Directory where harnesses drop their JSON results.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → ../../bench_results
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("bench_results");
    std::fs::create_dir_all(&p).expect("create bench_results/");
    p
}

/// Fallible core of [`apply_telemetry_args`], parameterised over the
/// argument list so tests can exercise the error paths. A flag given
/// without a value, a repeated flag, or an unknown telemetry level is an
/// `Err` describing the problem — never a panic, since these are user
/// input, not program bugs. Arguments other than `--telemetry`/`--trace`
/// are ignored (cargo passes harness flags like `--bench` through to
/// `harness = false` targets).
pub fn try_apply_telemetry_args(
    cfg: &mut ClusterConfig,
    args: &[String],
) -> Result<Option<PathBuf>, String> {
    use dualpar_cluster::TelemetryLevel;
    let value_of = |flag: &str| -> Result<Option<&String>, String> {
        let mut hits = args.iter().enumerate().filter(|(_, a)| *a == flag);
        match hits.next() {
            None => Ok(None),
            Some((i, _)) => {
                if hits.next().is_some() {
                    return Err(format!("{flag} given more than once"));
                }
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => Ok(Some(v)),
                    _ => Err(format!("{flag} requires a value")),
                }
            }
        }
    };
    if let Some(level) = value_of("--telemetry")? {
        cfg.telemetry.level = match level.as_str() {
            "off" => TelemetryLevel::Off,
            "counters" => TelemetryLevel::Counters,
            "trace" => TelemetryLevel::Trace,
            other => {
                return Err(format!(
                    "unknown telemetry level {other:?} (expected off|counters|trace)"
                ))
            }
        };
    }
    let path = value_of("--trace")?.map(PathBuf::from);
    if path.is_some() && cfg.telemetry.level != TelemetryLevel::Trace {
        cfg.telemetry.level = TelemetryLevel::Trace;
    }
    Ok(path)
}

/// Parse `--telemetry <off|counters|trace>` and `--trace <path>` from the
/// process arguments (reachable via `cargo bench --bench <name> -- --trace
/// out.jsonl`), apply the level to `cfg`, and return the trace output path
/// if one was requested. `--trace` implies trace-level telemetry.
///
/// On malformed input this prints the problem to stderr and exits with
/// status 2, so a typo'd bench invocation fails loudly instead of silently
/// running with default telemetry.
pub fn apply_telemetry_args(cfg: &mut ClusterConfig) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    match try_apply_telemetry_args(cfg, &args) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Write a finished run's JSONL event trace where `--trace` asked for it.
pub fn export_trace_to(cluster: &Cluster, path: &std::path::Path) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    let mut w = std::io::BufWriter::new(file);
    cluster
        .export_trace(&mut w)
        .unwrap_or_else(|e| panic!("write trace {path:?}: {e}"));
    println!("[trace {}]", path.display());
}

/// Persist a harness's structured output.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialise results");
    std::fs::write(&path, data).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("\n[saved {}]", path.display());
}

/// Emit a gnuplot script plus `.dat` files for an x/y plot with one or
/// more series. Render with `gnuplot bench_results/<name>.gp` (produces
/// `<name>.png`). Points are plotted as dots for scatter-style figures
/// (the paper's LBN traces) and connected when `lines` is true.
pub fn save_gnuplot(
    name: &str,
    title: &str,
    xlabel: &str,
    ylabel: &str,
    lines: bool,
    series: &[(&str, Vec<(f64, f64)>)],
) {
    let dir = results_dir();
    let mut plot_clauses = Vec::new();
    for (label, points) in series {
        let slug: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let dat = dir.join(format!("{name}_{slug}.dat"));
        let mut body = String::new();
        for (x, y) in points {
            body.push_str(&format!("{x} {y}\n"));
        }
        std::fs::write(&dat, body).unwrap_or_else(|e| panic!("write {dat:?}: {e}"));
        let style = if lines { "with linespoints" } else { "with points pt 7 ps 0.3" };
        plot_clauses.push(format!(
            "'{}' {style} title '{label}'",
            dat.file_name().expect("joined path has a file name").to_string_lossy()
        ));
    }
    let gp = dir.join(format!("{name}.gp"));
    let script = format!(
        "set terminal pngcairo size 900,600\nset output '{name}.png'\nset title '{title}'\nset xlabel '{xlabel}'\nset ylabel '{ylabel}'\nset key outside\nplot {}\n",
        plot_clauses.join(", \\\n     ")
    );
    std::fs::write(&gp, script).unwrap_or_else(|e| panic!("write {gp:?}: {e}"));
    println!("[gnuplot {}]", gp.display());
}

/// Print a fixed-width table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let cols: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", cols.join("  "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.ends_with("bench_results"));
        assert!(d.is_dir());
    }

    #[test]
    fn telemetry_args_parse_and_reject() {
        use dualpar_cluster::TelemetryLevel;
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|a| a.to_string()).collect() };

        let mut cfg = small_cluster();
        let out = try_apply_telemetry_args(&mut cfg, &argv(&["bin", "--telemetry", "counters"]));
        assert_eq!(out, Ok(None));
        assert_eq!(cfg.telemetry.level, TelemetryLevel::Counters);

        // --trace implies trace-level telemetry and returns the path.
        let mut cfg = small_cluster();
        let out = try_apply_telemetry_args(&mut cfg, &argv(&["bin", "--trace", "t.jsonl"]));
        assert_eq!(out, Ok(Some(PathBuf::from("t.jsonl"))));
        assert_eq!(cfg.telemetry.level, TelemetryLevel::Trace);

        // Unrelated flags (cargo's --bench) pass through untouched.
        let mut cfg = small_cluster();
        assert_eq!(
            try_apply_telemetry_args(&mut cfg, &argv(&["bin", "--bench"])),
            Ok(None)
        );

        // Error paths: missing value, value swallowed by next flag,
        // unknown level, duplicate flag.
        let mut cfg = small_cluster();
        assert!(try_apply_telemetry_args(&mut cfg, &argv(&["bin", "--telemetry"])).is_err());
        assert!(try_apply_telemetry_args(
            &mut cfg,
            &argv(&["bin", "--trace", "--telemetry", "off"])
        )
        .is_err());
        assert!(
            try_apply_telemetry_args(&mut cfg, &argv(&["bin", "--telemetry", "loud"])).is_err()
        );
        assert!(try_apply_telemetry_args(
            &mut cfg,
            &argv(&["bin", "--telemetry", "off", "--telemetry", "trace"])
        )
        .is_err());
    }

    #[test]
    fn save_and_read_json() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        save_json("selftest", &T { x: 7 });
        let data = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        assert!(data.contains("\"x\": 7"));
        let _ = std::fs::remove_file(results_dir().join("selftest.json"));
    }
}
