//! `dualpar` — run a simulated experiment from a JSON specification.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json
//! cargo run --release -p dualpar-bench --bin dualpar -- --example > spec.json
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json \
//!     --telemetry counters            # fold counters into the report JSON
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json \
//!     --trace events.jsonl            # full event trace as JSON Lines
//! ```
//!
//! A specification names the cluster configuration (all fields optional —
//! defaults are the paper's platform) and a list of programs, each a
//! workload from the benchmark suite plus an I/O strategy and start time:
//!
//! ```json
//! {
//!   "cluster": { "num_data_servers": 9 },
//!   "programs": [
//!     { "workload": { "mpi_io_test": { "nprocs": 64, "file_size": 268435456 } },
//!       "strategy": "DualPar", "start_secs": 0.0 }
//!   ]
//! }
//! ```

use dualpar_cluster::{Cluster, ClusterConfig, IoStrategy, ProgramSpec, TelemetryLevel};
use dualpar_sim::SimTime;
use dualpar_workloads::{Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim, TraceReplay};
use serde::{Deserialize, Serialize};

/// A workload choice, tagged by benchmark name.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkloadSpec {
    MpiIoTest(MpiIoTest),
    Hpio(Hpio),
    IorMpiIo(IorMpiIo),
    Noncontig(Noncontig),
    S3asim(S3asim),
    Btio(Btio),
    Demo(Demo),
    DependentReader(DependentReader),
    TraceReplay(TraceReplay),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramEntry {
    pub workload: WorkloadSpec,
    pub strategy: IoStrategy,
    #[serde(default)]
    pub start_secs: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    #[serde(default)]
    pub cluster: ClusterConfig,
    pub programs: Vec<ProgramEntry>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            cluster: ClusterConfig::default(),
            programs: vec![ProgramEntry {
                workload: WorkloadSpec::MpiIoTest(MpiIoTest {
                    file_size: 256 << 20,
                    ..Default::default()
                }),
                strategy: IoStrategy::DualPar,
                start_secs: 0.0,
            }],
        }
    }
}

fn add_workload(cluster: &mut Cluster, idx: usize, entry: &ProgramEntry) {
    let script = match &entry.workload {
        WorkloadSpec::MpiIoTest(w) => {
            let f = cluster.create_file(&format!("mpiio-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::Hpio(w) => {
            let f = cluster.create_file(&format!("hpio-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::IorMpiIo(w) => {
            let f = cluster.create_file(&format!("ior-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::Noncontig(w) => {
            let f = cluster.create_file(&format!("noncontig-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::S3asim(w) => {
            let db = cluster.create_file(&format!("s3db-{idx}"), w.db_size);
            let res = cluster.create_file(&format!("s3res-{idx}"), w.result_size);
            w.build(db, res)
        }
        WorkloadSpec::Btio(w) => {
            let f = cluster.create_file(&format!("btio-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::Demo(w) => {
            let f = cluster.create_file(&format!("demo-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::DependentReader(w) => {
            let f = cluster.create_file(&format!("dep-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::TraceReplay(w) => {
            let files: Vec<_> = w
                .required_file_sizes()
                .iter()
                .enumerate()
                .map(|(i, &sz)| cluster.create_file(&format!("trace-{idx}-{i}"), sz.max(1)))
                .collect();
            w.build(&files)
        }
    };
    cluster.add_program(
        ProgramSpec::new(script, entry.strategy)
            .starting_at(SimTime::from_secs_f64(entry.start_secs)),
    );
}

/// Pull `--flag value` out of the argument list, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--example") {
        println!(
            "{}",
            serde_json::to_string_pretty(&ExperimentSpec::default()).expect("serialise")
        );
        return;
    }
    let trace_path = take_flag(&mut args, "--trace");
    let telemetry = take_flag(&mut args, "--telemetry").map(|lvl| match lvl.as_str() {
        "off" => TelemetryLevel::Off,
        "counters" => TelemetryLevel::Counters,
        "trace" => TelemetryLevel::Trace,
        other => {
            eprintln!("unknown telemetry level {other:?} (expected off|counters|trace)");
            std::process::exit(2);
        }
    });
    if let Some(unknown) = args.iter().skip(1).find(|a| a.starts_with("--")) {
        eprintln!("unknown flag {unknown} (expected --telemetry, --trace or --example)");
        std::process::exit(2);
    }
    let Some(path) = args.get(1) else {
        eprintln!(
            "usage: dualpar <spec.json> [--telemetry off|counters|trace] [--trace <out.jsonl>]"
        );
        eprintln!("       (or --example to print a spec template)");
        std::process::exit(2);
    };
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut spec: ExperimentSpec = serde_json::from_str(&data).unwrap_or_else(|e| {
        eprintln!("invalid spec: {e}");
        std::process::exit(1);
    });
    if spec.programs.is_empty() {
        eprintln!("spec has no programs");
        std::process::exit(1);
    }
    // Command-line telemetry flags override the spec: --trace needs the
    // full event stream, --telemetry picks the level explicitly.
    if let Some(level) = telemetry {
        spec.cluster.telemetry.level = level;
    }
    if trace_path.is_some() && spec.cluster.telemetry.level != TelemetryLevel::Trace {
        spec.cluster.telemetry.level = TelemetryLevel::Trace;
    }
    let mut cluster = Cluster::new(spec.cluster.clone());
    for (i, entry) in spec.programs.iter().enumerate() {
        add_workload(&mut cluster, i, entry);
    }
    let report = cluster.run();
    if let Some(out) = &trace_path {
        let mut w = std::io::BufWriter::new(std::fs::File::create(out).unwrap_or_else(|e| {
            eprintln!("cannot create {out}: {e}");
            std::process::exit(1);
        }));
        cluster.export_trace(&mut w).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("event trace written to {out}");
    }
    eprintln!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "program", "MB/s", "read MB", "write MB", "time s", "phases"
    );
    for p in &report.programs {
        eprintln!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8}",
            p.name,
            p.throughput_mbps(),
            p.bytes_read as f64 / 1e6,
            p.bytes_written as f64 / 1e6,
            p.elapsed().as_secs_f64(),
            p.phases,
        );
    }
    eprintln!(
        "aggregate {:.1} MB/s over {:.2} s; {} events",
        report.aggregate_throughput_mbps(),
        report.sim_end.as_secs_f64(),
        report.events_processed
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialise report")
    );
}
