//! `dualpar` — run simulated experiments from the command line.
//!
//! Single experiment from a JSON specification:
//!
//! ```sh
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json
//! cargo run --release -p dualpar-bench --bin dualpar -- --example > spec.json
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json \
//!     --telemetry counters            # fold counters into the report JSON
//! cargo run --release -p dualpar-bench --bin dualpar -- experiment.json \
//!     --trace events.jsonl            # full event trace as JSON Lines
//! ```
//!
//! Time-attribution profile of a built-in experiment or a spec (spans
//! forced on; see `docs/PROFILING.md`):
//!
//! ```sh
//! cargo run --release -p dualpar-bench --bin dualpar -- profile quickstart
//! cargo run --release -p dualpar-bench --bin dualpar -- profile interference --folded
//! cargo run --release -p dualpar-bench --bin dualpar -- profile spec.json --json
//! ```
//!
//! Parallel figure-set suite (independent runs fanned over a worker pool;
//! per-run reports are byte-identical at any `--jobs` level):
//!
//! ```sh
//! cargo run --release -p dualpar-bench --bin dualpar -- suite --jobs 4
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --scale paper --out bench_results/BENCH_suite.json
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --verify-serial                 # re-run serially, compare reports
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --filter btio                   # entries whose name contains "btio"
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --filter-exact btio_dualpar     # exactly this entry
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --spec scenario.json            # entries from a JSON spec file
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --timeout-secs 300              # fail (not hang) runs over 5 min
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --timeout-secs 300 --retry 2    # re-run failed entries up to twice
//! cargo run --release -p dualpar-bench --bin dualpar -- suite \
//!     --shards 4                      # sharded engine inside each run
//! ```
//!
//! A specification names the cluster configuration (all fields optional —
//! defaults are the paper's platform), a list of programs — each a workload
//! plus an I/O strategy and start time — and optional open-loop `arrivals`
//! streams. Workloads are either named benchmark presets or `dsl`
//! expressions (see `docs/WORKLOADS.md`):
//!
//! ```json
//! {
//!   "version": 1,
//!   "cluster": { "num_data_servers": 9 },
//!   "programs": [
//!     { "workload": { "mpi_io_test": { "nprocs": 64, "file_size": 268435456 } },
//!       "strategy": "DualPar", "start_secs": 0.0 }
//!   ],
//!   "arrivals": [
//!     { "workload": { "dsl": { "name": "hot", "nprocs": 8,
//!         "expr": { "pattern": { "ops": 64,
//!                                "offsets": { "zipf_hotspot": { "theta": 0.99 } } } } } },
//!       "strategy": "DualPar",
//!       "arrivals": { "process": { "poisson": { "rate_per_sec": 0.5 } },
//!                     "horizon_secs": 10.0, "seed": 7 } }
//!   ]
//! }
//! ```
//!
//! `suite --spec` also accepts a whole-suite document,
//! `{"entries": [{"name": ..., "spec": {...}}, ...]}`.

use dualpar_bench::suite::{
    builtin_suite, entries_from_spec_json, filter_entries, run_entry, run_suite_entries,
    summarize_results, Scale,
};
use dualpar_bench::{build_cluster, ExperimentSpec};
use dualpar_cluster::TelemetryLevel;
use std::time::{Duration, Instant};

/// Pull `--flag value` out of the argument list, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Pull a bare `--flag` out of the argument list. Returns its presence.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn reject_unknown_flags(args: &[String], expected: &str) {
    if let Some(unknown) = args.iter().skip(1).find(|a| a.starts_with("--")) {
        eprintln!("unknown flag {unknown} (expected {expected})");
        std::process::exit(2);
    }
}

/// Pull `--shards N` out of the argument list; defaults to 1 (all event
/// windows execute inline on the calling thread).
fn take_shards(args: &mut Vec<String>) -> usize {
    match take_flag(args, "--shards") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--shards requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("suite") {
        args.remove(1);
        run_suite_command(args);
        return;
    }
    if args.get(1).map(String::as_str) == Some("profile") {
        args.remove(1);
        run_profile_command(args);
        return;
    }
    if take_switch(&mut args, "--example") {
        println!(
            "{}",
            serde_json::to_string_pretty(&ExperimentSpec::default()).expect("serialise")
        );
        return;
    }
    let trace_path = take_flag(&mut args, "--trace");
    let shards = take_shards(&mut args);
    let telemetry = take_flag(&mut args, "--telemetry").map(|lvl| match lvl.as_str() {
        "off" => TelemetryLevel::Off,
        "counters" => TelemetryLevel::Counters,
        "trace" => TelemetryLevel::Trace,
        other => {
            eprintln!("unknown telemetry level {other:?} (expected off|counters|trace)");
            std::process::exit(2);
        }
    });
    reject_unknown_flags(&args, "--telemetry, --trace, --shards or --example");
    let Some(path) = args.get(1) else {
        eprintln!(
            "usage: dualpar <spec.json> [--telemetry off|counters|trace] [--trace <out.jsonl>] [--shards N]"
        );
        eprintln!("       dualpar suite [--jobs N] [--shards N] [--scale small|paper] [--spec <path>] [--out <path>] [--filter <substr>] [--filter-exact <name>] [--timeout-secs S] [--retry N] [--verify-serial]");
        eprintln!("       (or --example to print a spec template)");
        std::process::exit(2);
    };
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    // Parses, schema-migrates (v0 specs load unchanged), and validates.
    let mut spec = ExperimentSpec::from_json(&data).unwrap_or_else(|e| {
        eprintln!("invalid spec: {e}");
        std::process::exit(1);
    });
    // Command-line telemetry flags override the spec: --trace needs the
    // full event stream, --telemetry picks the level explicitly.
    if let Some(level) = telemetry {
        spec.cluster.telemetry.level = level;
    }
    if trace_path.is_some() && spec.cluster.telemetry.level != TelemetryLevel::Trace {
        spec.cluster.telemetry.level = TelemetryLevel::Trace;
    }
    let mut cluster = build_cluster(&spec);
    let report = cluster.run_sharded(shards);
    if let Some(out) = &trace_path {
        let mut w = std::io::BufWriter::new(std::fs::File::create(out).unwrap_or_else(|e| {
            eprintln!("cannot create {out}: {e}");
            std::process::exit(1);
        }));
        cluster.export_trace(&mut w).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("event trace written to {out}");
    }
    eprintln!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "program", "MB/s", "read MB", "write MB", "time s", "phases"
    );
    for p in &report.programs {
        eprintln!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8}",
            p.name,
            p.throughput_mbps(),
            p.bytes_read as f64 / 1e6,
            p.bytes_written as f64 / 1e6,
            p.elapsed().as_secs_f64(),
            p.phases,
        );
    }
    eprintln!(
        "aggregate {:.1} MB/s over {:.2} s; {} events",
        report.aggregate_throughput_mbps(),
        report.sim_end.as_secs_f64(),
        report.events_processed
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialise report")
    );
}

/// `dualpar suite`: run the built-in figure-set suite over a worker pool
/// and write the machine-readable summary to `BENCH_suite.json`.
fn run_suite_command(mut args: Vec<String>) {
    let jobs = match take_flag(&mut args, "--jobs") {
        None => dualpar_bench::default_jobs(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let scale = match take_flag(&mut args, "--scale").as_deref() {
        None | Some("small") => Scale::Small,
        Some("paper") => Scale::Paper,
        Some(other) => {
            eprintln!("unknown scale {other:?} (expected small|paper)");
            std::process::exit(2);
        }
    };
    let shards = take_shards(&mut args);
    let retries = match take_flag(&mut args, "--retry") {
        None => 0,
        Some(v) => match v.parse::<u32>() {
            Ok(n) => n,
            _ => {
                eprintln!("--retry requires a non-negative integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let out_path = take_flag(&mut args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dualpar_bench::results_dir().join("BENCH_suite.json"));
    let spec_path = take_flag(&mut args, "--spec");
    let filter = take_flag(&mut args, "--filter");
    let filter_exact = take_flag(&mut args, "--filter-exact");
    let verify_serial = take_switch(&mut args, "--verify-serial");
    let timeout = match take_flag(&mut args, "--timeout-secs") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
            _ => {
                eprintln!("--timeout-secs requires a positive number of seconds, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    reject_unknown_flags(
        &args,
        "--jobs, --shards, --scale, --spec, --out, --filter, --filter-exact, --timeout-secs, --retry or --verify-serial",
    );
    if args.len() > 1 {
        eprintln!("unexpected argument {:?}", args[1]);
        std::process::exit(2);
    }
    if filter.is_some() && filter_exact.is_some() {
        eprintln!("--filter and --filter-exact are mutually exclusive");
        std::process::exit(2);
    }

    let mut entries = match &spec_path {
        None => builtin_suite(scale),
        Some(path) => {
            let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let stem = std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "spec".to_string());
            entries_from_spec_json(&data, &stem).unwrap_or_else(|e| {
                eprintln!("invalid suite spec {path}: {e}");
                std::process::exit(1);
            })
        }
    };
    let (pattern, exact) = match (&filter, &filter_exact) {
        (Some(f), None) => (f.as_str(), false),
        (None, Some(f)) => (f.as_str(), true),
        _ => ("", false),
    };
    if !pattern.is_empty() {
        let available: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        entries = filter_entries(entries, pattern, exact);
        if entries.is_empty() {
            let flag = if exact { "--filter-exact" } else { "--filter" };
            eprintln!(
                "{flag} {pattern:?} matches no suite entries; available: {}",
                available.join(", ")
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "running {} experiments with --jobs {jobs} --shards {shards}",
        entries.len()
    );
    let t0 = Instant::now();
    let results = run_suite_entries(&entries, jobs, timeout, shards, retries);
    let total_wall = t0.elapsed().as_secs_f64();
    let failed = results.iter().filter(|r| r.is_err()).count();

    let mut serial_walls: Option<Vec<f64>> = None;
    if verify_serial {
        // Serial twin: every report must be byte-identical to the pooled
        // run's, or the suite is rightly declared non-deterministic.
        // Failed (timed-out) entries have no report to compare; they are
        // skipped here and already counted toward the exit status.
        let mut mismatches = 0;
        let mut walls = Vec::with_capacity(entries.len());
        for (entry, pooled) in entries.iter().zip(&results) {
            let Ok(pooled) = pooled else { continue };
            let serial = run_entry(entry);
            if serial.report_json != pooled.report_json {
                eprintln!("DETERMINISM VIOLATION: {} differs from its serial twin", entry.name);
                mismatches += 1;
            }
            walls.push(serial.wall_secs);
        }
        if mismatches > 0 {
            eprintln!("{mismatches} run(s) diverged between --jobs {jobs} and serial");
            std::process::exit(1);
        }
        eprintln!(
            "verify-serial: all {} reports byte-identical",
            results.len() - failed
        );
        serial_walls = Some(walls);
    }

    let mut summary = summarize_results(&results, jobs, total_wall);
    summary.shards = shards;
    if let Some(walls) = serial_walls {
        // Replace the oversubscription-biased in-pool walls with the true
        // serial measurements the verification pass just produced.
        summary.serial_wall_secs_sum = walls.iter().sum();
        summary.speedup_estimate = if total_wall > 0.0 {
            summary.serial_wall_secs_sum / total_wall
        } else {
            0.0
        };
    }
    eprintln!(
        "{:<20} {:>9} {:>12} {:>12} {:>10}",
        "run", "wall s", "sim events", "events/s", "MB/s"
    );
    for r in &summary.runs {
        match &r.error {
            Some(err) => eprintln!("{:<20} FAILED: {err}", r.name),
            None => eprintln!(
                "{:<20} {:>9.3} {:>12} {:>12.0} {:>10.1}",
                r.name, r.wall_secs, r.sim_events, r.sim_events_per_sec, r.aggregate_mbps
            ),
        }
    }
    eprintln!(
        "suite wall {:.2}s, serial-sum {:.2}s, speedup {:.2}x (jobs={})",
        summary.total_wall_secs, summary.serial_wall_secs_sum, summary.speedup_estimate, jobs
    );
    let json = serde_json::to_string_pretty(&summary).expect("serialise summary");
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            });
        }
    }
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    });
    eprintln!("[saved {}]", out_path.display());
    if failed > 0 {
        // The artifact above records each failure; the exit status makes
        // sure no caller mistakes a partial suite for a clean one.
        eprintln!("{failed} run(s) failed (see \"error\" fields in the summary)");
        std::process::exit(1);
    }
}

/// `dualpar profile`: run one experiment with span recording forced on and
/// print its time-attribution profile.
///
/// The target is either a spec file path or a built-in name: `quickstart`
/// (the quickstart example's workload at smoke scale), `interference` (the
/// two-program interference pair), or any suite entry name such as
/// `btio_dualpar`. Output is simulated-time only, so every mode is
/// byte-identical across repeat runs and `--jobs` levels.
///
/// `--text` (default) renders the time-in-state table, per-stage latency
/// quantiles, and critical path. `--folded` prints flamegraph-collapsed
/// stacks (`parent;child self_us`) for standard flamegraph tooling.
/// `--json` prints the full `RunReport` (profile embedded under
/// `span_profile`) — the input format `dualpar-audit trace --baseline`
/// diffs. `--trace <path>` additionally exports the JSONL event trace,
/// with span open/close events mirrored in, for `dualpar-audit trace`.
fn run_profile_command(mut args: Vec<String>) {
    let as_json = take_switch(&mut args, "--json");
    let as_folded = take_switch(&mut args, "--folded");
    let as_text = take_switch(&mut args, "--text");
    if as_json as u8 + as_folded as u8 + as_text as u8 > 1 {
        eprintln!("--json, --text and --folded are mutually exclusive");
        std::process::exit(2);
    }
    let trace_path = take_flag(&mut args, "--trace");
    let shards = take_shards(&mut args);
    reject_unknown_flags(&args, "--json, --text, --folded, --trace or --shards");
    let Some(target) = args.get(1).cloned() else {
        eprintln!("usage: dualpar profile <name|spec.json> [--json|--text|--folded] [--trace <out.jsonl>] [--shards N]");
        eprintln!("       built-in names: quickstart, interference, or any suite entry (e.g. btio_dualpar)");
        std::process::exit(2);
    };
    if args.len() > 2 {
        eprintln!("unexpected argument {:?}", args[2]);
        std::process::exit(2);
    }
    let mut spec = resolve_profile_target(&target);
    spec.cluster.telemetry.spans = true;
    if spec.cluster.telemetry.level == TelemetryLevel::Off {
        // Counters carry the span bookkeeping totals into the report.
        spec.cluster.telemetry.level = TelemetryLevel::Counters;
    }
    if trace_path.is_some() {
        spec.cluster.telemetry.level = TelemetryLevel::Trace;
    }
    let mut cluster = build_cluster(&spec);
    let report = cluster.run_sharded(shards);
    if let Some(out) = &trace_path {
        let mut w = std::io::BufWriter::new(std::fs::File::create(out).unwrap_or_else(|e| {
            eprintln!("cannot create {out}: {e}");
            std::process::exit(1);
        }));
        cluster.export_trace(&mut w).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("event trace written to {out}");
    }
    let profile = report
        .span_profile
        .as_ref()
        .expect("spans were forced on above");
    if as_folded {
        print!("{}", dualpar_cluster::folded(cluster.telemetry().spans()));
    } else if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialise report")
        );
    } else {
        print!("{}", profile.render_text());
    }
}

/// Map a `profile` target to an experiment spec: an existing file parses
/// as a spec; otherwise the name selects a built-in experiment.
fn resolve_profile_target(target: &str) -> ExperimentSpec {
    if std::path::Path::new(target).is_file() {
        let data = std::fs::read_to_string(target).unwrap_or_else(|e| {
            eprintln!("cannot read {target}: {e}");
            std::process::exit(1);
        });
        return ExperimentSpec::from_json(&data).unwrap_or_else(|e| {
            eprintln!("invalid spec: {e}");
            std::process::exit(1);
        });
    }
    let name = match target {
        // The quickstart example's DualPar leg at suite smoke scale.
        "quickstart" => "mpiio_dualpar",
        "interference" => "interference_pair",
        other => other,
    };
    let entries = builtin_suite(Scale::Small);
    match entries.into_iter().find(|e| e.name == name) {
        Some(entry) => entry.spec,
        None => {
            let names: Vec<String> = builtin_suite(Scale::Small)
                .into_iter()
                .map(|e| e.name)
                .collect();
            eprintln!(
                "unknown profile target {target:?}: not a spec file, and not one of \
                 quickstart, interference, {}",
                names.join(", ")
            );
            std::process::exit(2);
        }
    }
}
