//! Experiment specifications: a cluster configuration plus closed-loop
//! programs (workload + I/O strategy + start time) and open-loop arrival
//! streams (workload + strategy + arrival process), serializable to the
//! JSON the `dualpar` CLI consumes and buildable into a ready-to-run
//! [`Cluster`]. Shared by the CLI, the parallel suite runner, and the
//! determinism tests.
//!
//! ## Schema versions
//!
//! `version` 0 (implicit — the field was introduced together with the
//! `arrivals` section) is the original closed-enum schema: `cluster` +
//! `programs` only. Version 1 adds `version` itself and `arrivals`.
//! [`ExperimentSpec::upgrade`] migrates v0 documents in place — workload
//! tags are unchanged between the closed enum and the preset registry, so
//! the upgrade is purely a version stamp — and rejects versions newer than
//! [`SPEC_VERSION`]. Always parse user JSON through
//! [`ExperimentSpec::from_json`], which upgrades and validates.

use crate::registry::{deserialize_preset, Workload};
use dualpar_cluster::{Cluster, ClusterConfig, IoStrategy, ProgramSpec};
use dualpar_sim::SimTime;
use dualpar_workloads::{Arrivals, DslWorkload, MpiIoTest};
use serde::{Deserialize, Serialize, Value};

/// The newest spec schema this binary reads and the version it writes.
pub const SPEC_VERSION: u32 = 1;

/// A workload choice: a named benchmark preset from the
/// [registry](crate::registry), or a compositional
/// [DSL](dualpar_workloads::dsl) expression under the `dsl` tag.
#[derive(Debug)]
pub enum WorkloadSpec {
    /// A registered benchmark preset (tagged by its registry name).
    Named(Box<dyn Workload>),
    /// A DSL workload (tagged `dsl`).
    Dsl(DslWorkload),
}

impl WorkloadSpec {
    /// Wrap a preset workload.
    pub fn named(w: impl Workload + 'static) -> Self {
        WorkloadSpec::Named(Box::new(w))
    }

    /// Wrap a DSL workload.
    pub fn dsl(w: DslWorkload) -> Self {
        WorkloadSpec::Dsl(w)
    }

    /// The serde tag this workload serializes under.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkloadSpec::Named(w) => w.tag(),
            WorkloadSpec::Dsl(_) => "dsl",
        }
    }

    /// Estimated file requests generated (suite scheduling cost proxy).
    pub fn cost(&self) -> u64 {
        match self {
            WorkloadSpec::Named(w) => w.cost(),
            WorkloadSpec::Dsl(d) => d.cost(),
        }
    }

    /// Reject impossible parameterisations.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadSpec::Named(w) => w.validate(),
            WorkloadSpec::Dsl(d) => d.validate(),
        }
    }

    /// A decorrelated copy for open-loop arrival instance `instance`.
    pub fn reseeded(&self, instance: u64) -> Self {
        match self {
            WorkloadSpec::Named(w) => WorkloadSpec::Named(w.reseeded(instance)),
            WorkloadSpec::Dsl(d) => WorkloadSpec::Dsl(d.reseeded(instance)),
        }
    }

    /// Create the workload's backing files on `cluster` (suffixed with
    /// `label`) and compile its program script.
    pub fn materialize(
        &self,
        cluster: &mut Cluster,
        label: &str,
    ) -> dualpar_mpiio::ProgramScript {
        match self {
            WorkloadSpec::Named(w) => w.materialize(cluster, label),
            WorkloadSpec::Dsl(d) => {
                let f = cluster.create_file(&format!("{}-{label}", d.name), d.file_size);
                d.build(f)
            }
        }
    }
}

impl Clone for WorkloadSpec {
    fn clone(&self) -> Self {
        match self {
            WorkloadSpec::Named(w) => WorkloadSpec::Named(w.clone_box()),
            WorkloadSpec::Dsl(d) => WorkloadSpec::Dsl(d.clone()),
        }
    }
}

// Externally tagged, exactly like the old closed enum: `{"<tag>": {...}}`.
// Manual impls because the payload type behind a registry tag is only known
// at runtime.
impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        let payload = match self {
            WorkloadSpec::Named(w) => w.payload(),
            WorkloadSpec::Dsl(d) => d.to_value(),
        };
        Value::Map(vec![(self.tag().to_string(), payload)])
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .filter(|m| m.len() == 1)
            .ok_or_else(|| serde::Error::custom("workload: expected a single-key tagged map"))?;
        let (tag, payload) = &map[0];
        if tag == "dsl" {
            return DslWorkload::from_value(payload).map(WorkloadSpec::Dsl);
        }
        deserialize_preset(tag, payload).map(WorkloadSpec::Named)
    }
}

/// One closed-loop program of an experiment: what to run, how, and when.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramEntry {
    pub workload: WorkloadSpec,
    pub strategy: IoStrategy,
    #[serde(default)]
    pub start_secs: f64,
}

/// One open-loop arrival stream: every arrival of `arrivals` spawns a
/// fresh, decorrelated instance of `workload` under `strategy`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalEntry {
    pub workload: WorkloadSpec,
    pub strategy: IoStrategy,
    pub arrivals: Arrivals,
}

/// A complete experiment: the cluster, its closed-loop programs, and its
/// open-loop arrival streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Schema version; see the [module docs](self). Absent (0) in v0 JSON.
    #[serde(default)]
    pub version: u32,
    #[serde(default)]
    pub cluster: ClusterConfig,
    /// Closed-loop programs. Absent means none — an arrival-only spec.
    #[serde(default)]
    pub programs: Vec<ProgramEntry>,
    /// Open-loop arrival streams (v1+).
    #[serde(default)]
    pub arrivals: Vec<ArrivalEntry>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            version: SPEC_VERSION,
            cluster: ClusterConfig::default(),
            programs: vec![ProgramEntry {
                workload: WorkloadSpec::named(MpiIoTest {
                    file_size: 256 << 20,
                    ..Default::default()
                }),
                strategy: IoStrategy::DualPar,
                start_secs: 0.0,
            }],
            arrivals: Vec::new(),
        }
    }
}

impl ExperimentSpec {
    /// Migrate an older schema to [`SPEC_VERSION`] and reject newer ones.
    /// v0 → v1 is a pure version stamp: workload tags are identical and v0
    /// documents cannot contain `arrivals`.
    pub fn upgrade(mut self) -> Result<Self, String> {
        match self.version {
            0 => {
                self.version = 1;
                Ok(self)
            }
            SPEC_VERSION => Ok(self),
            v => Err(format!(
                "spec version {v} is newer than this binary's v{SPEC_VERSION}; \
                 rebuild or downgrade the spec"
            )),
        }
    }

    /// Reject specs that parse but cannot run.
    pub fn validate(&self) -> Result<(), String> {
        if self.programs.is_empty() && self.arrivals.is_empty() {
            return Err("spec has neither programs nor arrivals".into());
        }
        for (i, p) in self.programs.iter().enumerate() {
            p.workload
                .validate()
                .map_err(|e| format!("programs[{i}]: {e}"))?;
            if p.start_secs < 0.0 || !p.start_secs.is_finite() {
                return Err(format!(
                    "programs[{i}]: start_secs must be finite and >= 0, got {}",
                    p.start_secs
                ));
            }
        }
        for (i, a) in self.arrivals.iter().enumerate() {
            a.workload
                .validate()
                .map_err(|e| format!("arrivals[{i}]: {e}"))?;
            a.arrivals
                .validate()
                .map_err(|e| format!("arrivals[{i}]: {e}"))?;
        }
        Ok(())
    }

    /// Parse, migrate, and validate a spec document — the one entry point
    /// every JSON consumer (CLI, suite loader) should use.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let spec: ExperimentSpec =
            serde_json::from_str(json).map_err(|e| format!("invalid spec JSON: {e}"))?;
        let spec = spec.upgrade()?;
        spec.validate()?;
        Ok(spec)
    }
}

/// Create the workload's files on `cluster` and submit the program.
pub fn add_workload(cluster: &mut Cluster, idx: usize, entry: &ProgramEntry) {
    let script = entry.workload.materialize(cluster, &idx.to_string());
    cluster.add_program(
        ProgramSpec::new(script, entry.strategy)
            .starting_at(SimTime::from_secs_f64(entry.start_secs)),
    );
}

/// Rough relative cost of simulating one workload — see
/// [`Workload::cost`].
pub fn workload_cost(w: &WorkloadSpec) -> u64 {
    w.cost()
}

/// Relative event-count weight of an I/O strategy. Vanilla issues every
/// region synchronously (one network + disk round trip each); DualPar
/// aggregates whole phases into a few large batches, collapsing the event
/// count by orders of magnitude.
fn strategy_weight(s: IoStrategy) -> u64 {
    match s {
        IoStrategy::Vanilla => 8,
        IoStrategy::PrefetchOverlap => 6,
        IoStrategy::Collective => 4,
        IoStrategy::DualPar | IoStrategy::DualParForced => 1,
    }
}

/// Expected relative simulation cost of a whole experiment, for
/// longest-expected-first scheduling. Arrival streams count once per
/// expanded instance. Never zero.
pub fn expected_cost(spec: &ExperimentSpec) -> u64 {
    let programs: u64 = spec
        .programs
        .iter()
        .map(|p| p.workload.cost().max(1) * strategy_weight(p.strategy))
        .sum();
    let arrivals: u64 = spec
        .arrivals
        .iter()
        .map(|a| {
            let instances = a.arrivals.times().len() as u64;
            a.workload.cost().max(1) * strategy_weight(a.strategy) * instances
        })
        .sum();
    programs.saturating_add(arrivals).max(1)
}

/// Build a ready-to-run cluster from a spec. Purely a function of the
/// spec: building the same spec twice yields clusters that simulate
/// identically (the determinism tests rely on this). Arrival streams are
/// expanded here — deterministically, from each stream's own seed — into
/// per-instance programs with labels `a{stream}-{instance}`.
pub fn build_cluster(spec: &ExperimentSpec) -> Cluster {
    let mut cluster = Cluster::new(spec.cluster.clone());
    for (i, entry) in spec.programs.iter().enumerate() {
        add_workload(&mut cluster, i, entry);
    }
    for (ai, stream) in spec.arrivals.iter().enumerate() {
        for (inst, t) in stream.arrivals.times().into_iter().enumerate() {
            let workload = stream.workload.reseeded(inst as u64);
            let script = workload.materialize(&mut cluster, &format!("a{ai}-{inst}"));
            cluster.add_program(
                ProgramSpec::new(script, stream.strategy)
                    .starting_at(SimTime::from_secs_f64(t)),
            );
        }
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualpar_workloads::{
        AccessPattern, ArrivalProcess, Demo, OffsetDistr, WorkloadExpr,
    };

    #[test]
    fn default_spec_round_trips_through_json() {
        let spec = ExperimentSpec::default();
        let json = serde_json::to_string(&spec).expect("serialise spec");
        let back: ExperimentSpec = serde_json::from_str(&json).expect("parse spec");
        assert_eq!(back.version, SPEC_VERSION);
        assert_eq!(back.programs.len(), spec.programs.len());
        let json2 = serde_json::to_string(&back).expect("serialise again");
        assert_eq!(json, json2);
    }

    #[test]
    fn v0_json_still_loads_and_upgrades() {
        // A v0 document: no version field, closed-enum workload tag.
        let v0 = r#"{
            "programs": [
                {"workload": {"mpi_io_test": {"nprocs": 4, "file_size": 1048576}},
                 "strategy": "DualPar"}
            ]
        }"#;
        let spec = ExperimentSpec::from_json(v0).expect("v0 loads");
        assert_eq!(spec.version, SPEC_VERSION, "upgrade stamps the version");
        assert_eq!(spec.programs.len(), 1);
        assert_eq!(spec.programs[0].workload.tag(), "mpi_io_test");
        assert!(spec.arrivals.is_empty());
        // And it still builds and runs.
        let report = build_cluster(&spec).run();
        assert_eq!(report.programs.len(), 1);
    }

    #[test]
    fn future_versions_are_rejected() {
        let json = format!(r#"{{"version": {}, "programs": []}}"#, SPEC_VERSION + 1);
        let err = ExperimentSpec::from_json(&json).expect_err("future version");
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn unknown_workload_tags_list_the_registry() {
        let json = r#"{"programs": [{"workload": {"bogus": {}}, "strategy": "Vanilla"}]}"#;
        let err = ExperimentSpec::from_json(json).expect_err("unknown tag");
        assert!(err.contains("bogus") && err.contains("hpio"), "{err}");
    }

    #[test]
    fn build_cluster_submits_every_program() {
        let mut spec = ExperimentSpec {
            cluster: crate::small_cluster(),
            ..Default::default()
        };
        spec.programs.push(ProgramEntry {
            workload: WorkloadSpec::named(Demo::default()),
            strategy: IoStrategy::Vanilla,
            start_secs: 1.0,
        });
        let mut cluster = build_cluster(&spec);
        let report = cluster.run();
        assert_eq!(report.programs.len(), 2);
    }

    fn zipf_dsl(seed: u64) -> DslWorkload {
        DslWorkload {
            name: "hot".into(),
            nprocs: 4,
            file_size: 8 << 20,
            seed,
            expr: WorkloadExpr::Pattern(AccessPattern {
                ops: 32,
                offsets: OffsetDistr::ZipfHotspot { theta: 0.99 },
                ..AccessPattern::default()
            }),
        }
    }

    #[test]
    fn arrival_streams_expand_into_decorrelated_instances() {
        let spec = ExperimentSpec {
            cluster: crate::small_cluster(),
            programs: Vec::new(),
            arrivals: vec![ArrivalEntry {
                workload: WorkloadSpec::dsl(zipf_dsl(7)),
                strategy: IoStrategy::DualPar,
                arrivals: Arrivals {
                    process: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
                    horizon_secs: 5.0,
                    seed: 21,
                    max_instances: 8,
                },
            }],
            ..Default::default()
        };
        spec.validate().expect("valid");
        let n = spec.arrivals[0].arrivals.times().len();
        assert!(n >= 1);
        let report = build_cluster(&spec).run();
        assert_eq!(report.programs.len(), n);
        // Same spec, same bytes: the expansion is deterministic.
        let again = build_cluster(&spec).run();
        assert_eq!(
            serde_json::to_string(&report).expect("json"),
            serde_json::to_string(&again).expect("json")
        );
    }

    #[test]
    fn spec_with_arrivals_round_trips_through_json() {
        let spec = ExperimentSpec {
            cluster: crate::small_cluster(),
            programs: vec![ProgramEntry {
                workload: WorkloadSpec::named(MpiIoTest::default()),
                strategy: IoStrategy::Vanilla,
                start_secs: 0.25,
            }],
            arrivals: vec![ArrivalEntry {
                workload: WorkloadSpec::dsl(zipf_dsl(3)),
                strategy: IoStrategy::DualPar,
                arrivals: Arrivals::default(),
            }],
            ..Default::default()
        };
        let json = serde_json::to_string_pretty(&spec).expect("serialise");
        let back = ExperimentSpec::from_json(&json).expect("parse");
        let json2 = serde_json::to_string_pretty(&back).expect("serialise again");
        assert_eq!(json, json2);
    }

    #[test]
    fn validation_rejects_unrunnable_specs() {
        let empty = ExperimentSpec {
            programs: Vec::new(),
            ..Default::default()
        };
        assert!(empty.validate().is_err());
        let mut bad_dsl = ExperimentSpec::default();
        bad_dsl.programs[0].workload = WorkloadSpec::dsl(DslWorkload {
            expr: WorkloadExpr::Seq(vec![]),
            ..DslWorkload::default()
        });
        assert!(bad_dsl.validate().is_err());
    }
}
