//! Experiment specifications: a cluster configuration plus a list of
//! programs (workload + I/O strategy + start time), serializable to the
//! JSON the `dualpar` CLI consumes and buildable into a ready-to-run
//! [`Cluster`]. Shared by the CLI, the parallel suite runner, and the
//! determinism tests.

use dualpar_cluster::{Cluster, ClusterConfig, IoStrategy, ProgramSpec};
use dualpar_sim::SimTime;
use dualpar_workloads::{
    Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim, TraceReplay,
};
use serde::{Deserialize, Serialize};

/// A workload choice, tagged by benchmark name.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkloadSpec {
    MpiIoTest(MpiIoTest),
    Hpio(Hpio),
    IorMpiIo(IorMpiIo),
    Noncontig(Noncontig),
    S3asim(S3asim),
    Btio(Btio),
    Demo(Demo),
    DependentReader(DependentReader),
    TraceReplay(TraceReplay),
}

/// One program of an experiment: what to run, how, and when.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramEntry {
    pub workload: WorkloadSpec,
    pub strategy: IoStrategy,
    #[serde(default)]
    pub start_secs: f64,
}

/// A complete experiment: the cluster and the programs it hosts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    #[serde(default)]
    pub cluster: ClusterConfig,
    pub programs: Vec<ProgramEntry>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            cluster: ClusterConfig::default(),
            programs: vec![ProgramEntry {
                workload: WorkloadSpec::MpiIoTest(MpiIoTest {
                    file_size: 256 << 20,
                    ..Default::default()
                }),
                strategy: IoStrategy::DualPar,
                start_secs: 0.0,
            }],
        }
    }
}

/// Create the workload's files on `cluster` and submit the program.
pub fn add_workload(cluster: &mut Cluster, idx: usize, entry: &ProgramEntry) {
    let script = match &entry.workload {
        WorkloadSpec::MpiIoTest(w) => {
            let f = cluster.create_file(&format!("mpiio-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::Hpio(w) => {
            let f = cluster.create_file(&format!("hpio-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::IorMpiIo(w) => {
            let f = cluster.create_file(&format!("ior-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::Noncontig(w) => {
            let f = cluster.create_file(&format!("noncontig-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::S3asim(w) => {
            let db = cluster.create_file(&format!("s3db-{idx}"), w.db_size);
            let res = cluster.create_file(&format!("s3res-{idx}"), w.result_size);
            w.build(db, res)
        }
        WorkloadSpec::Btio(w) => {
            let f = cluster.create_file(&format!("btio-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::Demo(w) => {
            let f = cluster.create_file(&format!("demo-{idx}"), w.file_size);
            w.build(f)
        }
        WorkloadSpec::DependentReader(w) => {
            let f = cluster.create_file(&format!("dep-{idx}"), w.file_size());
            w.build(f)
        }
        WorkloadSpec::TraceReplay(w) => {
            let files: Vec<_> = w
                .required_file_sizes()
                .iter()
                .enumerate()
                .map(|(i, &sz)| cluster.create_file(&format!("trace-{idx}-{i}"), sz.max(1)))
                .collect();
            w.build(&files)
        }
    };
    cluster.add_program(
        ProgramSpec::new(script, entry.strategy)
            .starting_at(SimTime::from_secs_f64(entry.start_secs)),
    );
}

/// Rough relative cost of simulating one workload: the estimated number
/// of file requests it generates. Feeds the suite runner's
/// longest-expected-first schedule, where only the *ordering* matters, so
/// the proxies are deliberately crude — no attempt to model caching,
/// merging, or contention.
pub fn workload_cost(w: &WorkloadSpec) -> u64 {
    match w {
        WorkloadSpec::MpiIoTest(w) => w.file_size / w.request_size.max(1),
        WorkloadSpec::Hpio(w) => w.nprocs as u64 * w.region_count,
        WorkloadSpec::IorMpiIo(w) => w.file_size / w.request_size.max(1),
        WorkloadSpec::Noncontig(w) => w.rows * w.nprocs as u64,
        WorkloadSpec::S3asim(w) => w.queries * w.fragments.max(1) * w.nprocs as u64,
        WorkloadSpec::Btio(w) => {
            // BTIO's cell shrinks with the process count, so request count
            // (dataset / cell) is what explodes — the suite's dominant run.
            let passes = if w.verify { 2 } else { 1 };
            passes * w.dataset / w.cell_bytes().max(1)
        }
        WorkloadSpec::Demo(w) => w.file_size / w.segment_size.max(1),
        WorkloadSpec::DependentReader(w) => w.total_bytes / w.request_size.max(1),
        WorkloadSpec::TraceReplay(w) => w.entries.len() as u64,
    }
}

/// Relative event-count weight of an I/O strategy. Vanilla issues every
/// region synchronously (one network + disk round trip each); DualPar
/// aggregates whole phases into a few large batches, collapsing the event
/// count by orders of magnitude.
fn strategy_weight(s: IoStrategy) -> u64 {
    match s {
        IoStrategy::Vanilla => 8,
        IoStrategy::PrefetchOverlap => 6,
        IoStrategy::Collective => 4,
        IoStrategy::DualPar | IoStrategy::DualParForced => 1,
    }
}

/// Expected relative simulation cost of a whole experiment, for
/// longest-expected-first scheduling. Never zero.
pub fn expected_cost(spec: &ExperimentSpec) -> u64 {
    spec.programs
        .iter()
        .map(|p| workload_cost(&p.workload).max(1) * strategy_weight(p.strategy))
        .sum::<u64>()
        .max(1)
}

/// Build a ready-to-run cluster from a spec. Purely a function of the
/// spec: building the same spec twice yields clusters that simulate
/// identically (the determinism tests rely on this).
pub fn build_cluster(spec: &ExperimentSpec) -> Cluster {
    let mut cluster = Cluster::new(spec.cluster.clone());
    for (i, entry) in spec.programs.iter().enumerate() {
        add_workload(&mut cluster, i, entry);
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips_through_json() {
        let spec = ExperimentSpec::default();
        let json = serde_json::to_string(&spec).expect("serialise spec");
        let back: ExperimentSpec = serde_json::from_str(&json).expect("parse spec");
        assert_eq!(back.programs.len(), spec.programs.len());
        let json2 = serde_json::to_string(&back).expect("serialise again");
        assert_eq!(json, json2);
    }

    #[test]
    fn build_cluster_submits_every_program() {
        let mut spec = ExperimentSpec {
            cluster: crate::small_cluster(),
            ..Default::default()
        };
        spec.programs.push(ProgramEntry {
            workload: WorkloadSpec::Demo(Demo::default()),
            strategy: IoStrategy::Vanilla,
            start_secs: 1.0,
        });
        let mut cluster = build_cluster(&spec);
        let report = cluster.run();
        assert_eq!(report.programs.len(), 2);
    }
}
