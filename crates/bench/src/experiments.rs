//! Shared experiment runners used by the figure/table harnesses and the
//! examples. Each returns the [`RunReport`] and the [`Cluster`] (for trace
//! inspection) after running to completion.

use dualpar_cluster::{Cluster, ClusterConfig, IoStrategy, ProgramSpec, RunReport};
use dualpar_disk::IoKind;
use dualpar_sim::{SimDuration, SimTime};
use dualpar_workloads::{
    compute_for_io_ratio, Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig,
    S3asim,
};
use serde::Serialize;

/// Summary row shared by most harnesses.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyResult {
    pub strategy: String,
    pub throughput_mbps: f64,
    pub elapsed_secs: f64,
    pub io_time_secs: f64,
    pub phases: u64,
}

pub fn summarize(report: &RunReport, program: usize, strategy: IoStrategy) -> StrategyResult {
    let p = &report.programs[program];
    StrategyResult {
        strategy: strategy.label().to_string(),
        throughput_mbps: p.throughput_mbps(),
        elapsed_secs: p.elapsed().as_secs_f64(),
        io_time_secs: p.mean_io_time_secs(),
        phases: p.phases,
    }
}

/// Whether a strategy's scripts should mark I/O calls collective.
fn coll(strategy: IoStrategy) -> bool {
    strategy == IoStrategy::Collective
}

/// §II `demo`: 8 processes reading a file front-to-back with a vector
/// datatype; compute per call tuned for the requested I/O ratio.
/// Measure the vanilla per-call I/O time for a demo configuration by
/// running a compute-free pilot — the paper's I/O ratio is defined against
/// "the vanilla system", so the compute injected for a target ratio must be
/// calibrated against what vanilla actually does at this segment size.
pub fn demo_vanilla_io_per_call(cfg: &ClusterConfig, segment_size: u64, file_size: u64) -> SimDuration {
    let pilot_size = file_size.min(32 << 20);
    let mut c = Cluster::new(cfg.clone());
    let w = Demo {
        segment_size,
        file_size: pilot_size,
        ..Default::default()
    };
    let calls = (pilot_size / (w.segs_per_call * w.nprocs as u64 * segment_size)).max(1);
    let f = c.create_file("demo-pilot", w.file_size);
    c.add_program(ProgramSpec::new(w.build(f), IoStrategy::Vanilla));
    let r = c.run();
    SimDuration::from_secs_f64(r.programs[0].elapsed().as_secs_f64() / calls as f64)
}

pub fn run_demo(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    io_ratio: f64,
    segment_size: u64,
    file_size: u64,
) -> (RunReport, Cluster) {
    let est_io = demo_vanilla_io_per_call(&cfg, segment_size, file_size);
    let mut c = Cluster::new(cfg);
    let w = Demo {
        segment_size,
        file_size,
        compute_per_call: compute_for_io_ratio(est_io, io_ratio),
        collective: coll(strategy),
        ..Default::default()
    };
    let f = c.create_file("demo", w.file_size);
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-B `mpi-io-test`, single instance.
pub fn run_mpi_io_test(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    kind: IoKind,
    nprocs: usize,
    file_size: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    let w = MpiIoTest {
        nprocs,
        file_size,
        kind,
        collective: coll(strategy),
        barrier_every: 8,
        ..Default::default()
    };
    let f = c.create_file("mpiio", w.file_size);
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-B `noncontig`, single instance.
pub fn run_noncontig(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    kind: IoKind,
    nprocs: usize,
    rows: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    let w = Noncontig {
        nprocs,
        rows,
        kind,
        collective: coll(strategy),
        ..Default::default()
    };
    let f = c.create_file("noncontig", w.file_size());
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-A `hpio`, single instance: 32 KB regions separated by 1 KB spacing.
pub fn run_hpio(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    kind: IoKind,
    nprocs: usize,
    region_count: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    let w = Hpio {
        nprocs,
        region_count,
        kind,
        collective: coll(strategy),
        ..Default::default()
    };
    let f = c.create_file("hpio", w.file_size());
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-B `ior-mpi-io`, single instance.
pub fn run_ior(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    kind: IoKind,
    nprocs: usize,
    file_size: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    let w = IorMpiIo {
        nprocs,
        file_size,
        kind,
        collective: coll(strategy),
        ..Default::default()
    };
    let f = c.create_file("ior", w.file_size);
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-C three concurrent BTIO instances at a given process count.
pub fn run_btio_concurrent(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    nprocs: usize,
    dataset: u64,
    instances: usize,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    for i in 0..instances {
        let w = Btio {
            nprocs,
            dataset,
            collective: coll(strategy),
            ..Default::default()
        };
        let f = c.create_file(&format!("btio{i}"), w.file_size());
        let mut script = w.build(f);
        script.name = format!("btio{i}");
        c.add_program(ProgramSpec::new(script, strategy));
    }
    let r = c.run();
    (r, c)
}

/// §V-C three concurrent S3asim instances with a query count.
pub fn run_s3asim_concurrent(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    queries: u64,
    db_size: u64,
    instances: usize,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    for i in 0..instances {
        let w = S3asim {
            queries,
            db_size,
            result_size: db_size / 4,
            collective: coll(strategy),
            seed: 7 + i as u64,
            ..Default::default()
        };
        let db = c.create_file(&format!("s3db{i}"), w.db_size);
        let res = c.create_file(&format!("s3res{i}"), w.result_size);
        let mut script = w.build(db, res);
        script.name = format!("s3asim{i}");
        c.add_program(ProgramSpec::new(script, strategy));
    }
    let r = c.run();
    (r, c)
}

/// §V-C two concurrent mpi-io-test instances (Table II / Fig. 6).
pub fn run_mpiio_pair(
    cfg: ClusterConfig,
    strategy: IoStrategy,
    kind: IoKind,
    file_size: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    for i in 0..2 {
        let w = MpiIoTest {
            nprocs: 16,
            file_size,
            kind,
            collective: coll(strategy),
            barrier_every: 8,
            ..Default::default()
        };
        let f = c.create_file(&format!("pair{i}"), w.file_size);
        let mut script = w.build(f);
        script.name = format!("inst{i}");
        c.add_program(ProgramSpec::new(script, strategy));
    }
    let r = c.run();
    (r, c)
}

/// §V-D varying workload: mpi-io-test from t=0, hpio joining later
/// (Fig. 7). `use_dualpar` selects adaptive DualPar vs vanilla.
pub fn run_varying_workload(
    cfg: ClusterConfig,
    use_dualpar: bool,
    join_at: SimTime,
    mpiio_size: u64,
) -> (RunReport, Cluster) {
    let strategy = if use_dualpar {
        IoStrategy::DualPar
    } else {
        IoStrategy::Vanilla
    };
    let mut c = Cluster::new(cfg);
    let w1 = MpiIoTest {
        nprocs: 16,
        file_size: mpiio_size,
        barrier_every: 8,
        ..Default::default()
    };
    let f1 = c.create_file("stream", w1.file_size);
    c.add_program(ProgramSpec::new(w1.build(f1), strategy));
    let w2 = Hpio {
        nprocs: 16,
        // Size hpio to roughly half the stream so the overlap window is
        // long enough for EMC to react and the effect to be visible.
        region_count: (mpiio_size / (33 * 1024) / 16 / 2).max(64),
        ..Default::default()
    };
    let f2 = c.create_file("hpio", w2.file_size());
    let mut script = w2.build(f2);
    script.name = "hpio".into();
    c.add_program(ProgramSpec::new(script, strategy).starting_at(join_at));
    let r = c.run();
    (r, c)
}

/// §V-E BTIO with a given per-process cache quota (Fig. 8). Quota 0 means
/// DualPar disabled (vanilla execution).
pub fn run_btio_cache_size(
    mut cfg: ClusterConfig,
    quota: u64,
    nprocs: usize,
    dataset: u64,
) -> (RunReport, Cluster) {
    let strategy = if quota == 0 {
        IoStrategy::Vanilla
    } else {
        cfg.dualpar.cache_quota = quota;
        IoStrategy::DualParForced
    };
    let mut c = Cluster::new(cfg);
    let w = Btio {
        nprocs,
        dataset,
        ..Default::default()
    };
    let f = c.create_file("btio", w.file_size());
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// §V-F the data-dependent reader (Table III), with or without DualPar, at
/// a given cache quota.
pub fn run_dependent(
    mut cfg: ClusterConfig,
    with_dualpar: bool,
    quota: u64,
    total_bytes: u64,
) -> (RunReport, Cluster) {
    let strategy = if with_dualpar {
        cfg.dualpar.cache_quota = quota;
        IoStrategy::DualPar
    } else {
        IoStrategy::Vanilla
    };
    let mut c = Cluster::new(cfg);
    let w = DependentReader {
        nprocs: 16,
        total_bytes,
        ..Default::default()
    };
    let f = c.create_file("dep", w.file_size());
    c.add_program(ProgramSpec::new(w.build(f), strategy));
    let r = c.run();
    (r, c)
}

/// Table III extension: the dependent reader with partial ghost accuracy,
/// under adaptive DualPar with paper-default thresholds.
pub fn run_dependent_predictable(
    cfg: ClusterConfig,
    predictability: f64,
    total_bytes: u64,
) -> (RunReport, Cluster) {
    let mut c = Cluster::new(cfg);
    let w = DependentReader {
        nprocs: 16,
        total_bytes,
        predictability,
        ..Default::default()
    };
    let f = c.create_file("dep", w.file_size());
    c.add_program(ProgramSpec::new(w.build(f), IoStrategy::DualPar));
    let r = c.run();
    (r, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::small_cluster;

    #[test]
    fn demo_runner_produces_report() {
        let (r, _) = run_demo(
            small_cluster(),
            IoStrategy::Vanilla,
            1.0,
            16 * 1024,
            4 << 20,
        );
        assert_eq!(r.programs[0].bytes_read, 4 << 20);
    }

    #[test]
    fn pair_runner_runs_two_instances() {
        let (r, _) = run_mpiio_pair(
            small_cluster(),
            IoStrategy::Vanilla,
            IoKind::Read,
            4 << 20,
        );
        assert_eq!(r.programs.len(), 2);
        assert!(r.aggregate_throughput_mbps() > 0.0);
    }

    #[test]
    fn cache_size_zero_means_vanilla() {
        let (r, _) = run_btio_cache_size(small_cluster(), 0, 4, 1 << 20);
        assert_eq!(r.programs[0].phases, 0);
        let (r2, _) = run_btio_cache_size(small_cluster(), 64 * 1024, 4, 1 << 20);
        assert!(r2.programs[0].phases > 0);
    }
}
