//! Ablation: EMC trigger thresholds.
//!
//! The paper claims "system performance is not sensitive to this threshold"
//! (`T_improvement` = 3). We sweep `T_improvement` and the I/O-ratio
//! trigger on the interference workload and report completion time and
//! whether the mode engaged.

use dualpar_bench::experiments::run_mpiio_pair;
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use dualpar_disk::IoKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    t_improvement: f64,
    io_ratio_threshold: f64,
    makespan_secs: f64,
    switched: bool,
    phases: u64,
}

fn main() {
    let file: u64 = 192 << 20;
    let mut rows = Vec::new();
    for &t_imp in &[1.0, 2.0, 3.0, 5.0, 10.0] {
        for &io_thr in &[0.5, 0.8, 0.9] {
            let mut cfg = paper_cluster();
            cfg.dualpar.t_improvement = t_imp;
            cfg.dualpar.io_ratio_threshold = io_thr;
            let (r, _) = run_mpiio_pair(cfg, IoStrategy::DualPar, IoKind::Read, file);
            rows.push(Row {
                t_improvement: t_imp,
                io_ratio_threshold: io_thr,
                makespan_secs: r.sim_end.as_secs_f64(),
                switched: !r.mode_events.is_empty(),
                phases: r.programs.iter().map(|p| p.phases).sum(),
            });
        }
    }
    print_table(
        "Ablation: EMC thresholds (2 concurrent mpi-io-test, adaptive)",
        &["T_improvement", "io-ratio thr", "makespan (s)", "switched", "phases"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.t_improvement),
                    format!("{:.2}", r.io_ratio_threshold),
                    format!("{:.1}", r.makespan_secs),
                    r.switched.to_string(),
                    r.phases.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_thresholds", &rows);
}
