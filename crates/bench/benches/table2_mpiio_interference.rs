//! Table II and Figure 6 — two concurrent mpi-io-test instances.
//!
//! Paper shape (Table II): aggregate read throughput 106 / 168 / 284 MB/s
//! and write throughput 54 / 67 / 127 MB/s for vanilla / collective /
//! DualPar — DualPar restores efficiency that inter-program interference
//! destroyed. Fig. 6: the vanilla LBN trace on one server hops between the
//! two files' regions; DualPar's trace shows long single-file sweeps and
//! roughly an order of magnitude smaller average seek distance.

use dualpar_bench::experiments::run_mpiio_pair;
use dualpar_bench::{
    jobs_from_args, paper_cluster, parallel_map, print_table, save_gnuplot, save_json,
};
use dualpar_cluster::IoStrategy;
use dualpar_disk::IoKind;
use dualpar_sim::{SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Throughputs {
    kind: String,
    vanilla_mbps: f64,
    collective_mbps: f64,
    dualpar_mbps: f64,
}

#[derive(Serialize)]
struct TracePoint {
    t_secs: f64,
    lbn: u64,
}

#[derive(Serialize)]
struct Table2 {
    throughput: Vec<Throughputs>,
    vanilla_trace: Vec<TracePoint>,
    dualpar_trace: Vec<TracePoint>,
    vanilla_avg_seek_sectors: f64,
    dualpar_avg_seek_sectors: f64,
}

const FILE: u64 = 512 << 20;
const STRATEGIES: [IoStrategy; 3] = [
    IoStrategy::Vanilla,
    IoStrategy::Collective,
    IoStrategy::DualParForced,
];

fn main() {
    let jobs = jobs_from_args();
    let mut cells = Vec::new();
    for kind in [IoKind::Read, IoKind::Write] {
        for s in STRATEGIES {
            cells.push((kind, s));
        }
    }
    let thr = parallel_map(&cells, jobs, |_, &(kind, s)| {
        let (r, _) = run_mpiio_pair(paper_cluster(), s, kind, FILE);
        r.aggregate_throughput_mbps()
    });
    let throughput: Vec<Throughputs> = cells
        .chunks(STRATEGIES.len())
        .zip(thr.chunks(STRATEGIES.len()))
        .map(|(cell, t)| Throughputs {
            kind: if cell[0].0 == IoKind::Read { "read" } else { "write" }.into(),
            vanilla_mbps: t[0],
            collective_mbps: t[1],
            dualpar_mbps: t[2],
        })
        .collect();
    print_table(
        "Table II: aggregate throughput, 2 concurrent mpi-io-test (MB/s)",
        &["kind", "vanilla", "collective", "DualPar"],
        &throughput
            .iter()
            .map(|t| {
                vec![
                    t.kind.clone(),
                    format!("{:.0}", t.vanilla_mbps),
                    format!("{:.0}", t.collective_mbps),
                    format!("{:.0}", t.dualpar_mbps),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Fig. 6: one-second LBN trace window on server 1, read runs. The two
    // traced runs are independent, so they share the worker pool too.
    let traced = [IoStrategy::Vanilla, IoStrategy::DualParForced];
    let mut traces = parallel_map(&traced, jobs, |_, &s| {
        let mut cfg = paper_cluster();
        cfg.trace_disks = true;
        let (report, cluster) = run_mpiio_pair(cfg, s, IoKind::Read, FILE);
        let mid = SimTime::from_secs_f64(report.sim_end.as_secs_f64() / 2.0);
        let pts: Vec<TracePoint> = cluster
            .disk(1)
            .trace()
            .window(mid, mid + SimDuration::from_secs(1))
            .map(|r| TracePoint {
                t_secs: r.at.as_secs_f64(),
                lbn: r.lbn,
            })
            .collect();
        let avg_seek = cluster.disk(1).trace().avg_seek_distance();
        (pts, avg_seek)
    });
    let (dualpar_trace, d_seek) = traces.pop().expect("dualpar trace");
    let (vanilla_trace, v_seek) = traces.pop().expect("vanilla trace");
    println!(
        "\nFig. 6: avg seek distance — vanilla {v_seek:.0} sectors, DualPar {d_seek:.0} sectors ({:.1}x reduction)",
        v_seek / d_seek.max(1.0)
    );
    save_gnuplot(
        "fig6_lbn_traces",
        "Fig. 6: LBN service order, 2 concurrent mpi-io-test (server 1, 1 s)",
        "time (s)",
        "LBN",
        false,
        &[
            ("vanilla", vanilla_trace.iter().map(|p| (p.t_secs, p.lbn as f64)).collect()),
            ("dualpar", dualpar_trace.iter().map(|p| (p.t_secs, p.lbn as f64)).collect()),
        ],
    );
    save_json(
        "table2_mpiio_interference",
        &Table2 {
            throughput,
            vanilla_trace,
            dualpar_trace,
            vanilla_avg_seek_sectors: v_seek,
            dualpar_avg_seek_sectors: d_seek,
        },
    );
}
