//! Ablation: CRM request-processing knobs.
//!
//! (a) Hole-filling threshold (`max_hole`): 0 disables hole absorption so
//!     only strictly adjacent requests merge; larger values transfer waste
//!     bytes to buy bigger sequential requests (§IV-D).
//! (b) Data sieving for the *vanilla* baseline: ROMIO's independent-path
//!     optimisation, off in the paper's baseline.

use dualpar_bench::experiments::{run_demo, run_hpio};
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use dualpar_disk::IoKind;
use serde::Serialize;

#[derive(Serialize)]
struct HoleRow {
    max_hole_kb: u64,
    throughput_mbps: f64,
}

#[derive(Serialize)]
struct SieveRow {
    sieving: bool,
    demo_secs: f64,
}

#[derive(Serialize)]
struct Out {
    hole_sweep: Vec<HoleRow>,
    sieve: Vec<SieveRow>,
}

fn main() {
    // (a) hole threshold sweep on hpio under forced DualPar: its 32 KB
    // regions are separated by 1 KB spacings, so any threshold >= 1 KB
    // fuses a process's whole recording into one cover while 0 leaves
    // per-region requests.
    let mut hole_sweep = Vec::new();
    for hole_kb in [0u64, 1, 4, 64, 256] {
        let mut cfg = paper_cluster();
        cfg.dualpar.max_hole = hole_kb * 1024;
        let (r, _) = run_hpio(cfg, IoStrategy::DualParForced, IoKind::Read, 64, 512);
        hole_sweep.push(HoleRow {
            max_hole_kb: hole_kb,
            throughput_mbps: r.programs[0].throughput_mbps(),
        });
    }
    print_table(
        "Ablation: CRM hole-filling threshold (hpio, DualPar)",
        &["max hole (KB)", "MB/s"],
        &hole_sweep
            .iter()
            .map(|r| vec![r.max_hole_kb.to_string(), format!("{:.0}", r.throughput_mbps)])
            .collect::<Vec<_>>(),
    );

    // (b) data sieving for the vanilla baseline on the demo pattern.
    let mut sieve = Vec::new();
    for sieving in [false, true] {
        let mut cfg = paper_cluster();
        cfg.sieve.enabled = sieving;
        let (r, _) = run_demo(cfg, IoStrategy::Vanilla, 1.0, 4096, 128 << 20);
        sieve.push(SieveRow {
            sieving,
            demo_secs: r.programs[0].elapsed().as_secs_f64(),
        });
    }
    print_table(
        "Ablation: data sieving in the vanilla baseline (demo, 4 KB segs)",
        &["sieving", "exec time (s)"],
        &sieve
            .iter()
            .map(|r| vec![r.sieving.to_string(), format!("{:.1}", r.demo_secs)])
            .collect::<Vec<_>>(),
    );
    save_json(
        "ablation_crm",
        &Out {
            hole_sweep,
            sieve,
        },
    );
}
