//! Figure 1 — the §II motivating experiment.
//!
//! (a) `demo` execution time vs I/O ratio (4 KB segments) under the three
//!     strategies; (b) vs segment size at 90% I/O ratio; (c,d) the LBN
//!     service traces on data server 1 under Strategies 2 and 3.
//!
//! Paper shape: Strategy 2 wins at low I/O ratio; beyond ~70% Strategy 3
//! takes over (36% faster near 100%); the advantage shrinks as segments
//! grow past 32 KB; Strategy 2's trace shows short back-and-forth head
//! runs while Strategy 3's sweeps in one direction.

use dualpar_bench::experiments::run_demo;
use dualpar_bench::{
    jobs_from_args, paper_cluster, parallel_map, print_table, save_gnuplot, save_json,
};
use dualpar_cluster::IoStrategy;
use dualpar_sim::SimTime;
use serde::Serialize;

const FILE_SIZE: u64 = 256 << 20;
const STRATEGIES: [IoStrategy; 3] = [
    IoStrategy::Vanilla,
    IoStrategy::PrefetchOverlap,
    IoStrategy::DualParForced,
];

#[derive(Serialize)]
struct RatioRow {
    io_ratio: f64,
    strategy1_secs: f64,
    strategy2_secs: f64,
    strategy3_secs: f64,
}

#[derive(Serialize)]
struct SegRow {
    segment_kb: u64,
    strategy1_secs: f64,
    strategy2_secs: f64,
    strategy3_secs: f64,
}

#[derive(Serialize)]
struct TracePoint {
    t_secs: f64,
    lbn: u64,
}

#[derive(Serialize)]
struct Fig1 {
    ratio_sweep: Vec<RatioRow>,
    segment_sweep: Vec<SegRow>,
    strategy2_trace: Vec<TracePoint>,
    strategy3_trace: Vec<TracePoint>,
}

fn main() {
    let jobs = jobs_from_args();
    // Both sweeps share one flat cell list so the worker pool stays full
    // across the (a)/(b) boundary; (a) I/O-ratio sweep at 4 KB segments,
    // (b) segment-size sweep at 90% I/O ratio.
    let ratios = [0.19, 0.31, 0.43, 0.72, 0.86, 1.0];
    let seg_kbs = [4u64, 8, 16, 32, 64, 128];
    let mut cells = Vec::new();
    for &ratio in &ratios {
        for s in STRATEGIES {
            cells.push((ratio, 4096u64, s));
        }
    }
    for &seg_kb in &seg_kbs {
        for s in STRATEGIES {
            cells.push((0.9, seg_kb * 1024, s));
        }
    }
    let times = parallel_map(&cells, jobs, |_, &(ratio, seg, s)| {
        let (r, _) = run_demo(paper_cluster(), s, ratio, seg, FILE_SIZE);
        r.programs[0].elapsed().as_secs_f64()
    });
    let (ratio_times, seg_times) = times.split_at(ratios.len() * STRATEGIES.len());
    let ratio_rows: Vec<RatioRow> = ratios
        .iter()
        .zip(ratio_times.chunks(STRATEGIES.len()))
        .map(|(&ratio, t)| RatioRow {
            io_ratio: ratio,
            strategy1_secs: t[0],
            strategy2_secs: t[1],
            strategy3_secs: t[2],
        })
        .collect();
    print_table(
        "Fig. 1(a): demo execution time vs I/O ratio (4 KB segments)",
        &["I/O ratio", "Strategy 1 (s)", "Strategy 2 (s)", "Strategy 3 (s)"],
        &ratio_rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.io_ratio * 100.0),
                    format!("{:.1}", r.strategy1_secs),
                    format!("{:.1}", r.strategy2_secs),
                    format!("{:.1}", r.strategy3_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let seg_rows: Vec<SegRow> = seg_kbs
        .iter()
        .zip(seg_times.chunks(STRATEGIES.len()))
        .map(|(&seg_kb, t)| SegRow {
            segment_kb: seg_kb,
            strategy1_secs: t[0],
            strategy2_secs: t[1],
            strategy3_secs: t[2],
        })
        .collect();
    print_table(
        "Fig. 1(b): demo execution time vs segment size (I/O ratio 90%)",
        &["Segment", "Strategy 1 (s)", "Strategy 2 (s)", "Strategy 3 (s)"],
        &seg_rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}KB", r.segment_kb),
                    format!("{:.1}", r.strategy1_secs),
                    format!("{:.1}", r.strategy2_secs),
                    format!("{:.1}", r.strategy3_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // (c,d) LBN traces on server 1 over a 0.2 s window mid-run, plus the
    // §II average request size reaching the disks (paper: 12 KB under
    // Strategy 2 vs 128 KB under Strategy 3) — one traced run per strategy
    // yields both, fanned over the pool.
    let traced = [IoStrategy::PrefetchOverlap, IoStrategy::DualParForced];
    let mut traces = parallel_map(&traced, jobs, |_, &strategy| {
        let mut cfg = paper_cluster();
        cfg.trace_disks = true;
        let (report, cluster) = run_demo(cfg, strategy, 1.0, 4096, FILE_SIZE);
        let mid = SimTime::from_secs_f64(report.sim_end.as_secs_f64() / 2.0);
        let end = mid + dualpar_sim::SimDuration::from_millis(200);
        let pts: Vec<TracePoint> = cluster
            .disk(1)
            .trace()
            .window(mid, end)
            .map(|rec| TracePoint {
                t_secs: rec.at.as_secs_f64(),
                lbn: rec.lbn,
            })
            .collect();
        let (mut bytes, mut n) = (0u64, 0u64);
        for srv in 0..cluster.config().num_data_servers {
            bytes += cluster.disk(srv).bytes_serviced();
            n += cluster.disk(srv).trace().serviced();
        }
        (pts, bytes as f64 / n.max(1) as f64 / 1024.0)
    });
    let (s3_trace, s3_req_kb) = traces.pop().expect("strategy 3 trace");
    let (s2_trace, s2_req_kb) = traces.pop().expect("strategy 2 trace");
    println!(
        "
avg disk request size: Strategy 2 = {s2_req_kb:.0} KB, Strategy 3 = {s3_req_kb:.0} KB (paper: 12 vs 128)"
    );
    let direction_changes = |pts: &[TracePoint]| {
        pts.windows(3)
            .filter(|w| (w[1].lbn > w[0].lbn) != (w[2].lbn > w[1].lbn))
            .count()
    };
    println!(
        "\nFig. 1(c): Strategy 2 trace: {} services in window, {} direction changes",
        s2_trace.len(),
        direction_changes(&s2_trace)
    );
    println!(
        "Fig. 1(d): Strategy 3 trace: {} services in window, {} direction changes",
        s3_trace.len(),
        direction_changes(&s3_trace)
    );

    save_gnuplot(
        "fig1c_s2_trace",
        "Fig. 1(c): Strategy 2 service order (server 1, 0.2 s window)",
        "time (s)",
        "LBN",
        false,
        &[("strategy 2", s2_trace.iter().map(|p| (p.t_secs, p.lbn as f64)).collect())],
    );
    save_gnuplot(
        "fig1d_s3_trace",
        "Fig. 1(d): Strategy 3 service order (server 1, 0.2 s window)",
        "time (s)",
        "LBN",
        false,
        &[("strategy 3", s3_trace.iter().map(|p| (p.t_secs, p.lbn as f64)).collect())],
    );
    save_json(
        "fig1_motivation",
        &Fig1 {
            ratio_sweep: ratio_rows,
            segment_sweep: seg_rows,
            strategy2_trace: s2_trace,
            strategy3_trace: s3_trace,
        },
    );
}
