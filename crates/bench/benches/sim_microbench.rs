//! Criterion micro-benchmarks of the simulator's hot paths: the event
//! queue, the CFQ scheduler, the CRM request algebra, the cache store's
//! chunk index, the byte-range algebra, and a complete small cluster run
//! (events per second end to end).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dualpar_bench::small_cluster;
use dualpar_cache::{CacheConfig, GlobalCache, OwnerId};
use dualpar_cluster::{Cluster, IoStrategy, ProgramSpec};
use dualpar_disk::{CfqConfig, CfqScheduler, Decision, DiskRequest, IoCtx, IoKind, Scheduler};
use dualpar_mpiio::build_batch;
use dualpar_pfs::{FileId, FileRegion, RangeSet};
use dualpar_sim::{EventQueue, SimDuration, SimTime};
use dualpar_workloads::MpiIoTest;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime(i.wrapping_mul(2654435761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_cfq(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfq");
    let n = 4_096u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("enqueue_drain_4k", |b| {
        b.iter_batched(
            || {
                let mut s = CfqScheduler::new(CfqConfig::default());
                for i in 0..n {
                    s.enqueue(DiskRequest::new(
                        i,
                        IoCtx((i % 8) as u32),
                        IoKind::Read,
                        (i.wrapping_mul(48271) % 100_000) * 64,
                        32,
                        SimTime::ZERO,
                    ));
                }
                s
            },
            |mut s| {
                let mut now = SimTime::ZERO;
                let mut head = 0;
                loop {
                    match s.decide(now, head) {
                        Decision::Dispatch(r) => head = r.end(),
                        Decision::IdleUntil(t) => now = t,
                        Decision::Empty => break,
                    }
                }
                black_box(head)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batch_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("crm_algebra");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    let items: Vec<(FileId, FileRegion)> = (0..n)
        .map(|i| {
            let off = ((i as u64).wrapping_mul(2654435761)) % (1 << 30);
            (FileId(1 + (i % 3) as u32), FileRegion::new(off, 4096))
        })
        .collect();
    g.bench_function("build_batch_100k", |b| {
        b.iter(|| black_box(build_batch(items.clone(), 64 * 1024)))
    });
    g.finish();
}

fn bench_cache_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_store");
    let chunk = 64 * 1024u64;
    let n = 2_048u64; // chunks touched per pass
    let cfg = CacheConfig {
        chunk_size: chunk,
        num_nodes: 8,
        idle_ttl: SimDuration::from_secs(30),
        node_capacity: u64::MAX,
    };
    g.throughput(Throughput::Elements(n));
    // Prefetch-insert then read back across a strided chunk set: dominated
    // by lookups in the (FileId, chunk index) map that the engine hammers.
    g.bench_function("prefetch_read_2k_chunks", |b| {
        b.iter_batched(
            || GlobalCache::new(cfg.clone()),
            |mut cache| {
                let f = FileId(1);
                let owner = OwnerId(7);
                for i in 0..n {
                    let idx = (i.wrapping_mul(48271)) % (4 * n);
                    let region = FileRegion::new(idx * chunk, chunk);
                    cache.put_prefetch(owner, f, region, SimTime::ZERO);
                }
                let mut hit = 0u64;
                for i in 0..n {
                    let idx = (i.wrapping_mul(48271)) % (4 * n);
                    let region = FileRegion::new(idx * chunk, chunk);
                    hit += cache.read(f, region, SimTime::ZERO).bytes_found;
                }
                black_box(hit)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rangeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("rangeset");
    let n = 4_096u64;
    g.throughput(Throughput::Elements(n));
    // Interleaved insert/remove/probe on a set that keeps fragmenting and
    // re-coalescing, the access pattern of per-chunk presence tracking.
    g.bench_function("churn_4k_ops", |b| {
        b.iter(|| {
            let mut set = RangeSet::new();
            let mut probe = 0u64;
            for i in 0..n {
                let start = (i.wrapping_mul(2654435761)) % (1 << 22);
                match i % 4 {
                    0 | 1 => set.insert(start, 4096),
                    2 => set.remove(start, 2048),
                    _ => probe += set.intersect_len(start, 8192),
                }
            }
            black_box((set.covered(), probe))
        })
    });
    g.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("mpiio_8mb_dualpar", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(small_cluster());
            let w = MpiIoTest {
                nprocs: 8,
                file_size: 8 << 20,
                ..Default::default()
            };
            let f = cluster.create_file("x", w.file_size);
            cluster.add_program(ProgramSpec::new(w.build(f), IoStrategy::DualParForced));
            black_box(cluster.run().events_processed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cfq,
    bench_batch_algebra,
    bench_cache_store,
    bench_rangeset,
    bench_full_run
);
criterion_main!(benches);
