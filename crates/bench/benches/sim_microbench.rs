//! Criterion micro-benchmarks of the simulator's hot paths: the event
//! queue, the CFQ scheduler, the CRM request algebra, and a complete small
//! cluster run (events per second end to end).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dualpar_bench::small_cluster;
use dualpar_cluster::{Cluster, IoStrategy, ProgramSpec};
use dualpar_disk::{CfqConfig, CfqScheduler, Decision, DiskRequest, IoCtx, IoKind, Scheduler};
use dualpar_mpiio::build_batch;
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::{EventQueue, SimTime};
use dualpar_workloads::MpiIoTest;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime(i.wrapping_mul(2654435761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_cfq(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfq");
    let n = 4_096u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("enqueue_drain_4k", |b| {
        b.iter_batched(
            || {
                let mut s = CfqScheduler::new(CfqConfig::default());
                for i in 0..n {
                    s.enqueue(DiskRequest::new(
                        i,
                        IoCtx((i % 8) as u32),
                        IoKind::Read,
                        (i.wrapping_mul(48271) % 100_000) * 64,
                        32,
                        SimTime::ZERO,
                    ));
                }
                s
            },
            |mut s| {
                let mut now = SimTime::ZERO;
                let mut head = 0;
                loop {
                    match s.decide(now, head) {
                        Decision::Dispatch(r) => head = r.end(),
                        Decision::IdleUntil(t) => now = t,
                        Decision::Empty => break,
                    }
                }
                black_box(head)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batch_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("crm_algebra");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    let items: Vec<(FileId, FileRegion)> = (0..n)
        .map(|i| {
            let off = ((i as u64).wrapping_mul(2654435761)) % (1 << 30);
            (FileId(1 + (i % 3) as u32), FileRegion::new(off, 4096))
        })
        .collect();
    g.bench_function("build_batch_100k", |b| {
        b.iter(|| black_box(build_batch(items.clone(), 64 * 1024)))
    });
    g.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("mpiio_8mb_dualpar", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(small_cluster());
            let w = MpiIoTest {
                nprocs: 8,
                file_size: 8 << 20,
                ..Default::default()
            };
            let f = cluster.create_file("x", w.file_size);
            cluster.add_program(ProgramSpec::new(w.build(f), IoStrategy::DualParForced));
            black_box(cluster.run().events_processed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cfq,
    bench_batch_algebra,
    bench_full_run
);
criterion_main!(benches);
