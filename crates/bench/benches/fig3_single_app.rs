//! Figure 3 — single-application I/O throughput under vanilla MPI-IO,
//! collective I/O and DualPar, for reads (a) and writes (b), over
//! mpi-io-test (sequential), noncontig (interleaved tiny), and ior-mpi-io
//! (per-process sequential, random to the storage).
//!
//! Paper shape (read): mpi-io-test 115/117/263 MB/s; noncontig: DualPar
//! +57% over collective; ior-mpi-io: collective ≈ vanilla, DualPar well
//! ahead. Writes show the same ordering with lower absolute numbers.
//!
//! The 18 runs are independent, so they fan out over the shared worker
//! pool (`--jobs N`, default = available cores); results are identical at
//! any jobs level.

use dualpar_bench::experiments::{run_ior, run_mpi_io_test, run_noncontig};
use dualpar_bench::{
    apply_telemetry_args, jobs_from_args, paper_cluster, parallel_map, print_table, save_json,
};
use dualpar_cluster::IoStrategy;
use dualpar_disk::IoKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    kind: String,
    vanilla_mbps: f64,
    collective_mbps: f64,
    dualpar_mbps: f64,
}

const BENCHMARKS: [&str; 3] = ["mpi-io-test", "noncontig", "ior-mpi-io"];
const STRATEGIES: [IoStrategy; 3] = [
    IoStrategy::Vanilla,
    IoStrategy::Collective,
    IoStrategy::DualParForced,
];

fn main() {
    // `--telemetry counters` makes every run fold counters into its report;
    // the per-run trace path is ignored here (18 runs share the flags).
    let cluster = || {
        let mut cfg = paper_cluster();
        let _ = apply_telemetry_args(&mut cfg);
        cfg
    };
    let mut cells = Vec::new();
    for kind in [IoKind::Read, IoKind::Write] {
        for bench in BENCHMARKS {
            for s in STRATEGIES {
                cells.push((kind, bench, s));
            }
        }
    }
    let throughputs = parallel_map(&cells, jobs_from_args(), |_, &(kind, bench, s)| {
        let (r, _) = match bench {
            // mpi-io-test: 1 GB, 16 KB requests, 64 procs.
            "mpi-io-test" => run_mpi_io_test(cluster(), s, kind, 64, 1 << 30),
            // noncontig: 64 procs, 512 B cells, 16384 rows = 512 MB.
            "noncontig" => run_noncontig(cluster(), s, kind, 64, 16384),
            // ior-mpi-io: 4 GB file (scaled from 16 GB), 32 KB requests.
            _ => run_ior(cluster(), s, kind, 64, 4 << 30),
        };
        r.programs[0].throughput_mbps()
    });
    let rows: Vec<Row> = cells
        .chunks(STRATEGIES.len())
        .zip(throughputs.chunks(STRATEGIES.len()))
        .map(|(cell, thr)| Row {
            benchmark: cell[0].1.into(),
            kind: if cell[0].0 == IoKind::Read { "read" } else { "write" }.into(),
            vanilla_mbps: thr[0],
            collective_mbps: thr[1],
            dualpar_mbps: thr[2],
        })
        .collect();
    print_table(
        "Fig. 3: single-application system I/O throughput (MB/s)",
        &["benchmark", "kind", "vanilla", "collective", "DualPar"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.kind.clone(),
                    format!("{:.0}", r.vanilla_mbps),
                    format!("{:.0}", r.collective_mbps),
                    format!("{:.0}", r.dualpar_mbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig3_single_app", &rows);
}
