//! Figure 3 — single-application I/O throughput under vanilla MPI-IO,
//! collective I/O and DualPar, for reads (a) and writes (b), over
//! mpi-io-test (sequential), noncontig (interleaved tiny), and ior-mpi-io
//! (per-process sequential, random to the storage).
//!
//! Paper shape (read): mpi-io-test 115/117/263 MB/s; noncontig: DualPar
//! +57% over collective; ior-mpi-io: collective ≈ vanilla, DualPar well
//! ahead. Writes show the same ordering with lower absolute numbers.

use dualpar_bench::experiments::{run_ior, run_mpi_io_test, run_noncontig};
use dualpar_bench::{apply_telemetry_args, paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use dualpar_disk::IoKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    kind: String,
    vanilla_mbps: f64,
    collective_mbps: f64,
    dualpar_mbps: f64,
}

fn main() {
    // `--telemetry counters` makes every run fold counters into its report;
    // the per-run trace path is ignored here (18 runs share the flags).
    let cluster = || {
        let mut cfg = paper_cluster();
        let _ = apply_telemetry_args(&mut cfg);
        cfg
    };
    let strategies = [
        IoStrategy::Vanilla,
        IoStrategy::Collective,
        IoStrategy::DualParForced,
    ];
    let mut rows = Vec::new();
    for kind in [IoKind::Read, IoKind::Write] {
        let kind_label = if kind == IoKind::Read { "read" } else { "write" };
        // mpi-io-test: 1 GB, 16 KB requests, 64 procs.
        let mut thr = [0.0; 3];
        for (i, &s) in strategies.iter().enumerate() {
            let (r, _) = run_mpi_io_test(cluster(), s, kind, 64, 1 << 30);
            thr[i] = r.programs[0].throughput_mbps();
        }
        rows.push(Row {
            benchmark: "mpi-io-test".into(),
            kind: kind_label.into(),
            vanilla_mbps: thr[0],
            collective_mbps: thr[1],
            dualpar_mbps: thr[2],
        });
        // noncontig: 64 procs, 512 B cells, 16384 rows = 512 MB.
        for (i, &s) in strategies.iter().enumerate() {
            let (r, _) = run_noncontig(cluster(), s, kind, 64, 16384);
            thr[i] = r.programs[0].throughput_mbps();
        }
        rows.push(Row {
            benchmark: "noncontig".into(),
            kind: kind_label.into(),
            vanilla_mbps: thr[0],
            collective_mbps: thr[1],
            dualpar_mbps: thr[2],
        });
        // ior-mpi-io: 4 GB file (scaled from 16 GB), 32 KB requests.
        for (i, &s) in strategies.iter().enumerate() {
            let (r, _) = run_ior(cluster(), s, kind, 64, 4 << 30);
            thr[i] = r.programs[0].throughput_mbps();
        }
        rows.push(Row {
            benchmark: "ior-mpi-io".into(),
            kind: kind_label.into(),
            vanilla_mbps: thr[0],
            collective_mbps: thr[1],
            dualpar_mbps: thr[2],
        });
    }
    print_table(
        "Fig. 3: single-application system I/O throughput (MB/s)",
        &["benchmark", "kind", "vanilla", "collective", "DualPar"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.kind.clone(),
                    format!("{:.0}", r.vanilla_mbps),
                    format!("{:.0}", r.collective_mbps),
                    format!("{:.0}", r.dualpar_mbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig3_single_app", &rows);
}
