//! Ablation: disk scheduler choice under the Table II workload (two
//! concurrent mpi-io-test readers).
//!
//! Question: how much of DualPar's win depends on CFQ specifically?
//! Expectation: vanilla suffers under any scheduler (too few outstanding
//! requests to sort); DualPar's pre-sorted batches are near-optimal under
//! every scheduler, so its advantage is scheduler-robust.

use dualpar_bench::experiments::run_mpiio_pair;
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use dualpar_disk::{IoKind, SchedulerKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheduler: String,
    vanilla_mbps: f64,
    dualpar_mbps: f64,
    gain: f64,
}

fn main() {
    let file: u64 = 256 << 20;
    let mut rows = Vec::new();
    for sched in SchedulerKind::ALL {
        let thr = |s: IoStrategy| {
            let mut cfg = paper_cluster();
            cfg.scheduler = sched;
            let (r, _) = run_mpiio_pair(cfg, s, IoKind::Read, file);
            r.aggregate_throughput_mbps()
        };
        let v = thr(IoStrategy::Vanilla);
        let d = thr(IoStrategy::DualParForced);
        rows.push(Row {
            scheduler: sched.to_string(),
            vanilla_mbps: v,
            dualpar_mbps: d,
            gain: d / v,
        });
    }
    print_table(
        "Ablation: scheduler × strategy (2 concurrent mpi-io-test, MB/s)",
        &["scheduler", "vanilla", "DualPar", "gain"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheduler.clone(),
                    format!("{:.0}", r.vanilla_mbps),
                    format!("{:.0}", r.dualpar_mbps),
                    format!("{:.1}x", r.gain),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_sched", &rows);
}
