//! Ablation: disk scheduler choice under the Table II workload (two
//! concurrent mpi-io-test readers).
//!
//! Question: how much of DualPar's win depends on CFQ specifically?
//! Expectation: vanilla suffers under any scheduler (too few outstanding
//! requests to sort); DualPar's pre-sorted batches are near-optimal under
//! every scheduler, so its advantage is scheduler-robust.

use dualpar_bench::experiments::run_mpiio_pair;
use dualpar_bench::{jobs_from_args, paper_cluster, parallel_map, print_table, save_json};
use dualpar_cluster::IoStrategy;
use dualpar_disk::{IoKind, SchedulerKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheduler: String,
    vanilla_mbps: f64,
    dualpar_mbps: f64,
    gain: f64,
}

fn main() {
    let file: u64 = 256 << 20;
    let mut cells = Vec::new();
    for sched in SchedulerKind::ALL {
        for s in [IoStrategy::Vanilla, IoStrategy::DualParForced] {
            cells.push((sched, s));
        }
    }
    let thr = parallel_map(&cells, jobs_from_args(), |_, &(sched, s)| {
        let mut cfg = paper_cluster();
        cfg.scheduler = sched;
        let (r, _) = run_mpiio_pair(cfg, s, IoKind::Read, file);
        r.aggregate_throughput_mbps()
    });
    let rows: Vec<Row> = cells
        .chunks(2)
        .zip(thr.chunks(2))
        .map(|(cell, t)| Row {
            scheduler: cell[0].0.to_string(),
            vanilla_mbps: t[0],
            dualpar_mbps: t[1],
            gain: t[1] / t[0],
        })
        .collect();
    print_table(
        "Ablation: scheduler × strategy (2 concurrent mpi-io-test, MB/s)",
        &["scheduler", "vanilla", "DualPar", "gain"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheduler.clone(),
                    format!("{:.0}", r.vanilla_mbps),
                    format!("{:.0}", r.dualpar_mbps),
                    format!("{:.1}x", r.gain),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_sched", &rows);
}
