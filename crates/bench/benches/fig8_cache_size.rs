//! Figure 8 — BTIO throughput vs per-process cache quota (0 KB disables
//! DualPar; 64 KB already buys a ~40× jump because BTIO's raw requests are
//! tiny; returns diminish beyond a few hundred KB).

use dualpar_bench::experiments::run_btio_cache_size;
use dualpar_bench::{jobs_from_args, paper_cluster, parallel_map, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cache_kb: u64,
    throughput_mbps: f64,
    phases: u64,
}

fn main() {
    let dataset: u64 = 24 << 20;
    let sizes = [0u64, 64, 128, 256, 512, 1024];
    let rows = parallel_map(&sizes, jobs_from_args(), |_, &cache_kb| {
        let (r, _) = run_btio_cache_size(paper_cluster(), cache_kb * 1024, 64, dataset);
        Row {
            cache_kb,
            throughput_mbps: r.programs[0].throughput_mbps(),
            phases: r.programs[0].phases,
        }
    });
    let base = rows[0].throughput_mbps;
    print_table(
        "Fig. 8: BTIO throughput vs per-process cache size",
        &["cache (KB)", "MB/s", "speedup", "phases"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.cache_kb.to_string(),
                    format!("{:.2}", r.throughput_mbps),
                    format!("{:.0}x", r.throughput_mbps / base),
                    r.phases.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig8_cache_size", &rows);
}
