//! Criterion benchmarks guarding the data structures rebuilt for the
//! slab-allocated hot path:
//!
//! * `group_slab` — generational-slab churn against the `FxHashMap` keyed
//!   by monotonically growing ids it replaced in the cluster engine. The
//!   workload mirrors the engine's lifecycle: insert a record per I/O
//!   group, hit it a few times from sub-request completions, remove it.
//! * `dispatch` — sorted-queue churn in the CFQ and anticipatory disk
//!   schedulers with arrivals interleaved into dispatch. This is the bench
//!   guard for the `Vec::remove` in their dispatch paths: selection relies
//!   on `partition_point` over a queue kept sorted by `(lbn, id)`, so
//!   removal must shift (a `swap_remove` would corrupt the order). If the
//!   O(n) shift ever dominates, this group is where it shows.
//! * `event_queue` — schedule/cancel/pop churn through the hierarchical
//!   timing wheel ([`dualpar_sim::EventQueue`]) against an inline rebuild
//!   of the binary-heap + lazy-cancellation queue it replaced, at steady
//!   pending populations from 10³ to 10⁶. Every simulation event in the
//!   workspace funnels through this structure, so this group is the
//!   engine-throughput guard.
//! * `shard_sync` — the sharded engine's window-barrier round-trip
//!   ([`dualpar_sim::ShardPool::run_round`] over near-empty cells) and the
//!   deterministic k-way merge of outbound batches
//!   ([`dualpar_sim::merge_batches`]) at 2/4/8 shards. The round-trip is
//!   the fixed cost every conservative window pays, so it bounds how fine
//!   the `net_latency` lookahead can slice simulated time before
//!   synchronization dominates the win.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dualpar_disk::{
    AnticipatoryConfig, AnticipatoryScheduler, CfqConfig, CfqScheduler, Decision, DiskRequest,
    IoCtx, IoKind, Scheduler,
};
use dualpar_sim::{
    merge_batches, EventId, EventQueue, FxHashMap, FxHashSet, ShardPool, SimDuration, SimTime,
    Slab, SlabKey, WindowCell,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Stand-in for the engine's `Group` record: big enough that moves are not
/// free, small enough to stay realistic.
#[derive(Clone, Copy)]
struct Payload {
    remaining: u64,
    issued: u64,
    stats: [u64; 4],
}

const CHURN: u64 = 4_096;
/// Live records at steady state (the engine keeps a few dozen groups and a
/// few hundred outstanding sub-requests in flight).
const LIVE: usize = 256;

fn bench_group_slab(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_slab");
    g.throughput(Throughput::Elements(CHURN));

    // Insert → 3 hits → remove, with LIVE records resident throughout.
    g.bench_function("slab_churn_4k", |b| {
        b.iter(|| {
            let mut slab: Slab<Payload> = Slab::with_capacity(LIVE);
            let mut live: Vec<SlabKey> = Vec::with_capacity(LIVE);
            let mut acc = 0u64;
            for i in 0..CHURN {
                let key = slab.insert(Payload {
                    remaining: i,
                    issued: i * 2,
                    stats: [i; 4],
                });
                live.push(key);
                for probe in 0..3u64 {
                    let pick = ((i + probe).wrapping_mul(48271)) as usize % live.len();
                    if let Some(p) = slab.get_mut(live[pick]) {
                        p.remaining = p.remaining.wrapping_add(1);
                        acc = acc.wrapping_add(p.issued);
                    }
                }
                if live.len() >= LIVE {
                    let pick = (i.wrapping_mul(2654435761)) as usize % live.len();
                    let key = live.swap_remove(pick);
                    acc = acc.wrapping_add(slab.remove(key).map_or(0, |p| p.stats[0]));
                }
            }
            black_box(acc)
        })
    });

    // The structure the slab replaced: same lifecycle, hash lookups keyed
    // by ever-growing u64 ids.
    g.bench_function("fxhashmap_churn_4k", |b| {
        b.iter(|| {
            let mut map: FxHashMap<u64, Payload> = FxHashMap::default();
            let mut live: Vec<u64> = Vec::with_capacity(LIVE);
            let mut acc = 0u64;
            for i in 0..CHURN {
                map.insert(
                    i,
                    Payload {
                        remaining: i,
                        issued: i * 2,
                        stats: [i; 4],
                    },
                );
                live.push(i);
                for probe in 0..3u64 {
                    let pick = ((i + probe).wrapping_mul(48271)) as usize % live.len();
                    if let Some(p) = map.get_mut(&live[pick]) {
                        p.remaining = p.remaining.wrapping_add(1);
                        acc = acc.wrapping_add(p.issued);
                    }
                }
                if live.len() >= LIVE {
                    let pick = (i.wrapping_mul(2654435761)) as usize % live.len();
                    let id = live.swap_remove(pick);
                    acc = acc.wrapping_add(map.remove(&id).map_or(0, |p| p.stats[0]));
                }
            }
            black_box(acc)
        })
    });

    g.finish();
}

/// Drain a scheduler with arrivals interleaved so the sorted queue stays
/// populated while dispatch keeps removing from arbitrary positions.
fn churn_scheduler<S: Scheduler>(mut s: S, n: u64) -> u64 {
    let mut next_id = 0u64;
    let enqueue = |s: &mut S, id: u64| {
        s.enqueue(DiskRequest::new(
            id,
            IoCtx((id % 8) as u32),
            IoKind::Read,
            (id.wrapping_mul(48271) % 100_000) * 64,
            32,
            SimTime::ZERO,
        ));
    };
    // Pre-fill half so the first dispatches already shift a long queue.
    for _ in 0..n / 2 {
        enqueue(&mut s, next_id);
        next_id += 1;
    }
    let mut now = SimTime::ZERO;
    let mut head = 0;
    loop {
        match s.decide(now, head) {
            Decision::Dispatch(r) => {
                head = r.end();
                if next_id < n {
                    enqueue(&mut s, next_id);
                    next_id += 1;
                }
            }
            Decision::IdleUntil(t) => now = t,
            Decision::Empty => break,
        }
    }
    head
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    let n = 4_096u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("cfq_interleaved_4k", |b| {
        b.iter_batched(
            || CfqScheduler::new(CfqConfig::default()),
            |s| black_box(churn_scheduler(s, n)),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("anticipatory_interleaved_4k", |b| {
        b.iter_batched(
            || AnticipatoryScheduler::new(AnticipatoryConfig::default()),
            |s| black_box(churn_scheduler(s, n)),
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

/// Timed churn rounds per event-queue iteration.
const EQ_CHURN: u64 = 4_096;
/// Scheduling horizon for pseudo-random deltas (10 simulated seconds) —
/// wide enough to spread events across every wheel level.
const EQ_HORIZON_NS: u64 = 10_000_000_000;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// The retired production queue, rebuilt inline as the bench baseline:
/// a min-heap of `(time, seq)` with lazy cancellation through side sets.
struct LazyHeapQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    next_seq: u64,
    now: SimTime,
    cancelled: FxHashSet<u64>,
    pending: FxHashSet<u64>,
}

impl LazyHeapQueue {
    fn new() -> Self {
        LazyHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cancelled: FxHashSet::default(),
            pending: FxHashSet::default(),
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Reverse((at, seq, payload)));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if !self.pending.remove(&seq) {
            return false;
        }
        self.cancelled.insert(seq)
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        while let Some(Reverse((t, seq, payload))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.pending.remove(&seq);
            self.now = t;
            return Some((t, payload));
        }
        None
    }
}

fn wheel_prefill(pending: usize) -> (EventQueue<u64>, Vec<EventId>) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut ids = Vec::with_capacity(pending);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..pending as u64 {
        let delta = SimDuration(1 + xorshift(&mut x) % EQ_HORIZON_NS);
        ids.push(q.schedule(q.now().saturating_add(delta), i));
    }
    (q, ids)
}

fn wheel_churn((mut q, mut ids): (EventQueue<u64>, Vec<EventId>)) -> u64 {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut acc = 0u64;
    for i in 0..EQ_CHURN {
        if let Some((t, payload)) = q.pop() {
            acc = acc.wrapping_add(t.0).wrapping_add(payload);
        }
        let delta = SimDuration(1 + xorshift(&mut x) % EQ_HORIZON_NS);
        ids.push(q.schedule(q.now().saturating_add(delta), i));
        // Every fourth round, cancel a uniformly chosen remembered id.
        // Some of them have already fired — exercising the O(1) stale-id
        // rejection alongside live cancellation, like the engine does.
        if i % 4 == 0 {
            let pick = xorshift(&mut x) as usize % ids.len();
            let id = ids.swap_remove(pick);
            acc = acc.wrapping_add(u64::from(q.cancel(id)));
        }
    }
    acc.wrapping_add(q.len() as u64)
}

fn heap_prefill(pending: usize) -> (LazyHeapQueue, Vec<u64>) {
    let mut q = LazyHeapQueue::new();
    let mut ids = Vec::with_capacity(pending);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..pending as u64 {
        let delta = SimDuration(1 + xorshift(&mut x) % EQ_HORIZON_NS);
        ids.push(q.schedule(q.now.saturating_add(delta), i));
    }
    (q, ids)
}

fn heap_churn((mut q, mut ids): (LazyHeapQueue, Vec<u64>)) -> u64 {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut acc = 0u64;
    for i in 0..EQ_CHURN {
        if let Some((t, payload)) = q.pop() {
            acc = acc.wrapping_add(t.0).wrapping_add(payload);
        }
        let delta = SimDuration(1 + xorshift(&mut x) % EQ_HORIZON_NS);
        ids.push(q.schedule(q.now.saturating_add(delta), i));
        if i % 4 == 0 {
            let pick = xorshift(&mut x) as usize % ids.len();
            let id = ids.swap_remove(pick);
            acc = acc.wrapping_add(u64::from(q.cancel(id)));
        }
    }
    acc.wrapping_add(q.pending.len() as u64)
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(EQ_CHURN));
    for pending in [1_000usize, 10_000, 100_000, 1_000_000] {
        g.bench_function(&format!("wheel_churn_{pending}"), |b| {
            b.iter_batched(
                || wheel_prefill(pending),
                |input| black_box(wheel_churn(input)),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(&format!("heap_churn_{pending}"), |b| {
            b.iter_batched(
                || heap_prefill(pending),
                |input| black_box(heap_churn(input)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// A shard cell doing negligible per-window work, so `run_round` measures
/// the conservative barrier itself: job dispatch, the window on a worker
/// thread, and the ownership round-trip back to the coordinator.
struct SyncCell {
    acc: u64,
}

impl WindowCell for SyncCell {
    fn run_window(&mut self, _horizon: SimTime) -> u64 {
        self.acc = self.acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        1
    }
}

/// Outbound batches as the engine produces them at a window barrier: each
/// shard's sends time-sorted, ready for the deterministic k-way merge.
fn merge_input(shards: usize, per_shard: usize) -> Vec<Vec<(SimTime, u64)>> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    (0..shards)
        .map(|_| {
            let mut batch: Vec<(SimTime, u64)> = (0..per_shard as u64)
                .map(|i| (SimTime(1 + xorshift(&mut x) % EQ_HORIZON_NS), i))
                .collect();
            batch.sort_by_key(|&(t, _)| t);
            batch
        })
        .collect()
}

fn bench_shard_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_sync");
    for shards in [2usize, 4, 8] {
        // Window-barrier round-trip: one full `run_round` over `shards`
        // near-empty cells. This is the fixed cost every conservative
        // window pays before any simulation work happens, so it bounds
        // how fine the lookahead can slice time before sync dominates.
        g.bench_function(&format!("window_roundtrip_{shards}"), |b| {
            let pool = ShardPool::new(shards);
            let mut cells: Vec<Option<SyncCell>> =
                (0..shards as u64).map(|i| Some(SyncCell { acc: i })).collect();
            let active: Vec<usize> = (0..shards).collect();
            b.iter(|| {
                let (n, client) = pool.run_round(
                    &mut cells,
                    &active,
                    SimTime(1_000),
                    || black_box(0u64),
                );
                black_box(n.wrapping_add(client))
            })
        });
        // Deterministic k-way merge of the shards' outbound batches, at
        // the batch size a busy window produces.
        g.throughput(Throughput::Elements((shards * 1_024) as u64));
        g.bench_function(&format!("batch_merge_{shards}x1k"), |b| {
            b.iter_batched(
                || merge_input(shards, 1_024),
                |batches| black_box(merge_batches(batches)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_group_slab,
    bench_dispatch,
    bench_event_queue,
    bench_shard_sync
);
criterion_main!(benches);
