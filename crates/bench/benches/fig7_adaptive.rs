//! Figure 7 — the varying-workload experiment.
//!
//! `mpi-io-test` streams alone (sequential, efficient — DualPar stays in
//! the computation-driven mode); at t = join, `hpio` starts on the same
//! data servers and the two streams interfere. With vanilla MPI-IO the
//! system throughput drops; adaptive DualPar detects the seek-distance
//! blow-up, switches both programs into the data-driven mode, and recovers
//! most of the loss (paper: +46% while hpio runs). Panel (b) shows the
//! per-slot average seek distance on data server 1.

use dualpar_bench::experiments::run_varying_workload;
use dualpar_bench::{
    apply_telemetry_args, export_trace_to, jobs_from_args, paper_cluster, parallel_map,
    print_table, save_gnuplot, save_json,
};
use dualpar_sim::{SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7 {
    /// Per-second system throughput (MB/s), vanilla run.
    vanilla_timeline: Vec<f64>,
    /// Per-second system throughput (MB/s), adaptive DualPar run.
    dualpar_timeline: Vec<f64>,
    /// Per-second average seek distance on server 1 (sectors).
    vanilla_seek: Vec<f64>,
    dualpar_seek: Vec<f64>,
    /// Mode switches in the DualPar run (time s, program, mode).
    mode_events: Vec<(f64, usize, String)>,
    join_at_secs: f64,
}

fn main() {
    let join = SimTime::from_secs(10);
    let size: u64 = 2 << 30;
    // The vanilla and adaptive runs are independent; fan them out.
    let modes = [false, true];
    let mut runs = parallel_map(&modes, jobs_from_args(), |_, &dualpar| {
        let mut cfg = paper_cluster();
        cfg.trace_disks = true;
        let trace = apply_telemetry_args(&mut cfg);
        let (report, cluster) = run_varying_workload(cfg, dualpar, join, size);
        // The adaptive run is the interesting one for event traces.
        if dualpar {
            if let Some(path) = trace {
                export_trace_to(&cluster, &path);
            }
        }
        (report, cluster)
    });
    let (dr, dc) = runs.pop().expect("adaptive run");
    let (vr, vc) = runs.pop().expect("vanilla run");
    let timeline_mbps = |r: &dualpar_cluster::RunReport| -> Vec<f64> {
        (0..r.throughput_timeline.num_bins())
            .map(|i| r.throughput_timeline.rate_per_sec(i) / 1e6)
            .collect()
    };
    let seek_bins = |c: &dualpar_cluster::Cluster, horizon: SimTime| {
        c.disk(1)
            .trace()
            .seek_distance_bins(SimDuration::from_secs(1), horizon)
    };
    let fig = Fig7 {
        vanilla_timeline: timeline_mbps(&vr),
        dualpar_timeline: timeline_mbps(&dr),
        vanilla_seek: seek_bins(&vc, vr.sim_end),
        dualpar_seek: seek_bins(&dc, dr.sim_end),
        mode_events: dr
            .mode_events
            .iter()
            .map(|e| {
                (
                    e.at.as_secs_f64(),
                    e.program_index,
                    format!("{:?}", e.mode),
                )
            })
            .collect(),
        join_at_secs: join.as_secs_f64(),
    };

    // Print a compact view: averages before the join and during overlap.
    let avg = |xs: &[f64], from: usize, to: usize| {
        let slice = &xs[from.min(xs.len())..to.min(xs.len())];
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        }
    };
    let j = join.as_secs_f64() as usize;
    let overlap_end_v = fig.vanilla_timeline.len();
    let overlap_end_d = fig.dualpar_timeline.len();
    let rows = vec![
        vec![
            "solo (0..join)".to_string(),
            format!("{:.0}", avg(&fig.vanilla_timeline, 2, j)),
            format!("{:.0}", avg(&fig.dualpar_timeline, 2, j)),
        ],
        vec![
            "overlap (join..end)".to_string(),
            format!("{:.0}", avg(&fig.vanilla_timeline, j, overlap_end_v)),
            format!("{:.0}", avg(&fig.dualpar_timeline, j, overlap_end_d)),
        ],
        vec![
            "avg seek, overlap (sectors)".to_string(),
            format!("{:.0}", avg(&fig.vanilla_seek, j, overlap_end_v)),
            format!("{:.0}", avg(&fig.dualpar_seek, j, overlap_end_d)),
        ],
    ];
    print_table(
        "Fig. 7: throughput (MB/s) & seek distance, mpi-io-test + hpio joining",
        &["window", "vanilla", "adaptive DualPar"],
        &rows,
    );
    println!("\nmode switches (DualPar run): {:?}", fig.mode_events);
    println!(
        "runs finished at: vanilla {:.1}s, dualpar {:.1}s",
        vr.sim_end.as_secs_f64(),
        dr.sim_end.as_secs_f64()
    );
    let as_xy = |xs: &[f64]| xs.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect::<Vec<_>>();
    save_gnuplot(
        "fig7a_throughput",
        "Fig. 7(a): system throughput, hpio joins at t=10 s",
        "time (s)",
        "MB/s",
        true,
        &[
            ("vanilla", as_xy(&fig.vanilla_timeline)),
            ("adaptive dualpar", as_xy(&fig.dualpar_timeline)),
        ],
    );
    save_gnuplot(
        "fig7b_seek",
        "Fig. 7(b): average seek distance on server 1",
        "time (s)",
        "sectors",
        true,
        &[
            ("vanilla", as_xy(&fig.vanilla_seek)),
            ("adaptive dualpar", as_xy(&fig.dualpar_seek)),
        ],
    );
    save_json("fig7_adaptive", &fig);
}
