//! Figure 4 — three concurrent BTIO instances, system throughput vs the
//! per-instance process count (16, 64, 256).
//!
//! Paper shape: collective I/O and DualPar beat vanilla by up to 24× and
//! 35× respectively (BTIO's raw requests shrink to a few bytes at high
//! process counts); collective I/O's advantage erodes with more processes
//! because each call's fixed data domain is shuffled among ever more
//! ranks, while DualPar keeps scaling.

use dualpar_bench::experiments::run_btio_concurrent;
use dualpar_bench::{jobs_from_args, paper_cluster, parallel_map, print_table, save_json};
use dualpar_cluster::IoStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nprocs: usize,
    vanilla_mbps: f64,
    collective_mbps: f64,
    dualpar_mbps: f64,
}

const STRATEGIES: [IoStrategy; 3] = [
    IoStrategy::Vanilla,
    IoStrategy::Collective,
    IoStrategy::DualParForced,
];

fn main() {
    // Scaled dataset: 24 MB per instance (the pattern, not the volume, is
    // what drives the effect — vanilla's per-request cost is so high that
    // larger datasets only stretch the run).
    let dataset: u64 = 24 << 20;
    let mut cells = Vec::new();
    for nprocs in [16usize, 64, 256] {
        for s in STRATEGIES {
            cells.push((nprocs, s));
        }
    }
    let thr = parallel_map(&cells, jobs_from_args(), |_, &(nprocs, s)| {
        let (r, _) = run_btio_concurrent(paper_cluster(), s, nprocs, dataset, 3);
        r.aggregate_throughput_mbps()
    });
    let mut rows = Vec::new();
    for (cell, thr) in cells.chunks(STRATEGIES.len()).zip(thr.chunks(STRATEGIES.len())) {
        let row = Row {
            nprocs: cell[0].0,
            vanilla_mbps: thr[0],
            collective_mbps: thr[1],
            dualpar_mbps: thr[2],
        };
        println!(
            "nprocs={}: vanilla {:.2} MB/s, collective {:.1} ({}x), dualpar {:.1} ({}x)",
            row.nprocs,
            row.vanilla_mbps,
            row.collective_mbps,
            (row.collective_mbps / row.vanilla_mbps) as u64,
            row.dualpar_mbps,
            (row.dualpar_mbps / row.vanilla_mbps) as u64,
        );
        rows.push(row);
    }
    print_table(
        "Fig. 4: 3 concurrent BTIO instances — system I/O throughput (MB/s)",
        &["procs", "vanilla", "collective", "DualPar", "coll/van", "dp/van"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nprocs.to_string(),
                    format!("{:.2}", r.vanilla_mbps),
                    format!("{:.1}", r.collective_mbps),
                    format!("{:.1}", r.dualpar_mbps),
                    format!("{:.0}x", r.collective_mbps / r.vanilla_mbps),
                    format!("{:.0}x", r.dualpar_mbps / r.vanilla_mbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig4_btio_concurrent", &rows);
}
