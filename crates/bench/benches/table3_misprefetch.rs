//! Table III — the mis-prefetch worst case: a reader whose every request
//! depends on the data returned by the previous one, so all prefetched
//! data is useless. Paper: with DualPar the execution time grows by at
//! most 7.2% (at a 4 MB quota) because the high mis-prefetch ratio turns
//! the data-driven mode off after one phase — a one-time overhead.

use dualpar_bench::experiments::run_dependent;
use dualpar_bench::experiments::run_dependent_predictable;
use dualpar_bench::{jobs_from_args, paper_cluster, parallel_map, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cache_kb: u64,
    no_dualpar_secs: f64,
    dualpar_secs: f64,
    overhead_pct: f64,
    misprefetch_ratio: f64,
    phases: u64,
}

fn main() {
    let total: u64 = 512 << 20;
    let jobs = jobs_from_args();
    let (base_r, _) = run_dependent(paper_cluster(), false, 0, total);
    let base = base_r.programs[0].elapsed().as_secs_f64();
    let sizes = [512u64, 1024, 2048, 4096];
    let rows = parallel_map(&sizes, jobs, |_, &cache_kb| {
        let (r, _) = run_dependent(paper_cluster(), true, cache_kb * 1024, total);
        let secs = r.programs[0].elapsed().as_secs_f64();
        Row {
            cache_kb,
            no_dualpar_secs: base,
            dualpar_secs: secs,
            overhead_pct: (secs / base - 1.0) * 100.0,
            misprefetch_ratio: r.programs[0].avg_misprefetch,
            phases: r.programs[0].phases,
        }
    });
    print_table(
        "Table III: fully data-dependent reads — execution time",
        &["cache (KB)", "no DualPar (s)", "DualPar (s)", "overhead", "mis-ratio", "phases"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.cache_kb.to_string(),
                    format!("{:.1}", r.no_dualpar_secs),
                    format!("{:.1}", r.dualpar_secs),
                    format!("{:+.1}%", r.overhead_pct),
                    format!("{:.2}", r.misprefetch_ratio),
                    r.phases.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("table3_misprefetch", &rows);

    // Extension: sweep the ghost's prediction accuracy across EMC's 20 %
    // mis-prefetch veto. Above the veto (mis-ratio ≤ 0.2) the data-driven
    // mode survives and pays off; below it the mode is disabled and the
    // overhead stays bounded.
    #[derive(Serialize)]
    struct PredRow {
        predictability: f64,
        dualpar_secs: f64,
        mis_ratio: f64,
        phases: u64,
    }
    let preds = [1.0, 0.9, 0.8, 0.5, 0.0];
    let pred_rows = parallel_map(&preds, jobs, |_, &p| {
        let (r, _) = run_dependent_predictable(paper_cluster(), p, total);
        PredRow {
            predictability: p,
            dualpar_secs: r.programs[0].elapsed().as_secs_f64(),
            mis_ratio: r.programs[0].avg_misprefetch,
            phases: r.programs[0].phases,
        }
    });
    print_table(
        "Extension: prediction accuracy vs the 20% mis-prefetch veto",
        &["predictability", "DualPar (s)", "mis-ratio", "phases"],
        &pred_rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.predictability * 100.0),
                    format!("{:.1}", r.dualpar_secs),
                    format!("{:.2}", r.mis_ratio),
                    r.phases.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("table3_predictability", &pred_rows);
}
