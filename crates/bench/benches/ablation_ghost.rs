//! Ablation: retain vs slice-out computation in ghost pre-execution.
//!
//! DualPar deliberately *retains* computation in pre-execution (prediction
//! accuracy, no source access needed) and pays for it with redundant
//! compute. Slicing computation out (the Chen et al. technique the paper's
//! Strategy 2 borrows) makes phases cheaper but is only safe when the
//! I/O addresses do not depend on computation. This bench quantifies what
//! retention costs at different I/O intensities.

use dualpar_bench::experiments::run_demo;
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    io_ratio: f64,
    retained_secs: f64,
    sliced_secs: f64,
    retention_cost_pct: f64,
}

fn main() {
    let mut rows = Vec::new();
    for &ratio in &[0.4, 0.6, 0.8, 1.0] {
        let secs = |slice: bool| {
            let mut cfg = paper_cluster();
            cfg.dualpar.ghost_slice_compute = slice;
            let (r, _) = run_demo(cfg, IoStrategy::DualParForced, ratio, 4096, 128 << 20);
            r.programs[0].elapsed().as_secs_f64()
        };
        let retained = secs(false);
        let sliced = secs(true);
        rows.push(Row {
            io_ratio: ratio,
            retained_secs: retained,
            sliced_secs: sliced,
            retention_cost_pct: (retained / sliced - 1.0) * 100.0,
        });
    }
    print_table(
        "Ablation: ghost computation retained vs sliced out (demo)",
        &["I/O ratio", "retained (s)", "sliced (s)", "retention cost"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.io_ratio * 100.0),
                    format!("{:.1}", r.retained_secs),
                    format!("{:.1}", r.sliced_secs),
                    format!("{:+.0}%", r.retention_cost_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_ghost", &rows);
}
