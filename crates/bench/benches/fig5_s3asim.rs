//! Figure 5 — three concurrent S3asim instances, total I/O time vs number
//! of queries (16 and 32).
//!
//! Paper shape: DualPar's I/O times are smaller than vanilla's and
//! collective I/O's by up to 25% (17% on average) — a modest win, because
//! S3asim's requests are much larger than BTIO's.

use dualpar_bench::experiments::run_s3asim_concurrent;
use dualpar_bench::{jobs_from_args, paper_cluster, parallel_map, print_table, save_json};
use dualpar_cluster::IoStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    queries: u64,
    vanilla_io_secs: f64,
    collective_io_secs: f64,
    dualpar_io_secs: f64,
}

const STRATEGIES: [IoStrategy; 3] = [
    IoStrategy::Vanilla,
    IoStrategy::Collective,
    IoStrategy::DualParForced,
];

fn main() {
    let db: u64 = 512 << 20;
    let mut cells = Vec::new();
    for queries in [16u64, 24, 32] {
        for s in STRATEGIES {
            cells.push((queries, s));
        }
    }
    let io_times = parallel_map(&cells, jobs_from_args(), |_, &(queries, s)| {
        let (r, _) = run_s3asim_concurrent(paper_cluster(), s, queries, db, 3);
        r.programs.iter().map(|p| p.mean_io_time_secs()).sum::<f64>()
    });
    let rows: Vec<Row> = cells
        .chunks(STRATEGIES.len())
        .zip(io_times.chunks(STRATEGIES.len()))
        .map(|(cell, t)| Row {
            queries: cell[0].0,
            vanilla_io_secs: t[0],
            collective_io_secs: t[1],
            dualpar_io_secs: t[2],
        })
        .collect();
    print_table(
        "Fig. 5: 3 concurrent S3asim instances — total I/O time (s)",
        &["queries", "vanilla", "collective", "DualPar", "dp saving"],
        &rows
            .iter()
            .map(|r| {
                let best_other = r.vanilla_io_secs.min(r.collective_io_secs);
                vec![
                    r.queries.to_string(),
                    format!("{:.1}", r.vanilla_io_secs),
                    format!("{:.1}", r.collective_io_secs),
                    format!("{:.1}", r.dualpar_io_secs),
                    format!("{:.0}%", (1.0 - r.dualpar_io_secs / best_other) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig5_s3asim", &rows);
}
