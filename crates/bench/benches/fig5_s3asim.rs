//! Figure 5 — three concurrent S3asim instances, total I/O time vs number
//! of queries (16 and 32).
//!
//! Paper shape: DualPar's I/O times are smaller than vanilla's and
//! collective I/O's by up to 25% (17% on average) — a modest win, because
//! S3asim's requests are much larger than BTIO's.

use dualpar_bench::experiments::run_s3asim_concurrent;
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::IoStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    queries: u64,
    vanilla_io_secs: f64,
    collective_io_secs: f64,
    dualpar_io_secs: f64,
}

fn main() {
    let db: u64 = 512 << 20;
    let mut rows = Vec::new();
    for queries in [16u64, 24, 32] {
        let io_time = |s: IoStrategy| {
            let (r, _) = run_s3asim_concurrent(paper_cluster(), s, queries, db, 3);
            r.programs.iter().map(|p| p.mean_io_time_secs()).sum::<f64>()
        };
        rows.push(Row {
            queries,
            vanilla_io_secs: io_time(IoStrategy::Vanilla),
            collective_io_secs: io_time(IoStrategy::Collective),
            dualpar_io_secs: io_time(IoStrategy::DualParForced),
        });
    }
    print_table(
        "Fig. 5: 3 concurrent S3asim instances — total I/O time (s)",
        &["queries", "vanilla", "collective", "DualPar", "dp saving"],
        &rows
            .iter()
            .map(|r| {
                let best_other = r.vanilla_io_secs.min(r.collective_io_secs);
                vec![
                    r.queries.to_string(),
                    format!("{:.1}", r.vanilla_io_secs),
                    format!("{:.1}", r.collective_io_secs),
                    format!("{:.1}", r.dualpar_io_secs),
                    format!("{:.0}%", (1.0 - r.dualpar_io_secs / best_other) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("fig5_s3asim", &rows);
}
