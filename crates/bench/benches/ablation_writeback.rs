//! Ablation: server-side write handling — write-through (our default
//! steady-state model) vs the paper's literal forced 1-second write-back.
//!
//! Expectation: write-back acknowledges bursts early, so short write
//! workloads *appear* faster; sustained writers converge to the disk's
//! drain rate either way, and DualPar's ordering benefit survives both
//! modes (its batches are sorted before they ever reach the server).

use dualpar_bench::experiments::run_mpiio_pair;
use dualpar_bench::{paper_cluster, print_table, save_json};
use dualpar_cluster::{IoStrategy, ServerWriteMode};
use dualpar_disk::IoKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    vanilla_mbps: f64,
    dualpar_mbps: f64,
}

fn main() {
    let file: u64 = 256 << 20;
    let mut rows = Vec::new();
    for mode in [ServerWriteMode::WriteThrough, ServerWriteMode::WriteBack] {
        let thr = |s: IoStrategy| {
            let mut cfg = paper_cluster();
            cfg.server_write_mode = mode;
            let (r, _) = run_mpiio_pair(cfg, s, IoKind::Write, file);
            r.aggregate_throughput_mbps()
        };
        rows.push(Row {
            mode: format!("{mode:?}"),
            vanilla_mbps: thr(IoStrategy::Vanilla),
            dualpar_mbps: thr(IoStrategy::DualParForced),
        });
    }
    print_table(
        "Ablation: server write mode (2 concurrent mpi-io-test writers, MB/s)",
        &["server mode", "vanilla", "DualPar"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    format!("{:.0}", r.vanilla_mbps),
                    format!("{:.0}", r.dualpar_mbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_writeback", &rows);
}
