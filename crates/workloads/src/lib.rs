//! # dualpar-workloads
//!
//! Access-pattern-faithful generators for the paper's benchmarks (§V-A):
//! `mpi-io-test`, `hpio`, `ior-mpi-io`, `noncontig`, `S3asim`, `BTIO`, plus
//! the §II motivating synthetic (`Demo`) and the Table III data-dependent
//! adversary (`DependentReader`).
//!
//! Beyond the fixed benchmarks, the crate provides a compositional workload
//! DSL ([`dsl`]) — access patterns and combinators as serializable data —
//! and an open-loop arrival layer ([`arrivals`]) that spawns decorrelated
//! program instances over simulated time. See `docs/WORKLOADS.md`.

pub mod arrivals;
pub mod common;
pub mod distr;
pub mod dsl;
pub mod replay;
pub mod suite;

pub use arrivals::{instance_seed, ArrivalProcess, Arrivals};
pub use common::{build_program, compute, compute_for_io_ratio, io_region};
pub use distr::{OffsetDistr, SizeDistr};
pub use dsl::{AccessPattern, DslWorkload, OpenLoopExt, WorkloadExpr};
pub use replay::{TraceEntry, TraceReplay};
pub use suite::{Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim};
