//! # dualpar-workloads
//!
//! Access-pattern-faithful generators for the paper's benchmarks (§V-A):
//! `mpi-io-test`, `hpio`, `ior-mpi-io`, `noncontig`, `S3asim`, `BTIO`, plus
//! the §II motivating synthetic (`Demo`) and the Table III data-dependent
//! adversary (`DependentReader`).

pub mod common;
pub mod replay;
pub mod suite;

pub use common::{build_program, compute, compute_for_io_ratio, io_region};
pub use replay::{TraceEntry, TraceReplay};
pub use suite::{Btio, Demo, DependentReader, Hpio, IorMpiIo, MpiIoTest, Noncontig, S3asim};
