//! Request-size and file-offset distributions for the workload DSL.
//!
//! Both distributions are serializable spec fragments sampled through the
//! workspace's deterministic [`DetRng`] streams, so a spec plus a seed fully
//! determines every byte a generated workload touches. Offsets come in two
//! flavours: *partitioned* patterns (sequential, strided, uniform random)
//! confine each rank to its own disjoint slab of the file, which keeps
//! writes race-free; the *shared* Zipf hotspot pattern deliberately lets
//! read offsets collide across ranks to model contended hot data (its
//! writes still land in the rank's own slab).

use dualpar_sim::DetRng;
use serde::{Deserialize, Serialize};

/// Distribution of per-request sizes, in bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SizeDistr {
    /// Every request moves exactly `bytes`.
    Fixed {
        /// Request size in bytes.
        bytes: u64,
    },
    /// Uniform over `[min, max]` (inclusive), rounded to 512-byte sectors.
    Uniform {
        /// Smallest request, bytes.
        min: u64,
        /// Largest request, bytes.
        max: u64,
    },
    /// Mostly `small` requests with an occasional `large` one — the classic
    /// metadata-plus-checkpoint mix.
    Bimodal {
        /// The common request size, bytes.
        small: u64,
        /// The rare request size, bytes.
        large: u64,
        /// Probability of drawing `large`, in `[0, 1]`.
        large_fraction: f64,
    },
}

impl Default for SizeDistr {
    fn default() -> Self {
        SizeDistr::Fixed { bytes: 64 << 10 }
    }
}

impl SizeDistr {
    /// Largest size this distribution can produce (used for bounds checks).
    pub fn max_bytes(&self) -> u64 {
        match *self {
            SizeDistr::Fixed { bytes } => bytes,
            SizeDistr::Uniform { min, max } => max.max(min),
            SizeDistr::Bimodal { small, large, .. } => small.max(large),
        }
    }

    /// Mean size in bytes (used for cost estimation only).
    pub fn mean_bytes(&self) -> u64 {
        match *self {
            SizeDistr::Fixed { bytes } => bytes,
            SizeDistr::Uniform { min, max } => (min + max.max(min)) / 2,
            SizeDistr::Bimodal {
                small,
                large,
                large_fraction,
            } => {
                let p = large_fraction.clamp(0.0, 1.0);
                (small as f64 * (1.0 - p) + large as f64 * p) as u64
            }
        }
    }

    /// Draw one request size. Never zero.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match *self {
            SizeDistr::Fixed { bytes } => bytes.max(1),
            SizeDistr::Uniform { min, max } => {
                let (lo, hi) = (min.max(1), max.max(min).max(1));
                // Round to sectors so generated traces look like real I/O,
                // but never below the requested minimum.
                let raw = rng.uniform_u64(lo, hi + 1);
                (raw / 512 * 512).max(lo)
            }
            SizeDistr::Bimodal {
                small,
                large,
                large_fraction,
            } => {
                if rng.chance(large_fraction.clamp(0.0, 1.0)) {
                    large.max(1)
                } else {
                    small.max(1)
                }
            }
        }
    }

    /// Reject impossible parameterisations.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SizeDistr::Fixed { bytes } => {
                if bytes == 0 {
                    return Err("size.fixed: bytes must be non-zero".into());
                }
            }
            SizeDistr::Uniform { min, max } => {
                if min == 0 || max < min {
                    return Err(format!(
                        "size.uniform: need 0 < min <= max, got min={min} max={max}"
                    ));
                }
            }
            SizeDistr::Bimodal {
                small,
                large,
                large_fraction,
            } => {
                if small == 0 || large == 0 {
                    return Err("size.bimodal: sizes must be non-zero".into());
                }
                if !(0.0..=1.0).contains(&large_fraction) {
                    return Err(format!(
                        "size.bimodal: large_fraction must be in [0,1], got {large_fraction}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Distribution of file offsets for a leaf access pattern.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum OffsetDistr {
    /// Each rank walks its own slab front to back (IOR-style segmented
    /// layout), wrapping if the pattern is longer than the slab.
    #[default]
    Sequential,
    /// Like [`OffsetDistr::Sequential`] but with a fixed gap of `stride`
    /// bytes between consecutive requests (noncontig-style holes).
    Strided {
        /// Gap between consecutive requests, bytes.
        stride: u64,
    },
    /// Uniformly random offsets within the rank's slab.
    Random,
    /// Zipf-distributed block popularity over the *whole file*: block 0 is
    /// the hottest, and `theta` (> 0, typically 0.6–1.2; higher = more
    /// skewed) controls the skew. Reads from all ranks collide on the hot
    /// blocks — the shared-hot-data adversary the closed benchmarks never
    /// exercise. Writes stay inside the rank's slab to remain race-free.
    ZipfHotspot {
        /// Skew exponent (> 0).
        theta: f64,
    },
}


impl OffsetDistr {
    /// Reject impossible parameterisations.
    pub fn validate(&self) -> Result<(), String> {
        if let OffsetDistr::ZipfHotspot { theta } = *self {
            if theta <= 0.0 || !theta.is_finite() {
                return Err(format!(
                    "offsets.zipf_hotspot: theta must be finite and > 0, got {theta}"
                ));
            }
        }
        Ok(())
    }
}

/// Draw a 1-based Zipf(`theta`) rank over `[1, n]` by inverting the
/// continuous power-law CDF `F(k) ∝ k^(1-θ)` — an O(1), precomputation-free
/// approximation of the discrete Zipf distribution that is exact in shape
/// for the bulk and close enough in the head for workload-generation
/// purposes (the hottest block still dominates as θ grows).
pub fn zipf_rank(rng: &mut DetRng, n: u64, theta: f64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let u = rng.unit_f64();
    let nf = n as f64;
    let k = if (theta - 1.0).abs() < 1e-9 {
        // θ → 1 limit: F(k) = ln k / ln n.
        (nf.ln() * u).exp()
    } else {
        let e = 1.0 - theta;
        // F(k) = (k^e - 1) / (n^e - 1); invert for k.
        ((nf.powf(e) - 1.0) * u + 1.0).powf(1.0 / e)
    };
    (k.floor() as u64).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_bimodal_sample_their_support() {
        let mut rng = DetRng::for_stream(1, "distr-test");
        let fixed = SizeDistr::Fixed { bytes: 4096 };
        assert_eq!(fixed.sample(&mut rng), 4096);
        let bi = SizeDistr::Bimodal {
            small: 512,
            large: 1 << 20,
            large_fraction: 0.25,
        };
        let mut saw = [false, false];
        for _ in 0..256 {
            match bi.sample(&mut rng) {
                512 => saw[0] = true,
                1048576 => saw[1] = true,
                other => panic!("bimodal produced {other}"),
            }
        }
        assert!(saw[0] && saw[1], "both modes should appear in 256 draws");
    }

    #[test]
    fn uniform_respects_bounds_and_sectors() {
        let mut rng = DetRng::for_stream(2, "distr-test");
        let u = SizeDistr::Uniform {
            min: 4096,
            max: 65536,
        };
        for _ in 0..512 {
            let s = u.sample(&mut rng);
            assert!((4096..=65536).contains(&s), "{s} out of bounds");
            assert_eq!(s % 512, 0, "{s} not sector aligned");
        }
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let mut rng = DetRng::for_stream(3, "distr-test");
        let n = 1000;
        let mut head = 0u64;
        let draws = 4000;
        for _ in 0..draws {
            let k = zipf_rank(&mut rng, n, 0.99);
            assert!((1..=n).contains(&k));
            if k <= n / 10 {
                head += 1;
            }
        }
        // Under uniform offsets the top decile would get ~10% of draws; a
        // 0.99-skewed Zipf concentrates well over half there.
        assert!(
            head * 2 > draws,
            "top decile drew {head}/{draws}, expected a hot head"
        );
    }

    #[test]
    fn zipf_draws_are_deterministic() {
        let a: Vec<u64> = {
            let mut rng = DetRng::for_stream(7, "zipf");
            (0..64).map(|_| zipf_rank(&mut rng, 512, 1.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = DetRng::for_stream(7, "zipf");
            (0..64).map(|_| zipf_rank(&mut rng, 512, 1.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(SizeDistr::Fixed { bytes: 0 }.validate().is_err());
        assert!(SizeDistr::Uniform { min: 9, max: 4 }.validate().is_err());
        assert!(SizeDistr::Bimodal {
            small: 1,
            large: 2,
            large_fraction: 1.5
        }
        .validate()
        .is_err());
        assert!(OffsetDistr::ZipfHotspot { theta: 0.0 }.validate().is_err());
        assert!(OffsetDistr::ZipfHotspot { theta: f64::NAN }
            .validate()
            .is_err());
    }

    #[test]
    fn distrs_round_trip_through_json() {
        for d in [
            SizeDistr::Fixed { bytes: 4096 },
            SizeDistr::Uniform {
                min: 512,
                max: 4096,
            },
            SizeDistr::Bimodal {
                small: 512,
                large: 1 << 20,
                large_fraction: 0.1,
            },
        ] {
            let json = serde_json::to_string(&d).expect("serialize");
            let back: SizeDistr = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, d);
        }
        for o in [
            OffsetDistr::Sequential,
            OffsetDistr::Strided { stride: 1 << 16 },
            OffsetDistr::Random,
            OffsetDistr::ZipfHotspot { theta: 0.99 },
        ] {
            let json = serde_json::to_string(&o).expect("serialize");
            let back: OffsetDistr = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, o);
        }
    }
}
