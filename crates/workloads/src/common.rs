//! Shared helpers for workload generators.

use dualpar_mpiio::{IoCall, IoKind, Op, ProcessScript, ProgramScript};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::SimDuration;

/// Build a [`ProgramScript`] from a per-rank op generator.
pub fn build_program(
    name: &str,
    nprocs: usize,
    mut rank_ops: impl FnMut(usize) -> Vec<Op>,
) -> ProgramScript {
    ProgramScript {
        name: name.to_string(),
        ranks: (0..nprocs)
            .map(|r| ProcessScript::new(rank_ops(r)))
            .collect(),
    }
}

/// An I/O op on a single contiguous region.
pub fn io_region(kind: IoKind, file: FileId, offset: u64, len: u64, collective: bool) -> Op {
    let mut call = IoCall {
        kind,
        file,
        regions: vec![FileRegion::new(offset, len)],
        collective,
        predicted: None,
    };
    call.regions.retain(|r| r.len > 0);
    Op::Io(call)
}

/// A compute burst (skipped entirely when zero).
pub fn compute(d: SimDuration) -> Op {
    Op::Compute(d)
}

/// Derive the per-call compute time that yields a target I/O ratio given an
/// estimated per-call I/O time: `ratio = io / (io + compute)`.
pub fn compute_for_io_ratio(est_io_per_call: SimDuration, io_ratio: f64) -> SimDuration {
    assert!((0.0..=1.0).contains(&io_ratio));
    if io_ratio <= 0.0 {
        return SimDuration::from_secs(3600);
    }
    if io_ratio >= 1.0 {
        return SimDuration::ZERO;
    }
    let io = est_io_per_call.as_secs_f64();
    SimDuration::from_secs_f64(io * (1.0 - io_ratio) / io_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_ratio_math() {
        let io = SimDuration::from_millis(10);
        // 50% ratio: compute equals io time.
        assert_eq!(compute_for_io_ratio(io, 0.5), io);
        // 100% ratio: no compute.
        assert_eq!(compute_for_io_ratio(io, 1.0), SimDuration::ZERO);
        // 25% ratio: compute = 3x io.
        assert_eq!(compute_for_io_ratio(io, 0.25), SimDuration::from_millis(30));
    }

    #[test]
    fn build_program_ranks() {
        let p = build_program("t", 4, |r| {
            vec![io_region(IoKind::Read, FileId(1), r as u64 * 100, 100, false)]
        });
        assert_eq!(p.nprocs(), 4);
        assert_eq!(p.ranks[2].total_io_bytes(), 100);
    }
}
