//! A compositional workload DSL: access patterns as data, not code.
//!
//! The paper's benchmarks each hard-code one access pattern; the DSL makes
//! pattern structure a first-class, serializable value instead. A
//! [`WorkloadExpr`] is a small recursive expression tree: leaves are
//! [`AccessPattern`]s (offset distribution × request-size distribution ×
//! read/write mix), and combinators compose them:
//!
//! - [`WorkloadExpr::Seq`] — run sub-workloads back to back;
//! - [`WorkloadExpr::Interleave`] — round-robin their operations;
//! - [`WorkloadExpr::Repeat`] — iterate a body N times;
//! - [`WorkloadExpr::Phased`] — BSP phases: compute, body, barrier;
//! - [`WorkloadExpr::Scaled`] — multiply leaf op counts by a factor.
//!
//! A [`DslWorkload`] wraps an expression with the run parameters (ranks,
//! file size, seed, name) and compiles it to a [`ProgramScript`].
//!
//! ## Determinism and seeding
//!
//! Every random draw comes from `DetRng::for_stream(seed, "dsl")`
//! sub-streamed by rank, so a spec is a pure description: building it twice
//! — or on different suite worker threads — yields byte-identical scripts.
//! All ranks walk the same expression tree, so barrier sequences agree by
//! construction even though each rank draws different sizes and offsets.
//! Open-loop arrival instances are reseeded per instance via
//! [`instance_seed`], keeping concurrent tenants decorrelated but
//! reproducible.

use crate::arrivals::{instance_seed, Arrivals};
use crate::common::{build_program, compute, io_region};
use crate::distr::{zipf_rank, OffsetDistr, SizeDistr};
use dualpar_cluster::{Experiment, IoStrategy};
use dualpar_mpiio::{IoKind, Op, ProgramScript};
use dualpar_pfs::FileId;
use dualpar_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Maximum expression-tree depth accepted by [`DslWorkload::validate`].
pub const MAX_DEPTH: u32 = 16;

/// Maximum estimated operations per rank accepted by
/// [`DslWorkload::validate`] — a guard against `Repeat`/`Scaled` blow-ups.
pub const MAX_OPS_PER_RANK: u64 = 4 << 20;

/// One leaf access pattern: `ops` I/O calls per rank, each with a size drawn
/// from `size` and an offset drawn from `offsets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct AccessPattern {
    /// I/O calls issued per rank.
    pub ops: u64,
    /// Per-request size distribution.
    pub size: SizeDistr,
    /// File-offset distribution.
    pub offsets: OffsetDistr,
    /// Fraction of calls that are writes, in `[0, 1]` (0 = read-only).
    pub write_fraction: f64,
    /// Compute burst before each call, seconds (0 = I/O-bound).
    pub compute_secs_per_op: f64,
    /// Insert a barrier after every this many calls (0 = never).
    pub barrier_every: u64,
    /// Issue calls through the collective-I/O path.
    pub collective: bool,
}

impl Default for AccessPattern {
    fn default() -> Self {
        AccessPattern {
            ops: 64,
            size: SizeDistr::default(),
            offsets: OffsetDistr::default(),
            write_fraction: 0.0,
            compute_secs_per_op: 0.0,
            barrier_every: 0,
            collective: false,
        }
    }
}

/// A recursive, serializable workload expression — see the
/// [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkloadExpr {
    /// Leaf: one access pattern.
    Pattern(AccessPattern),
    /// Run each child's operations back to back.
    Seq(Vec<WorkloadExpr>),
    /// Round-robin the children's operations one at a time.
    Interleave(Vec<WorkloadExpr>),
    /// Repeat the body `times` times.
    Repeat {
        /// Iteration count (>= 1).
        times: u64,
        /// The repeated sub-expression.
        body: Box<WorkloadExpr>,
    },
    /// Bulk-synchronous phases: each phase is a compute burst, the body's
    /// operations, then a barrier across all ranks.
    Phased {
        /// Number of phases (>= 1).
        phases: u64,
        /// Compute burst at the start of each phase, seconds.
        compute_secs: f64,
        /// The per-phase sub-expression.
        body: Box<WorkloadExpr>,
    },
    /// Multiply every leaf's op count by `factor` (composes
    /// multiplicatively; results round to at least one op).
    Scaled {
        /// Op-count multiplier (> 0).
        factor: f64,
        /// The scaled sub-expression.
        body: Box<WorkloadExpr>,
    },
}

impl Default for WorkloadExpr {
    fn default() -> Self {
        WorkloadExpr::Pattern(AccessPattern::default())
    }
}

/// Per-rank generation context: where this rank's disjoint slab lives.
struct EmitCtx {
    file: FileId,
    file_size: u64,
    /// Slab size (`file_size / nprocs`).
    slab: u64,
    /// This rank's slab base offset.
    base: u64,
}

impl WorkloadExpr {
    /// Expression-tree depth (a leaf is depth 1).
    pub fn depth(&self) -> u32 {
        match self {
            WorkloadExpr::Pattern(_) => 1,
            WorkloadExpr::Seq(xs) | WorkloadExpr::Interleave(xs) => {
                1 + xs.iter().map(WorkloadExpr::depth).max().unwrap_or(0)
            }
            WorkloadExpr::Repeat { body, .. }
            | WorkloadExpr::Phased { body, .. }
            | WorkloadExpr::Scaled { body, .. } => 1 + body.depth(),
        }
    }

    /// Estimated I/O calls per rank under op-count multiplier `scale`
    /// (saturating; feeds validation and cost estimation).
    pub fn estimated_ops(&self, scale: f64) -> u64 {
        match self {
            WorkloadExpr::Pattern(p) => scaled_ops(p.ops, scale),
            WorkloadExpr::Seq(xs) | WorkloadExpr::Interleave(xs) => xs
                .iter()
                .fold(0u64, |acc, x| acc.saturating_add(x.estimated_ops(scale))),
            WorkloadExpr::Repeat { times, body } => {
                body.estimated_ops(scale).saturating_mul(*times)
            }
            WorkloadExpr::Phased { phases, body, .. } => {
                body.estimated_ops(scale).saturating_mul(*phases)
            }
            WorkloadExpr::Scaled { factor, body } => body.estimated_ops(scale * factor),
        }
    }

    /// Estimated engine file requests per rank under op-count multiplier
    /// `scale`: each leaf op fans out into roughly `mean_size / 64 KiB`
    /// stripe-sized requests once the I/O layer splits it, so a pattern of
    /// few huge calls costs what it actually costs to simulate, not what
    /// its op count suggests.
    pub fn estimated_requests(&self, scale: f64) -> u64 {
        /// The engine's striping unit; requests are split to this size.
        const STRIPE_BYTES: u64 = 64 << 10;
        match self {
            WorkloadExpr::Pattern(p) => {
                let fanout = p.size.mean_bytes().div_ceil(STRIPE_BYTES).max(1);
                scaled_ops(p.ops, scale).saturating_mul(fanout)
            }
            WorkloadExpr::Seq(xs) | WorkloadExpr::Interleave(xs) => xs
                .iter()
                .fold(0u64, |acc, x| acc.saturating_add(x.estimated_requests(scale))),
            WorkloadExpr::Repeat { times, body } => {
                body.estimated_requests(scale).saturating_mul(*times)
            }
            WorkloadExpr::Phased { phases, body, .. } => {
                body.estimated_requests(scale).saturating_mul(*phases)
            }
            WorkloadExpr::Scaled { factor, body } => body.estimated_requests(scale * factor),
        }
    }

    /// Largest request size any leaf can draw (bounds the slab check).
    pub fn max_request(&self) -> u64 {
        match self {
            WorkloadExpr::Pattern(p) => p.size.max_bytes(),
            WorkloadExpr::Seq(xs) | WorkloadExpr::Interleave(xs) => {
                xs.iter().map(WorkloadExpr::max_request).max().unwrap_or(0)
            }
            WorkloadExpr::Repeat { body, .. }
            | WorkloadExpr::Phased { body, .. }
            | WorkloadExpr::Scaled { body, .. } => body.max_request(),
        }
    }

    /// Validate this expression (structure and leaf parameters).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadExpr::Pattern(p) => {
                if p.ops == 0 {
                    return Err("pattern: ops must be >= 1".into());
                }
                p.size.validate()?;
                p.offsets.validate()?;
                if !(0.0..=1.0).contains(&p.write_fraction) {
                    return Err(format!(
                        "pattern: write_fraction must be in [0,1], got {}",
                        p.write_fraction
                    ));
                }
                if p.compute_secs_per_op < 0.0 || !p.compute_secs_per_op.is_finite() {
                    return Err(format!(
                        "pattern: compute_secs_per_op must be finite and >= 0, got {}",
                        p.compute_secs_per_op
                    ));
                }
                Ok(())
            }
            WorkloadExpr::Seq(xs) | WorkloadExpr::Interleave(xs) => {
                if xs.is_empty() {
                    return Err("seq/interleave: needs at least one child".into());
                }
                xs.iter().try_for_each(WorkloadExpr::validate)
            }
            WorkloadExpr::Repeat { times, body } => {
                if *times == 0 {
                    return Err("repeat: times must be >= 1".into());
                }
                body.validate()
            }
            WorkloadExpr::Phased {
                phases,
                compute_secs,
                body,
            } => {
                if *phases == 0 {
                    return Err("phased: phases must be >= 1".into());
                }
                if *compute_secs < 0.0 || !compute_secs.is_finite() {
                    return Err(format!(
                        "phased: compute_secs must be finite and >= 0, got {compute_secs}"
                    ));
                }
                body.validate()
            }
            WorkloadExpr::Scaled { factor, body } => {
                if *factor <= 0.0 || !factor.is_finite() {
                    return Err(format!("scaled: factor must be finite and > 0, got {factor}"));
                }
                body.validate()
            }
        }
    }

    /// Generate this expression's operations for one rank. All ranks call
    /// this over the same tree, so barrier emission (structural, never
    /// random) stays rank-consistent.
    fn emit(
        &self,
        ctx: &EmitCtx,
        rng: &mut DetRng,
        scale: f64,
        next_barrier: &mut u64,
        ops: &mut Vec<Op>,
    ) {
        match self {
            WorkloadExpr::Pattern(p) => emit_pattern(p, ctx, rng, scale, next_barrier, ops),
            WorkloadExpr::Seq(xs) => {
                for x in xs {
                    x.emit(ctx, rng, scale, next_barrier, ops);
                }
            }
            WorkloadExpr::Interleave(xs) => {
                // Generate each child separately (draws happen in child
                // order, deterministically), then round-robin merge.
                let mut lanes: Vec<Vec<Op>> = Vec::with_capacity(xs.len());
                for x in xs {
                    let mut lane = Vec::new();
                    x.emit(ctx, rng, scale, next_barrier, &mut lane);
                    lanes.push(lane);
                }
                let mut cursors: Vec<std::vec::IntoIter<Op>> =
                    lanes.into_iter().map(Vec::into_iter).collect();
                loop {
                    let mut emitted = false;
                    for c in &mut cursors {
                        if let Some(op) = c.next() {
                            ops.push(op);
                            emitted = true;
                        }
                    }
                    if !emitted {
                        break;
                    }
                }
            }
            WorkloadExpr::Repeat { times, body } => {
                for _ in 0..*times {
                    body.emit(ctx, rng, scale, next_barrier, ops);
                }
            }
            WorkloadExpr::Phased {
                phases,
                compute_secs,
                body,
            } => {
                for _ in 0..*phases {
                    if *compute_secs > 0.0 {
                        ops.push(compute(SimDuration::from_secs_f64(*compute_secs)));
                    }
                    body.emit(ctx, rng, scale, next_barrier, ops);
                    ops.push(Op::Barrier(*next_barrier));
                    *next_barrier += 1;
                }
            }
            WorkloadExpr::Scaled { factor, body } => {
                body.emit(ctx, rng, scale * factor, next_barrier, ops);
            }
        }
    }
}

/// `ops * scale`, rounded, at least 1, saturating.
fn scaled_ops(ops: u64, scale: f64) -> u64 {
    let scaled = ops as f64 * scale;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        (scaled.round() as u64).max(1)
    }
}

fn emit_pattern(
    p: &AccessPattern,
    ctx: &EmitCtx,
    rng: &mut DetRng,
    scale: f64,
    next_barrier: &mut u64,
    ops: &mut Vec<Op>,
) {
    let n = scaled_ops(p.ops, scale);
    // Sequential/strided walks keep a cursor local to this leaf instance:
    // repeating a leaf re-walks the same slab (a re-read / overwrite pass).
    let mut cursor = 0u64;
    for k in 0..n {
        if p.compute_secs_per_op > 0.0 {
            ops.push(compute(SimDuration::from_secs_f64(p.compute_secs_per_op)));
        }
        let is_write = p.write_fraction > 0.0 && rng.chance(p.write_fraction);
        let kind = if is_write { IoKind::Write } else { IoKind::Read };
        let len = p.size.sample(rng).min(ctx.slab.max(1));
        let offset = match p.offsets {
            OffsetDistr::Sequential => {
                if cursor + len > ctx.slab {
                    cursor = 0;
                }
                let off = ctx.base + cursor;
                cursor += len;
                off
            }
            OffsetDistr::Strided { stride } => {
                if cursor + len > ctx.slab {
                    cursor = 0;
                }
                let off = ctx.base + cursor;
                cursor = cursor.saturating_add(len).saturating_add(stride);
                off
            }
            OffsetDistr::Random => {
                let span = ctx.slab - len;
                ctx.base + if span == 0 { 0 } else { rng.uniform_u64(0, span + 1) }
            }
            OffsetDistr::ZipfHotspot { theta } => {
                if is_write {
                    // Writes stay slab-local to remain race-free.
                    let slots = (ctx.slab / len).max(1);
                    ctx.base + (zipf_rank(rng, slots, theta) - 1) * len
                } else {
                    // Reads contend on the globally hot head of the file.
                    let slots = (ctx.file_size / len).max(1);
                    (zipf_rank(rng, slots, theta) - 1) * len
                }
            }
        };
        ops.push(io_region(kind, ctx.file, offset, len, p.collective));
        if p.barrier_every > 0 && (k + 1) % p.barrier_every == 0 {
            ops.push(Op::Barrier(*next_barrier));
            *next_barrier += 1;
        }
    }
}

/// A complete DSL workload: an expression plus its run parameters. The
/// DSL-side counterpart of the named benchmark structs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct DslWorkload {
    /// Program label (also the stem of the backing file's name).
    pub name: String,
    /// MPI ranks.
    pub nprocs: usize,
    /// Backing file size, bytes. Each rank owns a `file_size / nprocs`
    /// slab; only Zipf-hotspot reads range over the whole file.
    pub file_size: u64,
    /// Master seed for this workload's deterministic draws.
    pub seed: u64,
    /// The access-pattern expression.
    pub expr: WorkloadExpr,
}

impl Default for DslWorkload {
    fn default() -> Self {
        DslWorkload {
            name: "dsl".into(),
            nprocs: 8,
            file_size: 64 << 20,
            seed: 1,
            expr: WorkloadExpr::default(),
        }
    }
}

impl DslWorkload {
    /// Validate run parameters and the expression tree.
    pub fn validate(&self) -> Result<(), String> {
        if self.nprocs == 0 {
            return Err("dsl: nprocs must be >= 1".into());
        }
        if self.file_size == 0 {
            return Err("dsl: file_size must be non-zero".into());
        }
        if self.name.is_empty() {
            return Err("dsl: name must be non-empty".into());
        }
        let depth = self.expr.depth();
        if depth > MAX_DEPTH {
            return Err(format!("dsl: expression depth {depth} exceeds {MAX_DEPTH}"));
        }
        self.expr.validate()?;
        let ops = self.expr.estimated_ops(1.0);
        if ops > MAX_OPS_PER_RANK {
            return Err(format!(
                "dsl: ~{ops} ops per rank exceeds the {MAX_OPS_PER_RANK} guard"
            ));
        }
        let slab = self.file_size / self.nprocs as u64;
        let need = self.expr.max_request();
        if slab < need {
            return Err(format!(
                "dsl: per-rank slab is {slab} bytes but the largest request is {need}; \
                 grow file_size or shrink nprocs/request sizes"
            ));
        }
        Ok(())
    }

    /// Estimated engine file requests across all ranks (suite scheduling
    /// cost proxy, comparable to the named presets' request counts): I/O
    /// calls weighted by each leaf's stripe fan-out, so a DSL workload of
    /// few megabyte-sized ops ranks where its simulation cost actually
    /// lands instead of at the bottom of the longest-first schedule.
    pub fn cost(&self) -> u64 {
        self.expr
            .estimated_requests(1.0)
            .saturating_mul(self.nprocs as u64)
    }

    /// Compile to a program script against `file`. Purely a function of
    /// `self` and `file` — see the module docs on determinism.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let slab = (self.file_size / self.nprocs as u64).max(1);
        let root = DetRng::for_stream(self.seed, "dsl");
        build_program(&self.name, self.nprocs, |rank| {
            let mut rng = root.substream(rank as u64);
            let ctx = EmitCtx {
                file,
                file_size: self.file_size,
                slab,
                base: rank as u64 * slab,
            };
            let mut ops = Vec::new();
            let mut next_barrier = 0u64;
            self.expr.emit(&ctx, &mut rng, 1.0, &mut next_barrier, &mut ops);
            ops
        })
    }

    /// A decorrelated copy for open-loop instance `instance`: same
    /// structure, independently seeded draws.
    pub fn reseeded(&self, instance: u64) -> Self {
        DslWorkload {
            seed: instance_seed(self.seed, instance),
            ..self.clone()
        }
    }
}

/// Extension methods wiring the DSL and arrival layer into the fluent
/// [`Experiment`] builder. A blanket trait (rather than inherent methods)
/// keeps the cluster crate free of any workload-layer dependency.
pub trait OpenLoopExt: Sized {
    /// Declare the workload's backing file and add one program running the
    /// expression under `strategy`, starting at time zero.
    fn workload_expr(self, strategy: IoStrategy, w: &DslWorkload) -> Self;

    /// Open-loop admission: expand `arrivals` into concrete start times and
    /// add one decorrelated instance of `w` (own file, own seed, label
    /// `{name}-a{i}`) per arrival. With a zero-arrival process this adds
    /// nothing — the builder then reports `NoPrograms` unless other
    /// programs exist.
    fn arrivals(self, strategy: IoStrategy, w: &DslWorkload, arrivals: &Arrivals) -> Self;
}

impl OpenLoopExt for Experiment {
    fn workload_expr(self, strategy: IoStrategy, w: &DslWorkload) -> Self {
        let idx = self.files_declared();
        let w = w.clone();
        self.file(w.name.clone(), w.file_size)
            .program(strategy, move |files| w.build(files[idx]))
    }

    fn arrivals(mut self, strategy: IoStrategy, w: &DslWorkload, arrivals: &Arrivals) -> Self {
        let starts: Vec<SimTime> = arrivals
            .times()
            .into_iter()
            .map(SimTime::from_secs_f64)
            .collect();
        let base = self.files_declared();
        let mut instances = Vec::with_capacity(starts.len());
        for i in 0..starts.len() {
            let mut wi = w.reseeded(i as u64);
            wi.name = format!("{}-a{i}", w.name);
            self = self.file(wi.name.clone(), wi.file_size);
            instances.push(wi);
        }
        self.program_instances(strategy, &starts, move |i, files| {
            instances[i].build(files[base + i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;

    fn leaf(ops: u64) -> WorkloadExpr {
        WorkloadExpr::Pattern(AccessPattern {
            ops,
            ..AccessPattern::default()
        })
    }

    fn io_count(script: &ProgramScript, rank: usize) -> usize {
        script.ranks[rank]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Io(_)))
            .count()
    }

    #[test]
    fn default_workload_builds_and_validates() {
        let w = DslWorkload::default();
        w.validate().expect("default validates");
        let script = w.build(FileId(1));
        assert_eq!(script.nprocs(), 8);
        assert!(script.barriers_consistent());
        assert_eq!(io_count(&script, 0), 64);
    }

    #[test]
    fn combinators_compose_op_counts() {
        let expr = WorkloadExpr::Repeat {
            times: 3,
            body: Box::new(WorkloadExpr::Seq(vec![leaf(4), leaf(2)])),
        };
        assert_eq!(expr.estimated_ops(1.0), 18);
        let w = DslWorkload {
            expr,
            nprocs: 2,
            ..DslWorkload::default()
        };
        let script = w.build(FileId(1));
        assert_eq!(io_count(&script, 0), 18);
        assert_eq!(io_count(&script, 1), 18);
    }

    #[test]
    fn cost_weighs_request_fanout_not_just_ops() {
        // Few megabyte-sized ops simulate as many stripe requests; the
        // cost estimate must rank them above many tiny ops, or the
        // longest-first suite schedule runs its dominant entry last.
        let big = DslWorkload {
            nprocs: 4,
            expr: WorkloadExpr::Pattern(AccessPattern {
                ops: 8,
                size: SizeDistr::Fixed { bytes: 1 << 20 },
                ..AccessPattern::default()
            }),
            ..DslWorkload::default()
        };
        let small = DslWorkload {
            nprocs: 4,
            expr: WorkloadExpr::Pattern(AccessPattern {
                ops: 64,
                size: SizeDistr::Fixed { bytes: 4 << 10 },
                ..AccessPattern::default()
            }),
            ..DslWorkload::default()
        };
        // 8 ops × (1 MiB / 64 KiB) = 128 requests per rank, × 4 ranks.
        assert_eq!(big.cost(), 8 * 16 * 4);
        // Sub-stripe requests still count one request per op.
        assert_eq!(small.cost(), 64 * 4);
        assert!(big.cost() > small.cost());
        // The fan-out follows the distribution mean, not the max.
        let mixed = WorkloadExpr::Pattern(AccessPattern {
            ops: 10,
            size: SizeDistr::Bimodal {
                small: 64 << 10,
                large: 16 << 20,
                large_fraction: 0.25,
            },
            ..AccessPattern::default()
        });
        let mean = (64u64 << 10) * 3 / 4 + (16u64 << 20) / 4;
        assert_eq!(mixed.estimated_requests(1.0), 10 * mean.div_ceil(64 << 10));
    }

    #[test]
    fn phased_emits_consistent_barriers() {
        let w = DslWorkload {
            nprocs: 4,
            expr: WorkloadExpr::Phased {
                phases: 5,
                compute_secs: 0.001,
                body: Box::new(leaf(8)),
            },
            ..DslWorkload::default()
        };
        let script = w.build(FileId(1));
        assert!(script.barriers_consistent());
        let barriers = script.ranks[0]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Barrier(_)))
            .count();
        assert_eq!(barriers, 5);
    }

    #[test]
    fn interleave_round_robins_children() {
        let a = WorkloadExpr::Pattern(AccessPattern {
            ops: 3,
            write_fraction: 1.0,
            ..AccessPattern::default()
        });
        let w = DslWorkload {
            nprocs: 1,
            expr: WorkloadExpr::Interleave(vec![a, leaf(3)]),
            ..DslWorkload::default()
        };
        let script = w.build(FileId(1));
        let kinds: Vec<IoKind> = script.ranks[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Io(c) => Some(c.kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                IoKind::Write,
                IoKind::Read,
                IoKind::Write,
                IoKind::Read,
                IoKind::Write,
                IoKind::Read
            ]
        );
    }

    #[test]
    fn scaled_multiplies_leaf_ops() {
        let expr = WorkloadExpr::Scaled {
            factor: 2.5,
            body: Box::new(leaf(4)),
        };
        assert_eq!(expr.estimated_ops(1.0), 10);
        let w = DslWorkload {
            nprocs: 1,
            expr,
            ..DslWorkload::default()
        };
        assert_eq!(io_count(&w.build(FileId(1)), 0), 10);
    }

    #[test]
    fn builds_are_deterministic_and_reseeding_decorrelates() {
        let w = DslWorkload {
            expr: WorkloadExpr::Pattern(AccessPattern {
                ops: 32,
                offsets: OffsetDistr::ZipfHotspot { theta: 0.99 },
                write_fraction: 0.3,
                ..AccessPattern::default()
            }),
            ..DslWorkload::default()
        };
        assert_eq!(w.build(FileId(1)), w.build(FileId(1)));
        let r = w.reseeded(1);
        assert_eq!(r.nprocs, w.nprocs);
        assert_ne!(r.seed, w.seed);
        assert_ne!(w.build(FileId(1)), r.build(FileId(1)));
        // Reseeding is itself deterministic.
        assert_eq!(r.build(FileId(1)), w.reseeded(1).build(FileId(1)));
    }

    #[test]
    fn offsets_stay_in_bounds_for_every_distr() {
        for offsets in [
            OffsetDistr::Sequential,
            OffsetDistr::Strided { stride: 100_000 },
            OffsetDistr::Random,
            OffsetDistr::ZipfHotspot { theta: 1.2 },
        ] {
            let w = DslWorkload {
                nprocs: 4,
                file_size: 8 << 20,
                expr: WorkloadExpr::Pattern(AccessPattern {
                    ops: 200,
                    size: SizeDistr::Uniform {
                        min: 4096,
                        max: 1 << 20,
                    },
                    offsets: offsets.clone(),
                    write_fraction: 0.5,
                    ..AccessPattern::default()
                }),
                ..DslWorkload::default()
            };
            w.validate().expect("valid");
            let script = w.build(FileId(1));
            let slab = w.file_size / w.nprocs as u64;
            for (rank, ps) in script.ranks.iter().enumerate() {
                for op in &ps.ops {
                    if let Op::Io(c) = op {
                        for r in &c.regions {
                            assert!(
                                r.offset + r.len <= w.file_size,
                                "{offsets:?}: region past EOF"
                            );
                            if c.kind == IoKind::Write {
                                let base = rank as u64 * slab;
                                assert!(
                                    r.offset >= base && r.offset + r.len <= base + slab,
                                    "{offsets:?}: write escaped rank {rank}'s slab"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn validation_rejects_bad_trees() {
        let too_deep = (0..20).fold(leaf(1), |e, _| WorkloadExpr::Repeat {
            times: 1,
            body: Box::new(e),
        });
        assert!(DslWorkload {
            expr: too_deep,
            ..DslWorkload::default()
        }
        .validate()
        .is_err());
        assert!(DslWorkload {
            expr: WorkloadExpr::Seq(vec![]),
            ..DslWorkload::default()
        }
        .validate()
        .is_err());
        assert!(DslWorkload {
            expr: WorkloadExpr::Repeat {
                times: u64::MAX,
                body: Box::new(leaf(1000)),
            },
            ..DslWorkload::default()
        }
        .validate()
        .is_err());
        // Requests larger than the per-rank slab are rejected.
        assert!(DslWorkload {
            file_size: 1 << 20,
            nprocs: 8,
            expr: WorkloadExpr::Pattern(AccessPattern {
                size: SizeDistr::Fixed { bytes: 1 << 20 },
                ..AccessPattern::default()
            }),
            ..DslWorkload::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn expr_round_trips_through_json() {
        let w = DslWorkload {
            name: "mix".into(),
            nprocs: 4,
            file_size: 16 << 20,
            seed: 99,
            expr: WorkloadExpr::Phased {
                phases: 2,
                compute_secs: 0.01,
                body: Box::new(WorkloadExpr::Interleave(vec![
                    WorkloadExpr::Pattern(AccessPattern {
                        ops: 16,
                        offsets: OffsetDistr::ZipfHotspot { theta: 0.9 },
                        ..AccessPattern::default()
                    }),
                    WorkloadExpr::Scaled {
                        factor: 0.5,
                        body: Box::new(leaf(8)),
                    },
                ])),
            },
        };
        let json = serde_json::to_string(&w).expect("serialize");
        let back: DslWorkload = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, w);
        assert_eq!(back.build(FileId(1)), w.build(FileId(1)));
    }

    #[test]
    fn builder_extension_runs_open_loop_instances() {
        let w = DslWorkload {
            name: "tenant".into(),
            nprocs: 2,
            file_size: 4 << 20,
            expr: leaf(8),
            ..DslWorkload::default()
        };
        let arr = Arrivals {
            process: ArrivalProcess::Poisson { rate_per_sec: 2.0 },
            horizon_secs: 3.0,
            seed: 5,
            max_instances: 4,
        };
        let n = arr.times().len();
        assert!(n >= 1, "expected at least one arrival in 3s at rate 2/s");
        let report = Experiment::darwin()
            .servers(3)
            .compute_nodes(2)
            .workload_expr(IoStrategy::Vanilla, &w)
            .arrivals(IoStrategy::DualPar, &w, &arr)
            .run()
            .expect("valid experiment");
        assert_eq!(report.programs.len(), 1 + n);
    }
}
