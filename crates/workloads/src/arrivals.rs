//! Open-loop arrival processes: program instances spawned over simulated
//! time instead of a fixed start list.
//!
//! An [`Arrivals`] spec deterministically expands to a sorted list of
//! arrival times ([`Arrivals::times`]) from its own seed — the expansion
//! happens at experiment-assembly time, so the assembled cluster stays a
//! pure function of the spec and byte-identical suite verification keeps
//! working. Three processes cover the usual traffic shapes:
//!
//! - [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant rate;
//! - [`ArrivalProcess::OnOff`] — bursty traffic: Poisson arrivals during
//!   `on_secs` windows separated by silent `off_secs` gaps;
//! - [`ArrivalProcess::Ramp`] — a diurnal-style linear rate sweep from
//!   `start_rate_per_sec` to `end_rate_per_sec` over the horizon, sampled
//!   by Lewis-Shedler thinning.

use dualpar_sim::DetRng;
use serde::{Deserialize, Serialize};

/// Hard cap on instances when `max_instances` is left at 0.
pub const DEFAULT_MAX_INSTANCES: u64 = 4096;

/// The stochastic shape of an arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArrivalProcess {
    /// Homogeneous Poisson process.
    Poisson {
        /// Mean arrivals per second (> 0).
        rate_per_sec: f64,
    },
    /// Bursty on/off traffic: a Poisson stream gated by alternating
    /// active/silent windows (the stream starts in an active window).
    OnOff {
        /// Mean arrivals per second while active (> 0).
        rate_per_sec: f64,
        /// Active-window length, seconds (> 0).
        on_secs: f64,
        /// Silent-gap length, seconds (>= 0).
        off_secs: f64,
    },
    /// Inhomogeneous Poisson process whose rate ramps linearly from
    /// `start_rate_per_sec` at time 0 to `end_rate_per_sec` at the horizon.
    Ramp {
        /// Rate at time zero, per second (>= 0).
        start_rate_per_sec: f64,
        /// Rate at the horizon, per second (>= 0; the pair must not both
        /// be zero).
        end_rate_per_sec: f64,
    },
}

/// A complete arrival spec: process, observation window, seed, and cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrivals {
    /// The stochastic process generating arrival times.
    pub process: ArrivalProcess,
    /// Arrivals after this many seconds are dropped.
    pub horizon_secs: f64,
    /// Seed for the arrival stream (independent of workload seeds).
    #[serde(default)]
    pub seed: u64,
    /// Upper bound on spawned instances; 0 means
    /// [`DEFAULT_MAX_INSTANCES`].
    #[serde(default)]
    pub max_instances: u64,
}

impl Default for Arrivals {
    fn default() -> Self {
        Arrivals {
            process: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            horizon_secs: 10.0,
            seed: 0,
            max_instances: 0,
        }
    }
}

impl Arrivals {
    /// The effective instance cap.
    pub fn cap(&self) -> u64 {
        if self.max_instances == 0 {
            DEFAULT_MAX_INSTANCES
        } else {
            self.max_instances
        }
    }

    /// Reject impossible parameterisations.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon_secs <= 0.0 || !self.horizon_secs.is_finite() {
            return Err(format!(
                "arrivals: horizon_secs must be finite and > 0, got {}",
                self.horizon_secs
            ));
        }
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if rate_per_sec <= 0.0 || !rate_per_sec.is_finite() {
                    return Err(format!(
                        "arrivals.poisson: rate_per_sec must be finite and > 0, got {rate_per_sec}"
                    ));
                }
            }
            ArrivalProcess::OnOff {
                rate_per_sec,
                on_secs,
                off_secs,
            } => {
                if rate_per_sec <= 0.0 || !rate_per_sec.is_finite() {
                    return Err(format!(
                        "arrivals.on_off: rate_per_sec must be finite and > 0, got {rate_per_sec}"
                    ));
                }
                if on_secs <= 0.0 || !on_secs.is_finite() {
                    return Err(format!(
                        "arrivals.on_off: on_secs must be finite and > 0, got {on_secs}"
                    ));
                }
                if off_secs < 0.0 || !off_secs.is_finite() {
                    return Err(format!(
                        "arrivals.on_off: off_secs must be finite and >= 0, got {off_secs}"
                    ));
                }
            }
            ArrivalProcess::Ramp {
                start_rate_per_sec,
                end_rate_per_sec,
            } => {
                for (label, r) in [
                    ("start_rate_per_sec", start_rate_per_sec),
                    ("end_rate_per_sec", end_rate_per_sec),
                ] {
                    if r < 0.0 || !r.is_finite() {
                        return Err(format!(
                            "arrivals.ramp: {label} must be finite and >= 0, got {r}"
                        ));
                    }
                }
                if start_rate_per_sec == 0.0 && end_rate_per_sec == 0.0 {
                    return Err("arrivals.ramp: at least one rate must be > 0".into());
                }
            }
        }
        Ok(())
    }

    /// Expand the process into concrete arrival times (seconds, ascending,
    /// all `< horizon_secs`, at most [`Arrivals::cap`] of them). Purely a
    /// function of the spec: the same spec always expands identically.
    pub fn times(&self) -> Vec<f64> {
        let mut rng = DetRng::for_stream(self.seed, "arrivals");
        let cap = self.cap() as usize;
        let mut out = Vec::new();
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                let mean_gap = 1.0 / rate_per_sec;
                let mut t = rng.exp_f64(mean_gap);
                while t < self.horizon_secs && out.len() < cap {
                    out.push(t);
                    t += rng.exp_f64(mean_gap);
                }
            }
            ArrivalProcess::OnOff {
                rate_per_sec,
                on_secs,
                off_secs,
            } => {
                // Draw the Poisson stream in *active* time, then map each
                // active timestamp onto the wall clock by inserting the
                // silent gaps between active windows.
                let mean_gap = 1.0 / rate_per_sec;
                let cycle = on_secs + off_secs;
                let mut active = rng.exp_f64(mean_gap);
                loop {
                    let windows = (active / on_secs).floor();
                    let wall = windows * cycle + (active - windows * on_secs);
                    if wall >= self.horizon_secs || out.len() >= cap {
                        break;
                    }
                    out.push(wall);
                    active += rng.exp_f64(mean_gap);
                }
            }
            ArrivalProcess::Ramp {
                start_rate_per_sec,
                end_rate_per_sec,
            } => {
                // Lewis-Shedler thinning against the peak rate.
                let peak = start_rate_per_sec.max(end_rate_per_sec);
                let mean_gap = 1.0 / peak;
                let mut t = 0.0;
                loop {
                    t += rng.exp_f64(mean_gap);
                    if t >= self.horizon_secs || out.len() >= cap {
                        break;
                    }
                    let rate_at_t = start_rate_per_sec
                        + (end_rate_per_sec - start_rate_per_sec) * (t / self.horizon_secs);
                    if rng.chance(rate_at_t / peak) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// Mix an instance index into a base seed (splitmix64 finalizer), giving
/// each open-loop instance an independent but reproducible stream. Instance
/// 0 is also remixed, so instance streams never alias the base seed's own
/// stream.
pub fn instance_seed(base: u64, instance: u64) -> u64 {
    let mut z = base ^ (instance.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(xs: &[f64]) -> bool {
        xs.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn poisson_times_are_deterministic_sorted_and_bounded() {
        let arr = Arrivals {
            process: ArrivalProcess::Poisson { rate_per_sec: 5.0 },
            horizon_secs: 20.0,
            seed: 11,
            max_instances: 0,
        };
        arr.validate().expect("valid");
        let a = arr.times();
        let b = arr.times();
        assert_eq!(a, b, "expansion must be deterministic");
        assert!(sorted(&a));
        assert!(a.iter().all(|&t| t > 0.0 && t < 20.0));
        // 5/s over 20s ⇒ ~100 arrivals; allow wide slack, reject nonsense.
        assert!((40..=200).contains(&a.len()), "got {} arrivals", a.len());
    }

    #[test]
    fn poisson_respects_the_cap() {
        let arr = Arrivals {
            process: ArrivalProcess::Poisson {
                rate_per_sec: 1000.0,
            },
            horizon_secs: 100.0,
            seed: 1,
            max_instances: 7,
        };
        assert_eq!(arr.times().len(), 7);
        let uncapped = Arrivals {
            max_instances: 0,
            horizon_secs: 1e9,
            ..arr
        };
        assert_eq!(uncapped.times().len() as u64, DEFAULT_MAX_INSTANCES);
    }

    #[test]
    fn on_off_leaves_silent_gaps() {
        let arr = Arrivals {
            process: ArrivalProcess::OnOff {
                rate_per_sec: 50.0,
                on_secs: 1.0,
                off_secs: 2.0,
            },
            horizon_secs: 9.0,
            seed: 3,
            max_instances: 0,
        };
        let times = arr.times();
        assert!(sorted(&times));
        assert!(!times.is_empty());
        for &t in &times {
            // Every arrival must land inside an active window: with a 3s
            // cycle, the fractional cycle position must be < 1s.
            let pos = t % 3.0;
            assert!(pos < 1.0, "arrival at {t} landed in a silent gap");
        }
    }

    #[test]
    fn ramp_shifts_mass_toward_the_high_rate_end() {
        let arr = Arrivals {
            process: ArrivalProcess::Ramp {
                start_rate_per_sec: 0.5,
                end_rate_per_sec: 20.0,
            },
            horizon_secs: 40.0,
            seed: 9,
            max_instances: 0,
        };
        let times = arr.times();
        assert!(sorted(&times));
        let early = times.iter().filter(|&&t| t < 20.0).count();
        let late = times.len() - early;
        assert!(
            late > early * 2,
            "ramp should backload arrivals: {early} early vs {late} late"
        );
    }

    #[test]
    fn instance_seed_decorrelates_and_is_stable() {
        let s0 = instance_seed(42, 0);
        let s1 = instance_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, 42, "instance 0 must not alias the base seed");
        assert_eq!(s0, instance_seed(42, 0));
    }

    #[test]
    fn validation_catches_bad_params() {
        let bad_rate = Arrivals {
            process: ArrivalProcess::Poisson { rate_per_sec: 0.0 },
            ..Arrivals::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_horizon = Arrivals {
            horizon_secs: 0.0,
            ..Arrivals::default()
        };
        assert!(bad_horizon.validate().is_err());
        let dead_ramp = Arrivals {
            process: ArrivalProcess::Ramp {
                start_rate_per_sec: 0.0,
                end_rate_per_sec: 0.0,
            },
            ..Arrivals::default()
        };
        assert!(dead_ramp.validate().is_err());
    }

    #[test]
    fn arrivals_round_trip_through_json() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 2.0 },
            ArrivalProcess::OnOff {
                rate_per_sec: 10.0,
                on_secs: 1.0,
                off_secs: 4.0,
            },
            ArrivalProcess::Ramp {
                start_rate_per_sec: 0.0,
                end_rate_per_sec: 8.0,
            },
        ] {
            let arr = Arrivals {
                process,
                horizon_secs: 30.0,
                seed: 17,
                max_instances: 32,
            };
            let json = serde_json::to_string(&arr).expect("serialize");
            let back: Arrivals = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, arr);
            assert_eq!(back.times(), arr.times());
        }
    }
}
