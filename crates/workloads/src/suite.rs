//! The paper's benchmark suite (§V-A), expressed as access-pattern-faithful
//! script generators. Each generator documents the sentence of the paper it
//! implements.

use crate::common::{build_program, compute, io_region};
use dualpar_mpiio::{Datatype, IoCall, IoKind, Op, ProgramScript};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// `mpi-io-test` (PVFS2 distribution): "read or write a 2 GB file with
/// request size of 16 KB. Process p_i accesses the (i+64j)-th 16 KB segment
/// at call j — the benchmark generates a fully sequential access pattern",
/// with "a barrier routine frequently called in its execution".
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct MpiIoTest {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Total file bytes accessed (2 GB in the paper).
    pub file_size: u64,
    /// Bytes per request (16 KB in the paper).
    pub request_size: u64,
    /// Read or write run.
    pub kind: IoKind,
    /// Mark I/O calls collective (for the collective-I/O strategy).
    pub collective: bool,
    /// Insert a barrier every this many calls (1 = every call, as the
    /// benchmark does; 0 = never).
    pub barrier_every: usize,
    /// Injected computation between calls (sets the I/O ratio).
    pub compute_per_call: SimDuration,
}

impl Default for MpiIoTest {
    fn default() -> Self {
        MpiIoTest {
            nprocs: 64,
            file_size: 2 << 30,
            request_size: 16 * 1024,
            kind: IoKind::Read,
            collective: false,
            barrier_every: 1,
            compute_per_call: SimDuration::ZERO,
        }
    }
}

impl MpiIoTest {
    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let segs = self.file_size / self.request_size;
        let calls = segs / self.nprocs as u64;
        build_program("mpi-io-test", self.nprocs, |rank| {
            let mut ops = Vec::new();
            let mut barrier = 0u64;
            for j in 0..calls {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                let seg = rank as u64 + self.nprocs as u64 * j;
                ops.push(io_region(
                    self.kind,
                    file,
                    seg * self.request_size,
                    self.request_size,
                    self.collective,
                ));
                if self.barrier_every > 0 && (j + 1) % self.barrier_every as u64 == 0 {
                    ops.push(Op::Barrier(barrier));
                    barrier += 1;
                }
            }
            ops
        })
    }
}

/// `hpio` (Northwestern/Sandia): contiguous-ish accesses built from "region
/// count 4096, region spacing 1024 B, region size 32 KB". Each process owns
/// a partition of the file and walks it with 32 KB requests separated by
/// 1 KB of space.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct Hpio {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Regions accessed per process.
    pub region_count: u64,
    /// Bytes of unused space between consecutive regions (1 KB).
    pub region_spacing: u64,
    /// Bytes per region (32 KB).
    pub region_size: u64,
    /// Read or write run.
    pub kind: IoKind,
    /// Mark I/O calls collective.
    pub collective: bool,
    /// Injected computation between calls.
    pub compute_per_call: SimDuration,
}

impl Default for Hpio {
    fn default() -> Self {
        Hpio {
            nprocs: 64,
            region_count: 4096,
            region_spacing: 1024,
            region_size: 32 * 1024,
            kind: IoKind::Read,
            collective: false,
            compute_per_call: SimDuration::ZERO,
        }
    }
}

impl Hpio {
    /// File size needed for this configuration.
    pub fn file_size(&self) -> u64 {
        self.nprocs as u64 * self.region_count * (self.region_size + self.region_spacing)
    }

    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let per_proc = self.region_count * (self.region_size + self.region_spacing);
        build_program("hpio", self.nprocs, |rank| {
            let base = rank as u64 * per_proc;
            let mut ops = Vec::new();
            for i in 0..self.region_count {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                ops.push(io_region(
                    self.kind,
                    file,
                    base + i * (self.region_size + self.region_spacing),
                    self.region_size,
                    self.collective,
                ));
            }
            ops
        })
    }
}

/// `ior-mpi-io` (ASCI Purple): "each MPI process is responsible for reading
/// its own 1/64 of a 16 GB file ... sequential requests, each for a 32 KB
/// segment. The processes' requests are at the same relative offset in each
/// process's access scope — the access pattern presented to the storage
/// system is random."
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct IorMpiIo {
    /// Number of MPI processes (each owns 1/nprocs of the file).
    pub nprocs: usize,
    /// Total file bytes (16 GB in the paper).
    pub file_size: u64,
    /// Bytes per request (32 KB in the paper).
    pub request_size: u64,
    /// Read or write run.
    pub kind: IoKind,
    /// Mark I/O calls collective.
    pub collective: bool,
    /// Injected computation between calls.
    pub compute_per_call: SimDuration,
}

impl Default for IorMpiIo {
    fn default() -> Self {
        IorMpiIo {
            nprocs: 64,
            file_size: 16 << 30,
            request_size: 32 * 1024,
            kind: IoKind::Read,
            collective: false,
            compute_per_call: SimDuration::ZERO,
        }
    }
}

impl IorMpiIo {
    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let scope = self.file_size / self.nprocs as u64;
        let calls = scope / self.request_size;
        build_program("ior-mpi-io", self.nprocs, |rank| {
            let base = rank as u64 * scope;
            let mut ops = Vec::new();
            for i in 0..calls {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                ops.push(io_region(
                    self.kind,
                    file,
                    base + i * self.request_size,
                    self.request_size,
                    self.collective,
                ));
            }
            ops
        })
    }
}

/// `noncontig` (ANL / Parallel I/O Benchmarking Consortium): "the file is a
/// two-dimensional array with 64 columns; each process reads a column with
/// a vector-derived datatype; in each row of a column there are `elmtcount`
/// MPI_INT elements. With collective I/O, each call moves 4 MB in total."
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct Noncontig {
    /// Number of MPI processes (= columns of the 2-D array).
    pub nprocs: usize,
    /// MPI_INT elements per cell (cell bytes = 4 × this).
    pub elmt_count: u64,
    /// Total data moved per (collective) call, all processes combined.
    pub bytes_per_call: u64,
    /// Rows of the 2-D array.
    pub rows: u64,
    /// Read or write run.
    pub kind: IoKind,
    /// Mark I/O calls collective.
    pub collective: bool,
    /// Injected computation between calls.
    pub compute_per_call: SimDuration,
}

impl Default for Noncontig {
    fn default() -> Self {
        Noncontig {
            nprocs: 64,
            elmt_count: 128, // 512 B cells
            bytes_per_call: 4 << 20,
            rows: 8192,
            kind: IoKind::Read,
            collective: false,
            compute_per_call: SimDuration::ZERO,
        }
    }
}

impl Noncontig {
    /// Bytes of one array cell.
    pub fn cell_bytes(&self) -> u64 {
        self.elmt_count * 4
    }

    /// Bytes of one full array row (all columns).
    pub fn row_bytes(&self) -> u64 {
        self.cell_bytes() * self.nprocs as u64
    }

    /// Total file bytes for this configuration.
    pub fn file_size(&self) -> u64 {
        self.row_bytes() * self.rows
    }

    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let cell = self.cell_bytes();
        let row = self.row_bytes();
        // Rows per call so that all processes together move bytes_per_call.
        let rows_per_call = (self.bytes_per_call / (cell * self.nprocs as u64)).max(1);
        let calls = self.rows / rows_per_call;
        build_program("noncontig", self.nprocs, |rank| {
            let mut ops = Vec::new();
            for c in 0..calls {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                let dt = Datatype::Vector {
                    count: rows_per_call,
                    block_bytes: cell,
                    stride_bytes: row,
                };
                let base = c * rows_per_call * row + rank as u64 * cell;
                let mut call = IoCall::from_datatype(self.kind, file, &dt, base);
                call.collective = self.collective;
                ops.push(Op::Io(call));
            }
            ops
        })
    }
}

/// `S3asim` (sequence-similarity search): per query, each worker reads a
/// set of database fragments of mixed sizes and writes result data of mixed
/// sizes; sizes are drawn between configured min and max.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct S3asim {
    /// Number of worker processes.
    pub nprocs: usize,
    /// Sequence-search queries to run.
    pub queries: u64,
    /// Database fragments (16 in the paper).
    pub fragments: u64,
    /// Minimum sequence read/write size in bytes.
    pub min_seq: u64,
    /// Maximum sequence read/write size in bytes.
    pub max_seq: u64,
    /// Database file bytes.
    pub db_size: u64,
    /// Result file bytes (upper bound on written data).
    pub result_size: u64,
    /// Search computation per query.
    pub compute_per_query: SimDuration,
    /// Mark I/O calls collective.
    pub collective: bool,
    /// Deterministic seed for the size/offset draws.
    pub seed: u64,
}

impl Default for S3asim {
    fn default() -> Self {
        S3asim {
            nprocs: 64,
            queries: 16,
            fragments: 16,
            min_seq: 1024,
            max_seq: 100 * 1024,
            db_size: 1 << 30,
            result_size: 256 << 20,
            compute_per_query: SimDuration::from_millis(20),
            collective: false,
            seed: 7,
        }
    }
}

impl S3asim {
    /// Generate the per-rank scripts against the database and result files.
    pub fn build(&self, db: FileId, results: FileId) -> ProgramScript {
        let rng_root = DetRng::for_stream(self.seed, "s3asim");
        // Partition the result file among processes so writes never overlap.
        let result_scope = self.result_size / self.nprocs as u64;
        build_program("s3asim", self.nprocs, |rank| {
            let mut rng = rng_root.substream(rank as u64);
            let mut ops = Vec::new();
            let mut result_off = rank as u64 * result_scope;
            let result_end = (rank as u64 + 1) * result_scope;
            // Each worker searches a slice of each database fragment.
            let frag_size = self.db_size / self.fragments;
            let slice = frag_size / self.nprocs as u64;
            for _q in 0..self.queries {
                if self.compute_per_query > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_query));
                }
                for f in 0..self.fragments {
                    let len = rng
                .uniform_u64(self.min_seq, self.max_seq.saturating_add(1))
                .min(slice);
                    let jitter = if slice > len {
                        rng.uniform_u64(0, (slice - len).saturating_add(1))
                    } else {
                        0
                    };
                    let off = f
                .saturating_mul(frag_size)
                .saturating_add((rank as u64).saturating_mul(slice))
                .saturating_add(jitter);
                    ops.push(io_region(IoKind::Read, db, off, len.max(1), self.collective));
                }
                // Write merged results for this query.
                let wlen = rng
                    .uniform_u64(self.min_seq, self.max_seq + 1)
                    .min(result_end.saturating_sub(result_off));
                if wlen > 0 {
                    ops.push(io_region(IoKind::Write, results, result_off, wlen, self.collective));
                    result_off += wlen;
                }
            }
            ops
        })
    }
}

/// `BTIO` (NAS BT): the 3-D Navier-Stokes solver writing its solution with
/// MPI-IO. Each process owns an interleaved share of each solution row; per
/// step it appends `rows_per_step` vector accesses of tiny cells — "request
/// size of the benchmark is only a few bytes when many processes are used"
/// (§V-C): cell bytes shrink as the process count grows.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct Btio {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Total solution bytes written over the whole run.
    pub dataset: u64,
    /// Cell granularity for 64 processes; actual cell = this × 64 / nprocs,
    /// floored at 4 bytes (mirrors BTIO's shrinking requests).
    pub cell_at_64: u64,
    /// Solver timesteps that perform I/O.
    pub steps: u64,
    /// Write (checkpoint) or read (verification) run.
    pub kind: IoKind,
    /// Mark I/O calls collective.
    pub collective: bool,
    /// Solver computation per timestep.
    pub compute_per_step: SimDuration,
    /// Append BTIO's verification pass: after the solution is written, all
    /// ranks barrier and read their data back with the same access pattern.
    pub verify: bool,
}

impl Default for Btio {
    fn default() -> Self {
        Btio {
            nprocs: 64,
            dataset: 6800 << 20,
            cell_at_64: 16,
            steps: 40,
            kind: IoKind::Write,
            collective: false,
            compute_per_step: SimDuration::from_millis(50),
            verify: false,
        }
    }
}

impl Btio {
    /// Effective cell size at this process count.
    pub fn cell_bytes(&self) -> u64 {
        (self.cell_at_64 * 64 / self.nprocs as u64).max(4)
    }

    /// Total file bytes for this configuration.
    pub fn file_size(&self) -> u64 {
        self.dataset
    }

    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let cell = self.cell_bytes();
        let row = cell * self.nprocs as u64;
        let total_rows = self.dataset / row;
        let rows_per_step = (total_rows / self.steps).max(1);
        // Split each step into calls of a bounded number of cells so one
        // call is one solution plane, like BTIO's per-variable writes.
        let rows_per_call = rows_per_step.clamp(1, 4096);
        build_program("btio", self.nprocs, |rank| {
            let mut ops = Vec::new();
            let mut row_cursor = 0u64;
            let emit_pass = |ops: &mut Vec<Op>, kind: IoKind, row_cursor: &mut u64| {
                for _step in 0..self.steps {
                    if self.compute_per_step > SimDuration::ZERO {
                        ops.push(compute(self.compute_per_step));
                    }
                    let mut remaining = rows_per_step;
                    while remaining > 0 {
                        let n = remaining.min(rows_per_call);
                        let dt = Datatype::Vector {
                            count: n,
                            block_bytes: cell,
                            stride_bytes: row,
                        };
                        let base = *row_cursor * row + rank as u64 * cell;
                        let mut call = IoCall::from_datatype(kind, file, &dt, base);
                        call.collective = self.collective;
                        ops.push(Op::Io(call));
                        *row_cursor += n;
                        remaining -= n;
                    }
                }
            };
            emit_pass(&mut ops, self.kind, &mut row_cursor);
            if self.verify {
                ops.push(Op::Barrier(0));
                row_cursor = 0;
                emit_pass(&mut ops, IoKind::Read, &mut row_cursor);
            }
            ops
        })
    }
}

/// The motivating synthetic program of §II: 8 processes read a 1 GB file
/// front to back; each call reads 16 segments at indices `k·N + myrank`
/// with a vector datatype; segment size 4–128 KB; compute time between
/// calls sets the I/O ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct Demo {
    /// Number of MPI processes (8 in §II).
    pub nprocs: usize,
    /// Total file bytes (1 GB in §II).
    pub file_size: u64,
    /// Segment bytes (4–128 KB in §II).
    pub segment_size: u64,
    /// Segments per MPI-IO call (16 in §II).
    pub segs_per_call: u64,
    /// Injected computation per call (sets the I/O ratio).
    pub compute_per_call: SimDuration,
    /// Read or write run.
    pub kind: IoKind,
    /// Mark I/O calls collective.
    pub collective: bool,
}

impl Default for Demo {
    fn default() -> Self {
        Demo {
            nprocs: 8,
            file_size: 1 << 30,
            segment_size: 4 * 1024,
            segs_per_call: 16,
            compute_per_call: SimDuration::ZERO,
            kind: IoKind::Read,
            collective: false,
        }
    }
}

impl Demo {
    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let n = self.nprocs as u64;
        let seg = self.segment_size;
        let segs_total = self.file_size / seg;
        let segs_per_round = self.segs_per_call * n;
        let calls = segs_total / segs_per_round;
        build_program("demo", self.nprocs, |rank| {
            let mut ops = Vec::new();
            for c in 0..calls {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                let dt = Datatype::Vector {
                    count: self.segs_per_call,
                    block_bytes: seg,
                    stride_bytes: n * seg,
                };
                let base = (c * segs_per_round + rank as u64) * seg;
                let mut call = IoCall::from_datatype(self.kind, file, &dt, base);
                call.collective = self.collective;
                ops.push(Op::Io(call));
            }
            ops
        })
    }
}

/// The Table III adversary: "an MPI program that reads 2 GB of data, and
/// the requested data addresses depend on the data read in the previous
/// I/O call" — every prefetch is wrong by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct DependentReader {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Total bytes read across all processes.
    pub total_bytes: u64,
    /// Bytes per (pointer-chased) request.
    pub request_size: u64,
    /// Injected computation per call.
    pub compute_per_call: SimDuration,
    /// Fraction of calls a ghost predicts correctly (0.0 = the Table III
    /// adversary where every prefetch is wasted; 1.0 = fully predictable).
    /// Sweeping this crosses EMC's 20 % mis-prefetch veto threshold.
    pub predictability: f64,
    /// Deterministic seed for the chase targets.
    pub seed: u64,
}

impl Default for DependentReader {
    fn default() -> Self {
        DependentReader {
            nprocs: 64,
            total_bytes: 2 << 30,
            request_size: 64 * 1024,
            compute_per_call: SimDuration::ZERO,
            predictability: 0.0,
            seed: 11,
        }
    }
}

impl DependentReader {
    /// Total file bytes for this configuration.
    pub fn file_size(&self) -> u64 {
        self.total_bytes
    }

    /// Generate the per-rank scripts against `file`.
    pub fn build(&self, file: FileId) -> ProgramScript {
        let rng_root = DetRng::for_stream(self.seed, "dependent");
        let per_proc = self.total_bytes / self.nprocs as u64;
        let calls = per_proc / self.request_size;
        let slots = self.total_bytes / self.request_size;
        build_program("dependent", self.nprocs, |rank| {
            let mut rng = rng_root.substream(rank as u64);
            let mut ops = Vec::new();
            for _ in 0..calls {
                if self.compute_per_call > SimDuration::ZERO {
                    ops.push(compute(self.compute_per_call));
                }
                // Actual target: a pointer chase to a random slot. A ghost
                // cannot know it: it would predict the slot that the *stale*
                // (unread) pointer names — model that as a different random
                // slot. With probability `predictability`, the pointer was
                // unchanged and the ghost's guess is right.
                let actual = rng.uniform_u64(0, slots) * self.request_size;
                let call_region = FileRegion::new(actual, self.request_size);
                let mut call = IoCall::read(file, vec![call_region]);
                if !rng.chance(self.predictability) {
                    let predicted = rng.uniform_u64(0, slots) * self.request_size;
                    call = call.with_prediction(vec![FileRegion::new(predicted, self.request_size)]);
                }
                ops.push(Op::Io(call));
            }
            ops
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpiio_test_is_interleaved_sequential() {
        let w = MpiIoTest {
            nprocs: 4,
            file_size: 1 << 20,
            request_size: 16 * 1024,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        assert_eq!(p.nprocs(), 4);
        // Union of all ranks' accesses covers the file exactly.
        assert_eq!(p.total_io_bytes(), 1 << 20);
        // Rank 1's first request is the second segment.
        let first = p.ranks[1]
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Io(c) => Some(c.regions[0]),
                _ => None,
            })
            .unwrap();
        assert_eq!(first.offset, 16 * 1024);
        assert!(p.barriers_consistent());
    }

    #[test]
    fn ior_scopes_are_disjoint() {
        let w = IorMpiIo {
            nprocs: 4,
            file_size: 4 << 20,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        let scope = 1 << 20;
        for (rank, script) in p.ranks.iter().enumerate() {
            for op in &script.ops {
                if let Op::Io(c) = op {
                    for r in &c.regions {
                        assert!(r.offset >= rank as u64 * scope);
                        assert!(r.end() <= (rank as u64 + 1) * scope);
                    }
                }
            }
        }
        assert_eq!(p.total_io_bytes(), 4 << 20);
    }

    #[test]
    fn noncontig_columns_interleave() {
        let w = Noncontig {
            nprocs: 4,
            elmt_count: 2, // 8-byte cells
            bytes_per_call: 64,
            rows: 4,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        // Row width = 32 bytes; rank 2's cells start at 16, 48, 80, ...
        let regions: Vec<_> = p.ranks[2]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Io(c) => Some(c.regions.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(regions[0].offset, 16);
        assert_eq!(regions[1].offset, 48);
        assert!(regions.iter().all(|r| r.len == 8));
        assert_eq!(p.total_io_bytes(), w.file_size());
    }

    #[test]
    fn btio_cell_shrinks_with_procs() {
        let base = Btio::default();
        let b16 = Btio { nprocs: 16, ..base.clone() };
        let b64 = Btio { nprocs: 64, ..base.clone() };
        let b256 = Btio { nprocs: 256, ..base };
        assert_eq!(b16.cell_bytes(), 64);
        assert_eq!(b64.cell_bytes(), 16);
        assert_eq!(b256.cell_bytes(), 4);
    }

    #[test]
    fn btio_covers_dataset() {
        let w = Btio {
            nprocs: 8,
            dataset: 1 << 20,
            steps: 4,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        assert_eq!(p.total_io_bytes(), 1 << 20);
    }

    #[test]
    fn btio_verify_doubles_traffic_with_read_back() {
        let w = Btio {
            nprocs: 8,
            dataset: 1 << 20,
            steps: 4,
            verify: true,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        assert_eq!(p.total_io_bytes(), 2 << 20);
        assert!(p.barriers_consistent());
        // The read pass covers exactly the written bytes.
        let reads: u64 = p
            .ranks
            .iter()
            .flat_map(|r| &r.ops)
            .filter_map(|o| match o {
                Op::Io(c) if c.kind == IoKind::Read => Some(c.bytes()),
                _ => None,
            })
            .sum();
        assert_eq!(reads, 1 << 20);
    }

    #[test]
    fn demo_reads_file_front_to_back() {
        let w = Demo {
            file_size: 8 << 20,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        assert_eq!(p.total_io_bytes(), 8 << 20);
        // All ranks' first-call accesses fall within the first round.
        let round = w.segs_per_call * w.nprocs as u64 * w.segment_size;
        for script in &p.ranks {
            if let Some(Op::Io(c)) = script.ops.first() {
                assert!(c.regions.iter().all(|r| r.end() <= round));
            }
        }
    }

    #[test]
    fn s3asim_reads_within_db_and_writes_disjoint() {
        let w = S3asim {
            nprocs: 4,
            queries: 3,
            db_size: 16 << 20,
            result_size: 4 << 20,
            ..Default::default()
        };
        let p = w.build(FileId(1), FileId(2));
        let scope = (4 << 20) / 4;
        for (rank, script) in p.ranks.iter().enumerate() {
            for op in &script.ops {
                if let Op::Io(c) = op {
                    for r in &c.regions {
                        match c.kind {
                            IoKind::Read => assert!(r.end() <= 16 << 20),
                            IoKind::Write => {
                                assert!(r.offset >= rank as u64 * scope);
                                assert!(r.end() <= (rank as u64 + 1) * scope);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn s3asim_deterministic() {
        let w = S3asim::default();
        let a = w.build(FileId(1), FileId(2));
        let b = w.build(FileId(1), FileId(2));
        assert_eq!(a, b);
    }

    #[test]
    fn dependent_reader_predictability_controls_mismatch_rate() {
        let rate = |p: f64| {
            let w = DependentReader {
                nprocs: 2,
                total_bytes: 8 << 20,
                predictability: p,
                ..Default::default()
            };
            let prog = w.build(FileId(1));
            let (mut wrong, mut total) = (0usize, 0usize);
            for r in &prog.ranks {
                for op in &r.ops {
                    if let Op::Io(c) = op {
                        total += 1;
                        if c.predicted.is_some() {
                            wrong += 1;
                        }
                    }
                }
            }
            wrong as f64 / total as f64
        };
        assert!(rate(0.0) > 0.99);
        assert!(rate(1.0) < 0.01);
        let half = rate(0.5);
        assert!((half - 0.5).abs() < 0.15, "got {half}");
    }

    #[test]
    fn dependent_reader_predictions_differ_from_actual() {
        let w = DependentReader {
            nprocs: 2,
            total_bytes: 4 << 20,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        let mut mismatches = 0;
        let mut total = 0;
        for script in &p.ranks {
            for op in &script.ops {
                if let Op::Io(c) = op {
                    total += 1;
                    if c.predicted.as_ref() != Some(&c.regions) {
                        mismatches += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        // Nearly all predictions are wrong (a random collision is possible
        // but vanishingly rare at these sizes).
        assert!(mismatches as f64 / total as f64 > 0.95);
    }

    #[test]
    fn hpio_regions_spaced() {
        let w = Hpio {
            nprocs: 2,
            region_count: 3,
            region_spacing: 1024,
            region_size: 32 * 1024,
            ..Default::default()
        };
        let p = w.build(FileId(1));
        let r: Vec<_> = p.ranks[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Io(c) => Some(c.regions[0]),
                _ => None,
            })
            .collect();
        assert_eq!(r[1].offset - r[0].offset, 33 * 1024);
    }
}
