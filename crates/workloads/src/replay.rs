//! Trace replay: drive the simulator from a recorded I/O trace instead of
//! a synthetic generator — the route in for real application logs (e.g.
//! converted Darshan or Recorder traces).
//!
//! A trace is a flat list of per-rank entries; compute time between two
//! consecutive I/O entries of the same rank is taken from the entries'
//! timestamps (capped so pathological gaps in a recorded log do not stall
//! the simulation).

use crate::common::build_program;
use dualpar_mpiio::{IoCall, IoKind, Op, ProgramScript};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One recorded I/O event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Issuing rank.
    pub rank: u32,
    /// Seconds since the start of the recording.
    pub t_secs: f64,
    /// Read or write.
    pub kind: IoKind,
    /// Logical file index (mapped to created files positionally).
    pub file_index: u32,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
}

/// A replayable trace plus replay policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReplay {
    /// The recorded events (any order; sorted per rank by timestamp).
    pub entries: Vec<TraceEntry>,
    /// Ranks in the replayed program (must cover every entry's rank).
    pub nprocs: usize,
    /// Cap on the compute gap reconstructed between two entries.
    pub max_gap: SimDuration,
    /// Scale factor applied to reconstructed compute gaps (1.0 = as
    /// recorded; 0.0 = back-to-back I/O).
    pub gap_scale: f64,
}

impl Default for TraceReplay {
    fn default() -> Self {
        TraceReplay {
            entries: Vec::new(),
            nprocs: 1,
            max_gap: SimDuration::from_secs(5),
            gap_scale: 1.0,
        }
    }
}

impl TraceReplay {
    /// Number of distinct `file_index` values referenced.
    pub fn num_files(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.file_index)
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// Minimum size each referenced file must be created with.
    pub fn required_file_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_files()];
        for e in &self.entries {
            let end = e.offset + e.len;
            let s = &mut sizes[e.file_index as usize];
            *s = (*s).max(end);
        }
        sizes
    }

    /// Build the program against the created files (positional mapping:
    /// `files[i]` backs `file_index == i`).
    ///
    /// # Panics
    /// Panics if `files` is shorter than [`TraceReplay::num_files`] or an
    /// entry's rank is out of range.
    pub fn build(&self, files: &[FileId]) -> ProgramScript {
        assert!(
            files.len() >= self.num_files(),
            "trace references {} files, {} provided",
            self.num_files(),
            files.len()
        );
        // Partition entries per rank, sorted by timestamp.
        let mut per_rank: Vec<Vec<&TraceEntry>> = vec![Vec::new(); self.nprocs];
        for e in &self.entries {
            assert!(
                (e.rank as usize) < self.nprocs,
                "entry rank {} outside nprocs {}",
                e.rank,
                self.nprocs
            );
            per_rank[e.rank as usize].push(e);
        }
        for list in &mut per_rank {
            list.sort_by(|a, b| a.t_secs.partial_cmp(&b.t_secs).expect("NaN timestamp"));
        }
        build_program("trace-replay", self.nprocs, |rank| {
            let mut ops = Vec::new();
            let mut last_t: Option<f64> = None;
            for e in &per_rank[rank] {
                if let Some(prev) = last_t {
                    let gap_s = ((e.t_secs - prev).max(0.0) * self.gap_scale)
                        .min(self.max_gap.as_secs_f64());
                    if gap_s > 0.0 {
                        ops.push(Op::Compute(SimDuration::from_secs_f64(gap_s)));
                    }
                }
                last_t = Some(e.t_secs);
                if e.len > 0 {
                    ops.push(Op::Io(IoCall {
                        kind: e.kind,
                        file: files[e.file_index as usize],
                        regions: vec![FileRegion::new(e.offset, e.len)],
                        collective: false,
                        predicted: None,
                    }));
                }
            }
            ops
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rank: u32, t: f64, kind: IoKind, file: u32, off: u64, len: u64) -> TraceEntry {
        TraceEntry {
            rank,
            t_secs: t,
            kind,
            file_index: file,
            offset: off,
            len,
        }
    }

    #[test]
    fn replay_orders_per_rank_and_reconstructs_gaps() {
        let replay = TraceReplay {
            entries: vec![
                entry(0, 2.0, IoKind::Read, 0, 4096, 4096),
                entry(0, 0.0, IoKind::Read, 0, 0, 4096), // out of order
                entry(1, 0.5, IoKind::Write, 1, 0, 100),
            ],
            nprocs: 2,
            ..Default::default()
        };
        let p = replay.build(&[FileId(1), FileId(2)]);
        assert_eq!(p.nprocs(), 2);
        // Rank 0: read@0, compute 2 s, read@4096.
        let ops = &p.ranks[0].ops;
        assert!(matches!(&ops[0], Op::Io(c) if c.regions[0].offset == 0));
        assert!(matches!(ops[1], Op::Compute(d) if d == SimDuration::from_secs(2)));
        assert!(matches!(&ops[2], Op::Io(c) if c.regions[0].offset == 4096));
        // Rank 1 writes to the second file.
        assert!(matches!(&p.ranks[1].ops[0], Op::Io(c) if c.file == FileId(2)));
    }

    #[test]
    fn gap_cap_and_scale() {
        let replay = TraceReplay {
            entries: vec![
                entry(0, 0.0, IoKind::Read, 0, 0, 10),
                entry(0, 100.0, IoKind::Read, 0, 10, 10), // huge recorded gap
            ],
            nprocs: 1,
            max_gap: SimDuration::from_secs(2),
            gap_scale: 1.0,
        };
        let p = replay.build(&[FileId(1)]);
        assert!(matches!(p.ranks[0].ops[1], Op::Compute(d) if d == SimDuration::from_secs(2)));

        let squeezed = TraceReplay {
            gap_scale: 0.0,
            ..replay
        };
        let p2 = squeezed.build(&[FileId(1)]);
        assert_eq!(p2.ranks[0].num_io_calls(), 2);
        assert_eq!(p2.ranks[0].total_compute(), SimDuration::ZERO);
    }

    #[test]
    fn required_sizes_cover_every_access() {
        let replay = TraceReplay {
            entries: vec![
                entry(0, 0.0, IoKind::Read, 0, 1000, 24),
                entry(0, 1.0, IoKind::Write, 1, 0, 4096),
                entry(0, 2.0, IoKind::Read, 0, 0, 8),
            ],
            nprocs: 1,
            ..Default::default()
        };
        assert_eq!(replay.num_files(), 2);
        assert_eq!(replay.required_file_sizes(), vec![1024, 4096]);
    }

    #[test]
    #[should_panic(expected = "outside nprocs")]
    fn bad_rank_panics() {
        let replay = TraceReplay {
            entries: vec![entry(5, 0.0, IoKind::Read, 0, 0, 10)],
            nprocs: 2,
            ..Default::default()
        };
        replay.build(&[FileId(1)]);
    }
}
