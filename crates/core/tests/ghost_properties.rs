//! Property tests for the ghost pre-execution walk.

use dualpar_core::{ghost_walk, GhostStop};
use dualpar_mpiio::{IoCall, IoKind, Op, ProcessScript};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum G {
    Compute(u32),
    Read(u64, u64),
    Write(u64, u64),
    Barrier,
}

fn gen_ops() -> impl Strategy<Value = Vec<G>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..10_000).prop_map(G::Compute),
            (0u64..1_000_000, 1u64..100_000).prop_map(|(o, l)| G::Read(o, l)),
            (0u64..1_000_000, 1u64..100_000).prop_map(|(o, l)| G::Write(o, l)),
            Just(G::Barrier),
        ],
        0..60,
    )
}

fn script(ops: &[G]) -> ProcessScript {
    let mut barrier = 0;
    ProcessScript::new(
        ops.iter()
            .map(|g| match *g {
                G::Compute(us) => Op::Compute(SimDuration::from_micros(us as u64)),
                G::Read(o, l) => Op::Io(IoCall::read(FileId(1), vec![FileRegion::new(o, l)])),
                G::Write(o, l) => Op::Io(IoCall::write(FileId(1), vec![FileRegion::new(o, l)])),
                G::Barrier => {
                    barrier += 1;
                    Op::Barrier(barrier)
                }
            })
            .collect(),
    )
}

proptest! {
    /// The walk never overshoots the quota by more than one call, records
    /// only read regions that exist in the walked range, and reports a
    /// consistent end position.
    #[test]
    fn walk_respects_quota(ops in gen_ops(), quota in 1u64..300_000, start in 0usize..10) {
        let s = script(&ops);
        let start = start.min(s.ops.len());
        let run = ghost_walk(&s, start, quota);
        prop_assert!(run.end_pos >= start);
        prop_assert!(run.end_pos <= s.ops.len());
        // Space accounting: at most quota, except when a single oversized
        // call had to be admitted to guarantee progress.
        let mut max_single = 0u64;
        for op in &s.ops[start..run.end_pos] {
            if let Op::Io(c) = op {
                max_single = max_single.max(c.bytes());
            }
        }
        prop_assert!(
            run.space <= quota.max(max_single),
            "space {} quota {} max_single {}", run.space, quota, max_single
        );
        // Every prefetched region corresponds to a read in the walked span.
        let reads: Vec<FileRegion> = s.ops[start..run.end_pos]
            .iter()
            .filter_map(|op| match op {
                Op::Io(c) if c.kind == IoKind::Read => Some(c.regions.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        for (f, r) in &run.prefetch {
            prop_assert_eq!(*f, FileId(1));
            prop_assert!(reads.contains(r), "prefetch {r:?} not a walked read");
        }
        // Stop reason consistency.
        match run.stop {
            GhostStop::ScriptEnd => prop_assert_eq!(run.end_pos, s.ops.len()),
            GhostStop::QuotaFull => prop_assert!(run.end_pos < s.ops.len() || run.space >= quota),
        }
    }

    /// Compute time equals the sum of compute ops in the walked range.
    #[test]
    fn walk_compute_exact(ops in gen_ops(), quota in 1u64..300_000) {
        let s = script(&ops);
        let run = ghost_walk(&s, 0, quota);
        let expect: SimDuration = s.ops[..run.end_pos]
            .iter()
            .filter_map(|op| match op {
                Op::Compute(d) => Some(*d),
                _ => None,
            })
            .sum();
        prop_assert_eq!(run.compute, expect);
    }

    /// Chained walks partition the script: resuming from `end_pos`
    /// eventually reaches the end, never revisiting an op.
    #[test]
    fn chained_walks_terminate(ops in gen_ops(), quota in 1u64..300_000) {
        let s = script(&ops);
        let mut pos = 0;
        let mut rounds = 0;
        while pos < s.ops.len() {
            let run = ghost_walk(&s, pos, quota);
            prop_assert!(run.end_pos > pos || run.end_pos == s.ops.len(),
                "walk must make progress");
            if run.end_pos == pos {
                break;
            }
            pos = run.end_pos;
            rounds += 1;
            prop_assert!(rounds <= s.ops.len() + 1, "too many rounds");
        }
    }
}
