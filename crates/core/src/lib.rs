//! # dualpar-core
//!
//! The paper's contribution: DualPar's three modules —
//!
//! * [`emc`] — Execution Mode Control (metadata-server daemon): decides per
//!   program whether to run computation-driven or data-driven, from the
//!   I/O ratio, the `aveSeekDist / aveReqDist` improvement estimate, and
//!   the mis-prefetch ratio;
//! * [`pec`] — Process Execution Control (MPI-IO library hooks): blocks and
//!   resumes processes, runs ghost pre-executions that record future
//!   requests, and measures per-process I/O intensity;
//! * [`crm`] — Cache and Request Management (per-node daemon): sorts,
//!   merges, hole-fills and list-I/O-packs the recorded requests into the
//!   batches the data servers service.
//!
//! These are policy components with no event-loop dependencies; the
//! `dualpar-cluster` crate wires them into the simulated cluster.

pub mod config;
pub mod crm;
pub mod emc;
pub mod pec;

pub use config::{DualParConfig, ProgramId};
pub use crm::{plan_prefetch, plan_writeback, prefetch_stats, writeback_stats, BatchStats, PrefetchPlan, WritebackPlan};
pub use emc::{Emc, ExecMode, ModeChange, ReqDistTracker};
pub use pec::{expected_fill_time, ghost_walk, GhostRun, GhostStop, IoClock};
