//! Execution Mode Control — the daemon on the metadata server (§IV-B).
//!
//! EMC decides, once per sampling slot, which registered programs run in
//! the data-driven mode. Inputs:
//!
//! * **I/O ratio** per program, measured by the instrumented ADIO calls
//!   (time in I/O ÷ total time since the last slot);
//! * **`aveSeekDist`**: average disk-head seek distance reported by the
//!   locality daemon on each data server — *achieved* I/O efficiency;
//! * **`aveReqDist`**: average file-offset distance between adjacent
//!   requests after sorting the slot's requests per file on each compute
//!   node — the *achievable* efficiency of a data-driven reordering;
//! * **mis-prefetch ratio** per program, reported by the processes.
//!
//! When `aveSeekDist / aveReqDist > T_improvement`, programs whose I/O
//! ratio exceeds the threshold switch to data-driven; when the condition no
//! longer holds they revert; a program whose mis-prefetch ratio exceeds its
//! threshold has the mode disabled outright (sticky — the paper calls the
//! resulting cost a "one-time overhead").

use crate::config::{DualParConfig, ProgramId};
use dualpar_disk::SECTOR_BYTES;
use serde::Serialize;
use dualpar_sim::FxHashMap;

/// The execution mode of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExecMode {
    /// Normal execution: computation drives request issuance.
    ComputationDriven,
    /// DualPar's coordinated suspend/pre-execute/batch/resume mode.
    DataDriven,
}

impl ExecMode {
    /// Snake-case label for reports and telemetry traces.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::ComputationDriven => "computation_driven",
            ExecMode::DataDriven => "data_driven",
        }
    }
}

#[derive(Debug, Default)]
struct ProgramState {
    mode: Option<ExecMode>, // None until first tick
    io_time_ns: u64,
    total_time_ns: u64,
    misprefetch_sum: f64,
    misprefetch_n: u64,
    disabled_by_misprefetch: bool,
}

/// A mode-change instruction emitted by a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeChange {
    /// Program the change applies to.
    pub program: ProgramId,
    /// Its new mode.
    pub mode: ExecMode,
}

/// Per-program observation from the most recent tick — the inputs and
/// outcome of the slot's decision, exposed for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSample {
    /// The observed program.
    pub program: ProgramId,
    /// Its I/O ratio over the slot (time in I/O ÷ total time).
    pub io_ratio: f64,
    /// The mode the program is in after the decision.
    pub mode: ExecMode,
    /// Whether the mis-prefetch veto has permanently disabled the mode.
    pub vetoed: bool,
}

/// The EMC daemon state.
pub struct Emc {
    cfg: DualParConfig,
    programs: FxHashMap<ProgramId, ProgramState>,
    /// This slot's seek-distance samples from data servers (sectors).
    seek_samples: Vec<f64>,
    /// This slot's request-distance samples from compute nodes (sectors).
    req_samples: Vec<f64>,
    /// Last computed improvement ratio (for diagnostics/plots).
    last_improvement: Option<f64>,
    /// Per-program observations from the last tick (for telemetry).
    last_samples: Vec<TickSample>,
}

impl Emc {
    /// Build an EMC daemon with the given thresholds.
    pub fn new(cfg: DualParConfig) -> Self {
        Emc {
            cfg,
            programs: FxHashMap::default(),
            seek_samples: Vec::new(),
            req_samples: Vec::new(),
            last_improvement: None,
            last_samples: Vec::new(),
        }
    }

    /// Register a program for dual-mode execution. Programs start in the
    /// computation-driven mode.
    pub fn register(&mut self, program: ProgramId) {
        self.programs.entry(program).or_default();
    }

    /// Remove a finished program.
    pub fn deregister(&mut self, program: ProgramId) {
        self.programs.remove(&program);
    }

    /// Accumulate I/O vs total time for a program (from ADIO timing hooks).
    pub fn report_times(&mut self, program: ProgramId, io_ns: u64, total_ns: u64) {
        if let Some(p) = self.programs.get_mut(&program) {
            p.io_time_ns = p.io_time_ns.saturating_add(io_ns);
            p.total_time_ns = p.total_time_ns.saturating_add(total_ns);
        }
    }

    /// A data server's average seek distance this slot (sectors).
    pub fn report_seek_dist(&mut self, avg_sectors: f64) {
        self.seek_samples.push(avg_sectors);
    }

    /// A compute node's average sorted-request distance this slot (bytes;
    /// converted to sectors internally so the ratio is dimensionless).
    pub fn report_req_dist(&mut self, avg_bytes: f64) {
        self.req_samples.push(avg_bytes / SECTOR_BYTES as f64);
    }

    /// A process's mis-prefetch ratio for the epoch that just ended.
    pub fn report_misprefetch(&mut self, program: ProgramId, ratio: f64) {
        if let Some(p) = self.programs.get_mut(&program) {
            p.misprefetch_sum += ratio;
            p.misprefetch_n += 1;
        }
    }

    /// The improvement ratio computed at the last tick.
    pub fn last_improvement(&self) -> Option<f64> {
        self.last_improvement
    }

    /// Per-program observations from the last tick, sorted by program id.
    pub fn last_tick_samples(&self) -> &[TickSample] {
        &self.last_samples
    }

    /// Current mode of `program` (computation-driven if unknown).
    pub fn mode_of(&self, program: ProgramId) -> ExecMode {
        self.programs
            .get(&program)
            .and_then(|p| p.mode)
            .unwrap_or(ExecMode::ComputationDriven)
    }

    /// Evaluate the slot: consume the accumulated samples and return the
    /// mode changes to apply.
    pub fn tick(&mut self) -> Vec<ModeChange> {
        let ave_seek = mean(&self.seek_samples);
        let ave_req = mean(&self.req_samples);
        self.seek_samples.clear();
        self.req_samples.clear();

        // Potential I/O-efficiency improvement (§IV-B). No data ⇒ no change
        // pressure; a tiny ReqDist with a large SeekDist is the strongest
        // signal.
        let improvement = match (ave_seek, ave_req) {
            (Some(s), Some(r)) => Some(if r <= f64::EPSILON { f64::INFINITY } else { s / r }),
            _ => None,
        };
        self.last_improvement = improvement;

        let mut changes = Vec::new();
        self.last_samples.clear();
        for (&prog, st) in self.programs.iter_mut() {
            // Mis-prefetch check first: it vetoes the mode permanently.
            if st.misprefetch_n > 0 {
                let avg = st.misprefetch_sum / st.misprefetch_n as f64;
                st.misprefetch_sum = 0.0;
                st.misprefetch_n = 0;
                if avg > self.cfg.misprefetch_threshold {
                    st.disabled_by_misprefetch = true;
                }
            }
            let io_ratio = if st.total_time_ns == 0 {
                0.0
            } else {
                st.io_time_ns as f64 / st.total_time_ns as f64
            };
            st.io_time_ns = 0;
            st.total_time_ns = 0;

            let want = if st.disabled_by_misprefetch {
                ExecMode::ComputationDriven
            } else {
                match improvement {
                    Some(imp)
                        if imp > self.cfg.t_improvement
                            && io_ratio > self.cfg.io_ratio_threshold =>
                    {
                        ExecMode::DataDriven
                    }
                    // No samples this slot: keep the current mode (a
                    // program deep in data-driven phases generates no
                    // vanilla request stream to sample).
                    None => st.mode.unwrap_or(ExecMode::ComputationDriven),
                    _ => ExecMode::ComputationDriven,
                }
            };
            let current = st.mode.unwrap_or(ExecMode::ComputationDriven);
            dualpar_sim::strict_assert!(
                !(st.disabled_by_misprefetch && want == ExecMode::DataDriven),
                "mis-prefetch veto must forbid the data-driven mode (program {prog:?})"
            );
            if current != want && want == ExecMode::DataDriven {
                dualpar_sim::strict_assert!(
                    matches!(improvement, Some(imp) if imp > self.cfg.t_improvement)
                        && io_ratio > self.cfg.io_ratio_threshold,
                    "illegal data-driven switch: improvement={improvement:?} io_ratio={io_ratio} (program {prog:?})"
                );
            }
            st.mode = Some(want);
            self.last_samples.push(TickSample {
                program: prog,
                io_ratio,
                mode: want,
                vetoed: st.disabled_by_misprefetch,
            });
            if current != want {
                changes.push(ModeChange {
                    program: prog,
                    mode: want,
                });
            }
        }
        changes.sort_by_key(|c| c.program);
        self.last_samples.sort_by_key(|s| s.program);
        changes
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Per-compute-node tracker that turns the slot's observed requests into
/// the `ReqDist` statistic: sort per file by offset, average the gaps
/// between adjacent requests.
#[derive(Debug, Default)]
pub struct ReqDistTracker {
    requests: Vec<(u32, u64, u64)>, // (file, offset, len)
}

impl ReqDistTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed request.
    pub fn observe(&mut self, file: u32, offset: u64, len: u64) {
        self.requests.push((file, offset, len));
    }

    /// Average adjacent distance (bytes) of this slot's requests, then
    /// reset. `None` with fewer than two requests.
    pub fn take_avg_req_dist(&mut self) -> Option<f64> {
        if self.requests.len() < 2 {
            self.requests.clear();
            return None;
        }
        self.requests.sort_unstable();
        let mut sum = 0u64;
        let mut n = 0u64;
        for w in self.requests.windows(2) {
            let (f0, o0, l0) = w[0];
            let (f1, o1, _) = w[1];
            if f0 == f1 {
                sum += o1.saturating_sub(o0 + l0);
                n += 1;
            }
        }
        self.requests.clear();
        if n == 0 {
            None
        } else {
            Some(sum as f64 / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emc() -> Emc {
        Emc::new(DualParConfig::default())
    }

    const SLOT_NS: u64 = 1_000_000_000;

    #[test]
    fn switches_on_when_io_bound_and_inefficient() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), (0.95 * SLOT_NS as f64) as u64, SLOT_NS);
        e.report_seek_dist(1_000_000.0); // huge seeks
        e.report_req_dist(16.0 * 1024.0); // requests 16 KB apart after sorting
        let changes = e.tick();
        assert_eq!(
            changes,
            vec![ModeChange {
                program: ProgramId(1),
                mode: ExecMode::DataDriven
            }]
        );
        assert!(e.last_improvement().unwrap() > 3.0);
    }

    #[test]
    fn no_switch_when_compute_bound() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), SLOT_NS / 10, SLOT_NS); // 10% I/O
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        let changes = e.tick();
        assert!(changes.is_empty());
        assert_eq!(e.mode_of(ProgramId(1)), ExecMode::ComputationDriven);
    }

    #[test]
    fn no_switch_when_already_efficient() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        // Seeks about as small as the request stream allows: ratio ~1.
        e.report_seek_dist(100.0);
        e.report_req_dist(100.0 * 512.0);
        assert!(e.tick().is_empty());
    }

    #[test]
    fn reverts_when_condition_clears() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        assert_eq!(e.tick().len(), 1);
        // Next slot: efficiency restored.
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(10.0);
        e.report_req_dist(1024.0 * 512.0);
        let changes = e.tick();
        assert_eq!(changes[0].mode, ExecMode::ComputationDriven);
    }

    #[test]
    fn mode_sticky_without_samples() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        e.tick();
        assert_eq!(e.mode_of(ProgramId(1)), ExecMode::DataDriven);
        // Data-driven phases generate no vanilla stream; no samples arrive.
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        assert!(e.tick().is_empty());
        assert_eq!(e.mode_of(ProgramId(1)), ExecMode::DataDriven);
    }

    #[test]
    fn misprefetch_disables_permanently() {
        let mut e = emc();
        e.register(ProgramId(1));
        // In data-driven mode...
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        e.tick();
        // ...half the prefetched data goes unused.
        e.report_misprefetch(ProgramId(1), 0.5);
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        let changes = e.tick();
        assert_eq!(changes[0].mode, ExecMode::ComputationDriven);
        // Even with perfect trigger conditions later it stays off.
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(10_000_000.0);
        e.report_req_dist(512.0);
        assert!(e.tick().is_empty());
    }

    #[test]
    fn small_misprefetch_tolerated() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        e.tick();
        e.report_misprefetch(ProgramId(1), 0.1); // below the 20% threshold
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS);
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        assert!(e.tick().is_empty());
        assert_eq!(e.mode_of(ProgramId(1)), ExecMode::DataDriven);
    }

    #[test]
    fn decisions_are_per_program() {
        let mut e = emc();
        e.register(ProgramId(1));
        e.register(ProgramId(2));
        e.report_times(ProgramId(1), SLOT_NS, SLOT_NS); // I/O bound
        e.report_times(ProgramId(2), SLOT_NS / 10, SLOT_NS); // compute bound
        e.report_seek_dist(1_000_000.0);
        e.report_req_dist(1024.0);
        let changes = e.tick();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].program, ProgramId(1));
    }

    #[test]
    fn req_dist_tracker_sorts_before_measuring() {
        let mut t = ReqDistTracker::new();
        // Arrivals out of order, 16 KB apart with 4 KB lengths.
        for off in [32768u64, 0, 16384, 49152] {
            t.observe(1, off, 4096);
        }
        let d = t.take_avg_req_dist().unwrap();
        assert_eq!(d, (16384 - 4096) as f64);
        assert!(t.take_avg_req_dist().is_none(), "tracker resets");
    }

    #[test]
    fn req_dist_ignores_cross_file_gaps() {
        let mut t = ReqDistTracker::new();
        t.observe(1, 0, 100);
        t.observe(2, 1_000_000, 100);
        assert!(t.take_avg_req_dist().is_none());
    }

    #[test]
    fn overlapping_requests_have_zero_distance() {
        let mut t = ReqDistTracker::new();
        t.observe(1, 0, 4096);
        t.observe(1, 1000, 4096);
        assert_eq!(t.take_avg_req_dist(), Some(0.0));
    }
}
