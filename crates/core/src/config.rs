//! DualPar's tunables, with the paper's defaults (§IV, §V).

use dualpar_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifies a registered parallel program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProgramId(
    /// Index assigned at registration.
    pub u32,
);

/// DualPar's tunables (paper defaults in [`Default`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualParConfig {
    /// Per-process cache quota — 1 MB default (§V).
    pub cache_quota: u64,
    /// Programs with I/O ratio above this are candidates for the
    /// data-driven mode — 80 % (§IV-B).
    pub io_ratio_threshold: f64,
    /// `T_improvement`: switch when `aveSeekDist / aveReqDist` exceeds
    /// this — 3 by default (§IV-B).
    pub t_improvement: f64,
    /// Disable the data-driven mode when the average mis-prefetch ratio
    /// exceeds this — 20 % (§IV-C).
    pub misprefetch_threshold: f64,
    /// EMC sampling slot ("constant time slots", §IV-B) — 1 s.
    pub sample_slot: SimDuration,
    /// Maximum hole absorbed when CRM merges requests (§IV-D): holes
    /// smaller than this are filled (reads) or read-modify-written
    /// (writes). One stripe unit by default.
    pub max_hole: u64,
    /// List-I/O packing factor: small requests packed per message (§IV-D).
    pub list_io_pack: usize,
    /// Ghost pre-executions that exceed `expected fill time × this factor`
    /// are stopped so one slow rank cannot stall the phase (§IV-C).
    pub ghost_timeout_factor: f64,
    /// Slice computation out of ghost pre-execution (the Strategy-2 /
    /// Chen-et-al. approach). The paper retains computation for prediction
    /// accuracy and source independence; this knob exists for the
    /// `ablation_ghost` bench.
    pub ghost_slice_compute: bool,
}

impl Default for DualParConfig {
    fn default() -> Self {
        DualParConfig {
            cache_quota: 1 << 20,
            io_ratio_threshold: 0.8,
            t_improvement: 3.0,
            misprefetch_threshold: 0.2,
            sample_slot: SimDuration::from_secs(1),
            max_hole: 64 * 1024,
            list_io_pack: 64,
            ghost_timeout_factor: 2.0,
            ghost_slice_compute: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DualParConfig::default();
        assert_eq!(c.cache_quota, 1 << 20);
        assert_eq!(c.io_ratio_threshold, 0.8);
        assert_eq!(c.t_improvement, 3.0);
        assert_eq!(c.misprefetch_threshold, 0.2);
        assert_eq!(c.sample_slot, SimDuration::from_secs(1));
    }
}
