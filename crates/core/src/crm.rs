//! Cache and Request Management — the per-compute-node daemon (§IV-D).
//!
//! CRM turns the raw request recordings of a pre-execution phase (or the
//! dirty contents of the cache at drain time) into the batch the data
//! servers actually see: sorted by file offset, adjacent requests merged,
//! small holes absorbed — reads simply widen, writes must *fill* their
//! holes with reads first to avoid clobbering unwritten bytes — and small
//! survivors packed with list I/O in ascending offset order.

use crate::config::DualParConfig;
use dualpar_mpiio::{build_batch, pack_list_io, CoalescedIo};
use dualpar_pfs::{FileId, FileRegion};
use serde::Serialize;

/// A planned prefetch batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Coalesced read accesses, sorted by (file, offset).
    pub reads: Vec<CoalescedIo>,
    /// List-I/O packs (indices into `reads` are implicit: packs partition
    /// `reads` in order). One network message per pack.
    pub packs: usize,
}

/// A planned write-back batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritebackPlan {
    /// Coalesced write accesses (covers include filled holes).
    pub writes: Vec<CoalescedIo>,
    /// Holes inside write covers that must be read before the covering
    /// write can be issued (read-modify-write, §IV-D).
    pub fill_reads: Vec<(FileId, FileRegion)>,
    /// List-I/O packs, as in [`PrefetchPlan::packs`].
    pub packs: usize,
}

/// Batch statistics, matching the request-size numbers quoted in §II.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BatchStats {
    /// Coalesced requests in the batch.
    pub requests: usize,
    /// Bytes the application asked for.
    pub useful_bytes: u64,
    /// Bytes actually transferred (holes included).
    pub transfer_bytes: u64,
    /// Mean transfer size per request — §II's "average request size".
    pub avg_request_bytes: f64,
}

fn stats_of(ios: &[CoalescedIo]) -> BatchStats {
    let useful: u64 = ios.iter().map(|io| io.useful_bytes()).sum();
    let transfer: u64 = ios.iter().map(|io| io.cover.len).sum();
    BatchStats {
        requests: ios.len(),
        useful_bytes: useful,
        transfer_bytes: transfer,
        avg_request_bytes: if ios.is_empty() {
            0.0
        } else {
            transfer as f64 / ios.len() as f64
        },
    }
}

/// Build the prefetch batch from the ghost recordings of all processes on
/// (or coordinated by) this node.
pub fn plan_prefetch(cfg: &DualParConfig, recorded: Vec<(FileId, FileRegion)>) -> PrefetchPlan {
    let reads = build_batch(recorded, cfg.max_hole);
    let packs = pack_list_io(&reads, cfg.list_io_pack).len();
    PrefetchPlan { reads, packs }
}

/// Build the write-back batch from drained dirty regions.
pub fn plan_writeback(cfg: &DualParConfig, dirty: Vec<(FileId, FileRegion)>) -> WritebackPlan {
    let writes = build_batch(dirty, cfg.max_hole);
    let mut fill_reads = Vec::new();
    for w in &writes {
        // Every gap between useful regions inside the cover must be read
        // before the full cover can be written.
        let mut cursor = w.cover.offset;
        for u in &w.useful {
            if u.offset > cursor {
                fill_reads.push((w.file, FileRegion::new(cursor, u.offset - cursor)));
            }
            cursor = u.end();
        }
        debug_assert_eq!(cursor, w.cover.end(), "useful regions must tile the cover ends");
    }
    let packs = pack_list_io(&writes, cfg.list_io_pack).len();
    WritebackPlan {
        writes,
        fill_reads,
        packs,
    }
}

/// Statistics for a prefetch plan.
pub fn prefetch_stats(plan: &PrefetchPlan) -> BatchStats {
    stats_of(&plan.reads)
}

/// Statistics for a write-back plan.
pub fn writeback_stats(plan: &WritebackPlan) -> BatchStats {
    stats_of(&plan.writes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DualParConfig {
        DualParConfig::default()
    }

    fn r(o: u64, l: u64) -> FileRegion {
        FileRegion::new(o, l)
    }

    #[test]
    fn prefetch_plan_sorts_and_merges_across_processes() {
        // 8 processes × interleaved 4 KB segments — the demo pattern.
        let mut recorded = Vec::new();
        for rank in 0..8u64 {
            for k in 0..4u64 {
                recorded.push((FileId(1), r((k * 8 + rank) * 4096, 4096)));
            }
        }
        let plan = plan_prefetch(&cfg(), recorded);
        assert_eq!(plan.reads.len(), 1, "fully interleaved batch fuses");
        assert_eq!(plan.reads[0].cover, r(0, 32 * 4096));
        let s = prefetch_stats(&plan);
        assert_eq!(s.useful_bytes, 32 * 4096);
        assert_eq!(s.transfer_bytes, 32 * 4096);
    }

    #[test]
    fn prefetch_average_request_grows_vs_individual() {
        // Strategy-2-style individual requests are 12 KB; the batch should
        // produce much larger average requests (paper: 128 KB).
        let recorded: Vec<_> = (0..64u64)
            .map(|i| (FileId(1), r(i * 16384, 12288))) // 12 KB every 16 KB
            .collect();
        let plan = plan_prefetch(&cfg(), recorded);
        let s = prefetch_stats(&plan);
        assert!(s.avg_request_bytes > 100.0 * 1024.0);
        assert!(s.requests < 8);
    }

    #[test]
    fn writeback_holes_require_fill_reads() {
        let dirty = vec![
            (FileId(1), r(0, 1000)),
            (FileId(1), r(1500, 1000)), // 500-byte hole
        ];
        let plan = plan_writeback(&cfg(), dirty);
        assert_eq!(plan.writes.len(), 1);
        assert_eq!(plan.writes[0].cover, r(0, 2500));
        assert_eq!(plan.fill_reads, vec![(FileId(1), r(1000, 500))]);
    }

    #[test]
    fn writeback_without_holes_needs_no_reads() {
        let dirty = vec![(FileId(1), r(0, 1000)), (FileId(1), r(1000, 1000))];
        let plan = plan_writeback(&cfg(), dirty);
        assert_eq!(plan.writes.len(), 1);
        assert!(plan.fill_reads.is_empty());
    }

    #[test]
    fn distant_writes_stay_separate() {
        let dirty = vec![
            (FileId(1), r(0, 1000)),
            (FileId(1), r(100 << 20, 1000)),
        ];
        let plan = plan_writeback(&cfg(), dirty);
        assert_eq!(plan.writes.len(), 2);
        assert!(plan.fill_reads.is_empty());
    }

    #[test]
    fn pack_count_respects_config() {
        let mut c = cfg();
        c.list_io_pack = 4;
        c.max_hole = 0;
        let recorded: Vec<_> = (0..10u64)
            .map(|i| (FileId(1), r(i * 1_000_000, 100)))
            .collect();
        let plan = plan_prefetch(&c, recorded);
        assert_eq!(plan.reads.len(), 10);
        assert_eq!(plan.packs, 3); // ceil(10/4)
    }

    #[test]
    fn multi_file_batches_group_by_file() {
        let recorded = vec![
            (FileId(2), r(0, 100)),
            (FileId(1), r(0, 100)),
            (FileId(2), r(100, 100)),
        ];
        let plan = plan_prefetch(&cfg(), recorded);
        assert_eq!(plan.reads.len(), 2);
        assert_eq!(plan.reads[0].file, FileId(1));
        assert_eq!(plan.reads[1].file, FileId(2));
        assert_eq!(plan.reads[1].cover, r(0, 200));
    }

    #[test]
    fn empty_recordings_produce_empty_plans() {
        let plan = plan_prefetch(&cfg(), Vec::new());
        assert!(plan.reads.is_empty());
        assert_eq!(plan.packs, 0);
        let wb = plan_writeback(&cfg(), Vec::new());
        assert!(wb.writes.is_empty());
        assert!(wb.fill_reads.is_empty());
    }
}
