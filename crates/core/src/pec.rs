//! Process Execution Control — the MPI-IO library hooks (§IV-C).
//!
//! In the data-driven mode, a synchronous read that misses the global cache
//! does not go to the data servers. Instead the process blocks and a ghost
//! process pre-executes the same script, *recording* the I/O it encounters.
//! The ghost carries out all computation (DualPar deliberately retains it
//! for prediction accuracy and source-code independence), so ghost time is
//! real compute time on the node. Pre-execution pauses when the space the
//! recorded calls would occupy reaches the process's cache quota.
//!
//! This module provides the ghost walk as a pure function over a process
//! script plus the per-program phase bookkeeping; the cluster's event loop
//! supplies timing and actually moves the data.

use crate::config::DualParConfig;
use dualpar_mpiio::{IoKind, Op, ProcessScript};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::SimDuration;
use serde::Serialize;

/// Why a ghost walk stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GhostStop {
    /// Recorded calls would fill the cache quota.
    QuotaFull,
    /// Reached the end of the script.
    ScriptEnd,
}

/// The result of pre-executing one process from a script position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostRun {
    /// Read regions to prefetch, in recording order (the CRM sorts them).
    /// These are the *predicted* regions — wrong for data-dependent I/O.
    pub prefetch: Vec<(FileId, FileRegion)>,
    /// Compute time the ghost burned re-executing computation.
    pub compute: SimDuration,
    /// Bytes of cache space the recorded calls (reads and writes) would
    /// occupy — the quota measure of §IV-C.
    pub space: u64,
    /// Script index one past the last op the ghost examined.
    pub end_pos: usize,
    /// Why the walk ended.
    pub stop: GhostStop,
}

/// Pre-execute `script` starting at op index `start` until the recorded
/// calls would occupy `quota` bytes of cache.
///
/// Reads are recorded for prefetching (using each call's ghost-visible
/// regions); writes are recorded only as space (they will be produced —
/// and buffered — by the normal execution that follows). Barriers cost the
/// ghost nothing: all ranks' ghosts run the same region concurrently.
pub fn ghost_walk(script: &ProcessScript, start: usize, quota: u64) -> GhostRun {
    let mut prefetch = Vec::new();
    let mut compute = SimDuration::ZERO;
    let mut space = 0u64;
    let mut pos = start;
    while pos < script.ops.len() {
        match &script.ops[pos] {
            Op::Compute(d) => compute += *d,
            Op::Barrier(_) => {}
            Op::Io(call) => {
                let call_bytes: u64 = call.ghost_regions().iter().map(|r| r.len).sum();
                if space + call_bytes > quota && space > 0 {
                    // Recording this call would overflow the quota: pause
                    // *before* it so the phase stays within the cache.
                    return GhostRun {
                        prefetch,
                        compute,
                        space,
                        end_pos: pos,
                        stop: GhostStop::QuotaFull,
                    };
                }
                space += call_bytes;
                if call.kind == IoKind::Read {
                    for r in call.ghost_regions() {
                        prefetch.push((call.file, *r));
                    }
                }
                if space >= quota {
                    return GhostRun {
                        prefetch,
                        compute,
                        space,
                        end_pos: pos + 1,
                        stop: GhostStop::QuotaFull,
                    };
                }
            }
        }
        pos += 1;
    }
    GhostRun {
        prefetch,
        compute,
        space,
        end_pos: pos,
        stop: GhostStop::ScriptEnd,
    }
}

/// Expected time for a process to fill its cache quota, from its recent
/// average I/O throughput (§IV-C): ghosts still running past
/// `expected × ghost_timeout_factor` are stopped by the phase coordinator.
pub fn expected_fill_time(
    cfg: &DualParConfig,
    recent_bytes_per_sec: f64,
) -> SimDuration {
    if recent_bytes_per_sec <= 0.0 {
        // No throughput estimate yet: fall back to one sampling slot.
        return cfg.sample_slot;
    }
    let secs = cfg.cache_quota as f64 / recent_bytes_per_sec * cfg.ghost_timeout_factor;
    SimDuration::from_secs_f64(secs.max(1e-6))
}

/// Tracks a process's recent I/O throughput and I/O-vs-compute split for
/// EMC reporting, fed by the instrumented ADIO call boundaries.
#[derive(Debug, Default, Clone)]
pub struct IoClock {
    io_ns: u64,
    other_ns: u64,
    io_bytes: u64,
}

impl IoClock {
    /// A zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed I/O call of `bytes` that took `dur`.
    pub fn record_io(&mut self, dur: SimDuration, bytes: u64) {
        self.io_ns += dur.nanos();
        self.io_bytes += bytes;
    }

    /// Record time between I/O calls (computation + communication — the
    /// paper treats everything between two ADIO calls as compute).
    pub fn record_other(&mut self, dur: SimDuration) {
        self.other_ns += dur.nanos();
    }

    /// Fraction of recorded time spent in I/O.
    pub fn io_ratio(&self) -> f64 {
        let total = self.io_ns + self.other_ns;
        if total == 0 {
            0.0
        } else {
            self.io_ns as f64 / total as f64
        }
    }

    /// Average I/O throughput over the recorded I/O time.
    pub fn io_bytes_per_sec(&self) -> f64 {
        if self.io_ns == 0 {
            0.0
        } else {
            self.io_bytes as f64 / (self.io_ns as f64 / 1e9)
        }
    }

    /// Drain the accumulated (io_ns, total_ns) for an EMC report.
    pub fn take_sample(&mut self) -> (u64, u64) {
        let s = (self.io_ns, self.io_ns + self.other_ns);
        self.io_ns = 0;
        self.other_ns = 0;
        self.io_bytes = 0;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualpar_mpiio::IoCall;

    fn read_op(file: u32, off: u64, len: u64) -> Op {
        Op::Io(IoCall::read(FileId(file), vec![FileRegion::new(off, len)]))
    }

    fn write_op(file: u32, off: u64, len: u64) -> Op {
        Op::Io(IoCall::write(FileId(file), vec![FileRegion::new(off, len)]))
    }

    #[test]
    fn ghost_records_reads_until_quota() {
        let script = ProcessScript::new(
            (0..10)
                .map(|i| read_op(1, i * 1000, 1000))
                .collect(),
        );
        let run = ghost_walk(&script, 0, 3500);
        // 3 reads fit (3000); the 4th would overflow.
        assert_eq!(run.prefetch.len(), 3);
        assert_eq!(run.space, 3000);
        assert_eq!(run.end_pos, 3);
        assert_eq!(run.stop, GhostStop::QuotaFull);
    }

    #[test]
    fn ghost_counts_write_space_but_does_not_prefetch_writes() {
        let script = ProcessScript::new(vec![
            write_op(1, 0, 2000),
            read_op(1, 5000, 1000),
            write_op(1, 9000, 10_000),
        ]);
        let run = ghost_walk(&script, 0, 4000);
        assert_eq!(run.prefetch, vec![(FileId(1), FileRegion::new(5000, 1000))]);
        assert_eq!(run.space, 3000); // write + read; big write excluded
        assert_eq!(run.end_pos, 2);
    }

    #[test]
    fn ghost_burns_compute_time() {
        let script = ProcessScript::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            read_op(1, 0, 100),
            Op::Compute(SimDuration::from_millis(7)),
            read_op(1, 1000, 100),
        ]);
        let run = ghost_walk(&script, 0, 1 << 20);
        assert_eq!(run.compute, SimDuration::from_millis(12));
        assert_eq!(run.stop, GhostStop::ScriptEnd);
        assert_eq!(run.end_pos, 4);
    }

    #[test]
    fn ghost_resumes_mid_script() {
        let script = ProcessScript::new(
            (0..4).map(|i| read_op(1, i * 100, 100)).collect(),
        );
        let first = ghost_walk(&script, 0, 250);
        assert_eq!(first.end_pos, 2);
        let second = ghost_walk(&script, first.end_pos, 250);
        assert_eq!(
            second.prefetch,
            vec![
                (FileId(1), FileRegion::new(200, 100)),
                (FileId(1), FileRegion::new(300, 100))
            ]
        );
        assert_eq!(second.stop, GhostStop::ScriptEnd);
    }

    #[test]
    fn ghost_uses_predictions_for_dependent_io() {
        let call = IoCall::read(FileId(1), vec![FileRegion::new(0, 100)])
            .with_prediction(vec![FileRegion::new(7777, 100)]);
        let script = ProcessScript::new(vec![Op::Io(call)]);
        let run = ghost_walk(&script, 0, 1 << 20);
        assert_eq!(run.prefetch, vec![(FileId(1), FileRegion::new(7777, 100))]);
    }

    #[test]
    fn oversized_single_call_still_recorded() {
        // A single call larger than the quota must still make progress.
        let script = ProcessScript::new(vec![read_op(1, 0, 1 << 21)]);
        let run = ghost_walk(&script, 0, 1 << 20);
        assert_eq!(run.prefetch.len(), 1);
        assert_eq!(run.end_pos, 1);
        assert_eq!(run.stop, GhostStop::QuotaFull);
    }

    #[test]
    fn barriers_cost_nothing() {
        let script = ProcessScript::new(vec![
            Op::Barrier(0),
            read_op(1, 0, 100),
            Op::Barrier(1),
        ]);
        let run = ghost_walk(&script, 0, 1 << 20);
        assert_eq!(run.compute, SimDuration::ZERO);
        assert_eq!(run.end_pos, 3);
    }

    #[test]
    fn io_clock_ratio_and_throughput() {
        let mut c = IoClock::new();
        c.record_io(SimDuration::from_millis(900), 9_000_000);
        c.record_other(SimDuration::from_millis(100));
        assert!((c.io_ratio() - 0.9).abs() < 1e-12);
        assert!((c.io_bytes_per_sec() - 10_000_000.0).abs() < 1.0);
        let (io, total) = c.take_sample();
        assert_eq!(io, 900_000_000);
        assert_eq!(total, 1_000_000_000);
        assert_eq!(c.io_ratio(), 0.0);
    }

    #[test]
    fn expected_fill_time_scales_with_throughput() {
        let cfg = DualParConfig::default();
        let fast = expected_fill_time(&cfg, 100e6);
        let slow = expected_fill_time(&cfg, 1e6);
        assert!(slow > fast);
        // 1 MB quota at 1 MB/s with factor 2 ⇒ ~2.1 s.
        assert!((slow.as_secs_f64() - 2.097).abs() < 0.01);
        // No estimate ⇒ one slot.
        assert_eq!(expected_fill_time(&cfg, 0.0), cfg.sample_slot);
    }
}
