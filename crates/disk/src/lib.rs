//! # dualpar-disk
//!
//! Mechanical hard-disk model, I/O schedulers, and block tracing for the
//! DualPar reproduction. This crate stands in for the data servers' physical
//! disks plus the Linux block layer (CFQ et al.) and Blktrace.
//!
//! See DESIGN.md §2 for the substitution rationale: everything the paper
//! measures at the disk level — seek-distance statistics, LBN access traces,
//! the sequential-vs-random throughput gap — is produced by these types.

pub mod ctxmap;
pub mod disk;
pub mod model;
pub mod request;
pub mod sched;
pub mod trace;

pub use disk::{Disk, StartOutcome};
pub use model::{bytes_to_sectors, DiskParams, Lbn, SECTOR_BYTES};
pub use request::{DiskRequest, IoCtx, IoKind, MergedIds};
pub use sched::{
    AnticipatoryConfig, AnticipatoryScheduler, CfqConfig, CfqScheduler, Decision, DeadlineConfig, DeadlineScheduler, NoopScheduler,
    ScanScheduler, Scheduler, SchedulerKind, SstfScheduler, DEFAULT_MAX_MERGE_SECTORS,
};
pub use trace::{BlockTrace, TraceRecord};
