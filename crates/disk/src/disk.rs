//! The disk device: mechanical model + scheduler + trace, with an explicit
//! start/complete protocol driven by the owning event loop.

use crate::model::{DiskParams, Lbn};
use crate::request::{DiskRequest, IoCtx};
use crate::sched::{Decision, Scheduler, SchedulerKind};
use crate::trace::{BlockTrace, TraceRecord};
use dualpar_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Outcome of asking the disk to start its next piece of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartOutcome {
    /// Service began; a completion should be delivered at `finish`.
    Started {
        /// When the in-flight request completes.
        finish: SimTime,
    },
    /// Scheduler wants anticipation; poke the disk again at `until`
    /// (or earlier, if a request arrives).
    Idle {
        /// End of the anticipation window.
        until: SimTime,
    },
    /// Nothing to do.
    Quiescent,
}

/// A single simulated disk.
pub struct Disk {
    params: DiskParams,
    sched: Box<dyn Scheduler>,
    trace: BlockTrace,
    head: Lbn,
    in_flight: Option<DiskRequest>,
    total_busy: SimDuration,
    bytes_serviced: u64,
    total_seek: u64,
    per_ctx_busy: BTreeMap<IoCtx, SimDuration>,
}

impl Disk {
    /// Build a disk with the given mechanical model and scheduler.
    pub fn new(params: DiskParams, sched_kind: SchedulerKind, trace_enabled: bool) -> Self {
        Disk {
            params,
            sched: sched_kind.build(),
            trace: BlockTrace::new(trace_enabled),
            head: 0,
            in_flight: None,
            total_busy: SimDuration::ZERO,
            bytes_serviced: 0,
            total_seek: 0,
            per_ctx_busy: BTreeMap::new(),
        }
    }

    /// The mechanical parameters in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// The block trace (read-only).
    pub fn trace(&self) -> &BlockTrace {
        &self.trace
    }

    /// The block trace (mutable, e.g. for windowed sampling).
    pub fn trace_mut(&mut self) -> &mut BlockTrace {
        &mut self.trace
    }

    /// Current head position (one past the last serviced sector).
    pub fn head(&self) -> Lbn {
        self.head
    }

    /// Is a request currently being serviced?
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// The request currently being serviced, if any.
    pub fn in_flight(&self) -> Option<&DiskRequest> {
        self.in_flight.as_ref()
    }

    /// Requests waiting in the scheduler.
    pub fn queued(&self) -> usize {
        self.sched.queued()
    }

    /// Cumulative service time.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Cumulative bytes moved (reads + writes).
    pub fn bytes_serviced(&self) -> u64 {
        self.bytes_serviced
    }

    /// Cumulative head travel (sectors) across all dispatched requests.
    pub fn total_seek_distance(&self) -> u64 {
        self.total_seek
    }

    /// Cumulative service time attributed to each issuing context.
    pub fn per_ctx_service(&self) -> &BTreeMap<IoCtx, SimDuration> {
        &self.per_ctx_busy
    }

    /// Queue a request. The caller should then call [`Disk::try_start`] and
    /// act on the outcome (unless the disk is already busy).
    pub fn enqueue(&mut self, req: DiskRequest) {
        dualpar_sim::strict_assert!(req.sectors > 0, "zero-length disk request id={}", req.id);
        debug_assert!(
            req.lbn.saturating_add(req.sectors) <= self.params.capacity_sectors,
            "request beyond end of disk: lbn={} sectors={} cap={}",
            req.lbn,
            req.sectors,
            self.params.capacity_sectors
        );
        self.sched.enqueue(req);
    }

    /// If idle, pick the next request (or anticipation window). The caller
    /// must schedule the completion / poke event it is told about.
    pub fn try_start(&mut self, now: SimTime) -> StartOutcome {
        if self.in_flight.is_some() {
            return StartOutcome::Quiescent; // busy; completion will re-poke
        }
        match self.sched.decide(now, self.head) {
            Decision::Dispatch(mut req) => {
                // Dispatch-time elevator merge: chain any queued requests
                // that continue this one, regardless of issuing context,
                // up to the block layer's merge cap.
                while req.sectors < crate::sched::DEFAULT_MAX_MERGE_SECTORS {
                    match self.sched.absorb_contiguous(req.end(), req.kind) {
                        Some(next) => req.back_merge(next),
                        None => break,
                    }
                }
                while req.sectors < crate::sched::DEFAULT_MAX_MERGE_SECTORS {
                    match self.sched.absorb_ending_at(req.lbn, req.kind) {
                        Some(mut prev) => {
                            prev.back_merge(req);
                            req = prev;
                        }
                        None => break,
                    }
                }
                let (dist, service) = self.params.service_time(self.head, req.lbn, req.sectors);
                self.trace.record(TraceRecord {
                    at: now,
                    lbn: req.lbn,
                    sectors: req.sectors,
                    kind: req.kind,
                    ctx: req.ctx,
                    seek_distance: dist,
                });
                dualpar_sim::strict_assert!(
                    req.end() <= self.params.capacity_sectors,
                    "post-merge request beyond end of disk: lbn={} sectors={} cap={}",
                    req.lbn,
                    req.sectors,
                    self.params.capacity_sectors
                );
                let finish = now.saturating_add(service);
                self.total_busy += service;
                self.total_seek += dist;
                *self.per_ctx_busy.entry(req.ctx).or_insert(SimDuration::ZERO) += service;
                self.bytes_serviced += req.sectors.saturating_mul(crate::model::SECTOR_BYTES);
                self.head = req.end();
                self.in_flight = Some(req);
                StartOutcome::Started { finish }
            }
            Decision::IdleUntil(until) => StartOutcome::Idle { until },
            Decision::Empty => StartOutcome::Quiescent,
        }
    }

    /// Complete the in-flight request, returning it (with all merged ids).
    /// The caller should immediately `try_start` again.
    ///
    /// # Panics
    /// Panics if no request is in flight — calling this without a matching
    /// `Started` outcome is an event-loop bug.
    pub fn complete(&mut self) -> DiskRequest {
        self.in_flight
            .take()
            .expect("Disk::complete called with no request in flight")
    }

    /// Name of the active scheduler (for reports).
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoCtx, IoKind};

    fn disk(kind: SchedulerKind) -> Disk {
        Disk::new(DiskParams::hdd_7200rpm(), kind, true)
    }

    fn req(id: u64, lbn: Lbn, sectors: u64) -> DiskRequest {
        DiskRequest::new(id, IoCtx(0), IoKind::Read, lbn, sectors, SimTime::ZERO)
    }

    #[test]
    fn start_complete_cycle() {
        let mut d = disk(SchedulerKind::Noop);
        d.enqueue(req(1, 1000, 8));
        let finish = match d.try_start(SimTime::ZERO) {
            StartOutcome::Started { finish } => finish,
            other => panic!("{other:?}"),
        };
        assert!(d.is_busy());
        assert!(finish > SimTime::ZERO);
        let done = d.complete();
        assert_eq!(done.id, 1);
        assert!(!d.is_busy());
        assert_eq!(d.head(), 1008);
        assert_eq!(d.try_start(finish), StartOutcome::Quiescent);
    }

    #[test]
    fn busy_disk_rejects_start() {
        let mut d = disk(SchedulerKind::Noop);
        d.enqueue(req(1, 0, 8));
        d.enqueue(req(2, 100, 8));
        let _ = d.try_start(SimTime::ZERO);
        assert_eq!(d.try_start(SimTime::ZERO), StartOutcome::Quiescent);
        let _ = d.complete();
        assert!(matches!(
            d.try_start(SimTime::from_millis(1)),
            StartOutcome::Started { .. }
        ));
    }

    #[test]
    fn sequential_stream_is_fast() {
        // 128 sequential 64 KB requests ≈ 8 MiB at ~130 MB/s ⇒ ~64 ms.
        let mut d = disk(SchedulerKind::Noop);
        let sectors = 128; // 64 KB
        for i in 0..128u64 {
            d.enqueue(req(i, i * sectors, sectors));
        }
        let mut now = SimTime::ZERO;
        while let StartOutcome::Started { finish } = d.try_start(now) {
            now = finish;
            d.complete();
        }
        let mb = d.bytes_serviced() as f64 / 1e6;
        let thr = mb / now.as_secs_f64();
        assert!(thr > 100.0, "sequential throughput {thr:.0} MB/s too low");
    }

    #[test]
    fn scattered_stream_is_slow_then_sorted_is_faster() {
        // Same set of requests; once in a scattered arrival order served
        // FIFO (noop), once pre-sorted. Sorted must be much faster.
        let lbns: Vec<Lbn> = (0..64u64).map(|i| (i * 37) % 64).collect(); // permuted
        let run = |order: &[Lbn]| {
            let mut d = disk(SchedulerKind::Noop);
            for (i, &l) in order.iter().enumerate() {
                d.enqueue(req(i as u64, l * 1_000_000, 8));
            }
            let mut now = SimTime::ZERO;
            while let StartOutcome::Started { finish } = d.try_start(now) {
                now = finish;
                d.complete();
            }
            now
        };
        let scattered = run(&lbns);
        let mut sorted = lbns.clone();
        sorted.sort_unstable();
        let ordered = run(&sorted);
        let speedup = scattered.as_secs_f64() / ordered.as_secs_f64();
        assert!(speedup > 1.5, "sorting should help, got {speedup:.2}x");
    }

    #[test]
    fn trace_records_every_service() {
        let mut d = disk(SchedulerKind::Noop);
        for i in 0..10u64 {
            d.enqueue(req(i, i * 1000, 8));
        }
        let mut now = SimTime::ZERO;
        while let StartOutcome::Started { finish } = d.try_start(now) {
            now = finish;
            d.complete();
        }
        assert_eq!(d.trace().records().len(), 10);
        assert_eq!(d.trace().serviced(), 10);
    }

    #[test]
    #[should_panic(expected = "no request in flight")]
    fn complete_without_start_panics() {
        let mut d = disk(SchedulerKind::Noop);
        let _ = d.complete();
    }

    #[test]
    fn cfq_idle_outcome_propagates() {
        let mut d = disk(SchedulerKind::Cfq);
        d.enqueue(req(1, 0, 8));
        let finish = match d.try_start(SimTime::ZERO) {
            StartOutcome::Started { finish } => finish,
            o => panic!("{o:?}"),
        };
        d.complete();
        // Queue empty but CFQ anticipates the same context.
        match d.try_start(finish) {
            StartOutcome::Idle { until } => assert!(until > finish),
            o => panic!("expected idle anticipation, got {o:?}"),
        }
    }
}
