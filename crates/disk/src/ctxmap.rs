//! Dense-first per-context auxiliary map for disk schedulers.
//!
//! CFQ and the anticipatory scheduler both key small per-context state
//! (queues, anticipation verdicts) by [`IoCtx`]. An `FxHashMap` put a
//! hash probe on every enqueue/decide and — worse for determinism
//! auditing — iterated in hash-table order, which is stable for a fixed
//! seed but *arbitrary*: nothing in the source says which queue a
//! dispatch-merge scan visits first. This map exploits what context ids
//! actually look like: the engine allocates them densely from zero
//! (per-client and per-program modes count up; per-server mode uses a
//! single id 0), with the one exception of the flush daemon's sentinel
//! (`0xFFFF_FFFF`) surfacing under per-client keying.
//!
//! * ids below [`DENSE_LIMIT`] index straight into a `Vec` — the common
//!   case is an array load, no hashing;
//! * anything else appends to a tiny insertion-ordered spill vector and
//!   is found by linear scan (in practice at most one entry: the flush
//!   sentinel).
//!
//! Iteration visits dense slots in id order, then spill entries in
//! insertion order — deterministic *by construction*, independent of any
//! hasher. Values are never dropped once inserted (schedulers keep a
//! context's verdict across idle periods), matching the retired hash-map
//! behaviour.

use crate::request::IoCtx;

/// Ids below this index straight into the dense table (32 KiB of
/// `Option<T>` pointers at worst for the schedulers' payload sizes);
/// anything above spills. Clusters allocate a few dozen contexts.
const DENSE_LIMIT: usize = 4096;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct CtxMap<T> {
    dense: Vec<Option<T>>,
    spill: Vec<(IoCtx, T)>,
}

impl<T> Default for CtxMap<T> {
    fn default() -> Self {
        CtxMap {
            dense: Vec::new(),
            spill: Vec::new(),
        }
    }
}

impl<T> CtxMap<T> {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn dense_index(ctx: IoCtx) -> Option<usize> {
        let i = ctx.0 as usize;
        (i < DENSE_LIMIT).then_some(i)
    }

    #[inline]
    pub fn get(&self, ctx: IoCtx) -> Option<&T> {
        match Self::dense_index(ctx) {
            Some(i) => self.dense.get(i)?.as_ref(),
            None => self.spill.iter().find(|(c, _)| *c == ctx).map(|(_, v)| v),
        }
    }

    #[inline]
    pub fn get_mut(&mut self, ctx: IoCtx) -> Option<&mut T> {
        match Self::dense_index(ctx) {
            Some(i) => self.dense.get_mut(i)?.as_mut(),
            None => self
                .spill
                .iter_mut()
                .find(|(c, _)| *c == ctx)
                .map(|(_, v)| v),
        }
    }

    /// Insert `value` at `ctx`, overwriting any previous value.
    pub fn set(&mut self, ctx: IoCtx, value: T) {
        match Self::dense_index(ctx) {
            Some(i) => {
                if self.dense.len() <= i {
                    self.dense.resize_with(i + 1, || None);
                }
                self.dense[i] = Some(value);
            }
            None => match self.spill.iter_mut().find(|(c, _)| *c == ctx) {
                Some((_, v)) => *v = value,
                None => self.spill.push((ctx, value)),
            },
        }
    }

    /// The value at `ctx`, inserting `T::default()` first if absent.
    pub fn get_or_insert_default(&mut self, ctx: IoCtx) -> &mut T
    where
        T: Default,
    {
        match Self::dense_index(ctx) {
            Some(i) => {
                if self.dense.len() <= i {
                    self.dense.resize_with(i + 1, || None);
                }
                self.dense[i].get_or_insert_with(T::default)
            }
            None => {
                if let Some(pos) = self.spill.iter().position(|(c, _)| *c == ctx) {
                    &mut self.spill[pos].1
                } else {
                    self.spill.push((ctx, T::default()));
                    let last = self.spill.len() - 1;
                    &mut self.spill[last].1
                }
            }
        }
    }

    /// Mutable iteration over every stored value: dense slots in id order,
    /// then spill entries in insertion order. Deterministic by
    /// construction — no hasher involved.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.dense
            .iter_mut()
            .filter_map(Option::as_mut)
            .chain(self.spill.iter_mut().map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SENTINEL: IoCtx = IoCtx(u32::MAX);

    #[test]
    fn dense_and_spill_roundtrip() {
        let mut m: CtxMap<u64> = CtxMap::new();
        assert!(m.get(IoCtx(3)).is_none());
        m.set(IoCtx(3), 30);
        m.set(SENTINEL, 99);
        assert_eq!(m.get(IoCtx(3)), Some(&30));
        assert_eq!(m.get(SENTINEL), Some(&99));
        assert!(m.get(IoCtx(4)).is_none());
        *m.get_mut(SENTINEL).expect("present") = 100;
        assert_eq!(m.get(SENTINEL), Some(&100));
        m.set(SENTINEL, 7);
        assert_eq!(m.get(SENTINEL), Some(&7), "set overwrites in spill");
    }

    #[test]
    fn get_or_insert_default_creates_once() {
        let mut m: CtxMap<Vec<u32>> = CtxMap::new();
        m.get_or_insert_default(IoCtx(2)).push(1);
        m.get_or_insert_default(IoCtx(2)).push(2);
        m.get_or_insert_default(SENTINEL).push(9);
        assert_eq!(m.get(IoCtx(2)), Some(&vec![1, 2]));
        assert_eq!(m.get(SENTINEL), Some(&vec![9]));
    }

    #[test]
    fn values_mut_visits_dense_in_id_order_then_spill() {
        let mut m: CtxMap<u32> = CtxMap::new();
        // Insert out of id order plus a sparse id; iteration must be
        // id-order for dense, insertion-order for spill.
        m.set(IoCtx(5), 5);
        m.set(IoCtx(1), 1);
        m.set(SENTINEL, 77);
        m.set(IoCtx(3), 3);
        let seen: Vec<u32> = m.values_mut().map(|v| *v).collect();
        assert_eq!(seen, vec![1, 3, 5, 77]);
    }
}
