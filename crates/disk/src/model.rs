//! Mechanical hard-disk service-time model.
//!
//! The paper's entire premise rests on one physical fact: a disk serving
//! sorted, mostly-sequential requests is one to two orders of magnitude
//! faster than the same disk serving small random requests. We model this
//! with the classic three-component service time:
//!
//! * **seek**: zero for sequential access (head already there), otherwise
//!   `base + k·√distance` capped at the full-stroke time — the standard
//!   square-root seek curve used by DiskSim and most analytic models;
//! * **rotation**: half a revolution on average after any repositioning;
//! * **transfer**: bytes ÷ media rate.
//!
//! Defaults are calibrated to a 7200-RPM SATA drive of the paper's era
//! (HP MM0500FAMYT-class): ~130 MB/s streaming, ~8.5 ms average seek,
//! which yields ~0.45 MB/s on random 4 KB reads — the >10× gap §I cites.

use dualpar_sim::{SimDuration, NANOS_PER_MILLI};
use serde::{Deserialize, Serialize};

/// Logical block (sector) number on a disk. Sectors are 512 bytes.
pub type Lbn = u64;

/// Bytes per disk sector.
pub const SECTOR_BYTES: u64 = 512;

/// Convert a byte count to sectors, rounding up.
#[inline]
pub fn bytes_to_sectors(bytes: u64) -> u64 {
    bytes.div_ceil(SECTOR_BYTES)
}

/// Static parameters of the mechanical model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskParams {
    /// Total addressable sectors.
    pub capacity_sectors: u64,
    /// Media transfer rate, bytes per second.
    pub transfer_bytes_per_sec: u64,
    /// Shortest possible repositioning (track-to-track), nanoseconds.
    pub seek_base_ns: u64,
    /// Seek curve coefficient: ns per √sector of seek distance.
    pub seek_coef_ns: f64,
    /// Full-stroke seek cap, nanoseconds.
    pub seek_max_ns: u64,
    /// Average rotational latency (half a revolution), nanoseconds.
    pub rotational_ns: u64,
    /// Fixed per-request controller/command overhead, nanoseconds.
    pub overhead_ns: u64,
    /// Zoned-bit-recording factor: the innermost track's media rate as a
    /// fraction of `transfer_bytes_per_sec` (outermost). 1.0 disables
    /// zoning. Real 3.5" drives are ~0.5.
    pub inner_rate_fraction: f64,
}

impl DiskParams {
    /// A 7200-RPM SATA drive of roughly the paper's vintage.
    ///
    /// 300 GB capacity, 130 MB/s streaming, 4.17 ms average rotational
    /// latency (7200 RPM), ~8.5 ms average seek.
    pub fn hdd_7200rpm() -> Self {
        let capacity_sectors = (300u64 << 30) / SECTOR_BYTES;
        // Calibrate the √-curve so a third-of-stroke seek costs ~8.5 ms.
        let third = (capacity_sectors / 3) as f64;
        let base = 300_000u64; // 0.3 ms track-to-track
        let coef = (8_500_000.0 - base as f64) / third.sqrt();
        DiskParams {
            capacity_sectors,
            transfer_bytes_per_sec: 130_000_000,
            seek_base_ns: base,
            seek_coef_ns: coef,
            seek_max_ns: 16 * NANOS_PER_MILLI,
            rotational_ns: 4_170_000,
            overhead_ns: 50_000, // 50 µs command overhead
            inner_rate_fraction: 1.0,
        }
    }

    /// Seek time for a head movement of `distance` sectors.
    #[inline]
    pub fn seek_time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let t = self.seek_base_ns as f64 + self.seek_coef_ns * (distance as f64).sqrt();
        SimDuration((t as u64).min(self.seek_max_ns))
    }

    /// Pure media transfer time for `sectors` at the outermost zone.
    #[inline]
    pub fn transfer_time(&self, sectors: u64) -> SimDuration {
        SimDuration::for_transfer(sectors.saturating_mul(SECTOR_BYTES), self.transfer_bytes_per_sec)
    }

    /// Media rate at a given LBN under zoned bit recording: outer tracks
    /// (low LBNs) stream at the full rate, the innermost at
    /// `inner_rate_fraction` of it, linearly interpolated in between.
    #[inline]
    pub fn rate_at(&self, lbn: Lbn) -> u64 {
        if self.inner_rate_fraction >= 1.0 {
            return self.transfer_bytes_per_sec;
        }
        let frac = (lbn as f64 / self.capacity_sectors.max(1) as f64).clamp(0.0, 1.0);
        let scale = 1.0 - frac * (1.0 - self.inner_rate_fraction);
        (self.transfer_bytes_per_sec as f64 * scale) as u64
    }

    /// Transfer time for `sectors` starting at `lbn`, honouring zoning.
    #[inline]
    pub fn transfer_time_at(&self, lbn: Lbn, sectors: u64) -> SimDuration {
        SimDuration::for_transfer(sectors.saturating_mul(SECTOR_BYTES), self.rate_at(lbn))
    }

    /// Full service time for a request starting at `lbn` of `sectors`
    /// length, with the head currently at `head`. Returns the (absolute)
    /// seek distance alongside so callers can account `SeekDist`.
    ///
    /// A small *forward* gap can be cheaper to read through (the head
    /// passes over the skipped sectors at media rate) than to seek over —
    /// this is what drive firmware and OS readahead achieve for strided
    /// but nearly-sequential streams; the model takes whichever is faster.
    pub fn service_time(&self, head: Lbn, lbn: Lbn, sectors: u64) -> (u64, SimDuration) {
        let distance = head.abs_diff(lbn);
        let mut t = SimDuration(self.overhead_ns);
        if distance != 0 {
            let reposition = self.seek_time(distance).saturating_add(SimDuration(self.rotational_ns));
            if lbn > head {
                t = t.saturating_add(reposition.min(self.transfer_time_at(head, distance)));
            } else {
                t += reposition;
            }
        }
        t = t.saturating_add(self.transfer_time_at(lbn, sectors));
        (distance, t)
    }

    /// Streaming (fully sequential) throughput in bytes/sec, ignoring
    /// per-request overhead. Useful for calibration assertions.
    pub fn streaming_bytes_per_sec(&self) -> u64 {
        self.transfer_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_has_no_seek() {
        let p = DiskParams::hdd_7200rpm();
        let (dist, t) = p.service_time(1000, 1000, 8);
        assert_eq!(dist, 0);
        // overhead + transfer only: well under a rotational latency.
        assert!(t.nanos() < p.rotational_ns);
    }

    #[test]
    fn random_4k_much_slower_than_sequential() {
        let p = DiskParams::hdd_7200rpm();
        let sectors_4k = bytes_to_sectors(4096);
        // Sequential service of 4 KB:
        let (_, seq) = p.service_time(0, 0, sectors_4k);
        // Random service: a third-of-stroke seek away.
        let (_, rnd) = p.service_time(0, p.capacity_sectors / 3, sectors_4k);
        let ratio = rnd.nanos() as f64 / seq.nanos() as f64;
        assert!(
            ratio > 10.0,
            "paper requires >10x random/sequential gap, got {ratio:.1}"
        );
    }

    #[test]
    fn seek_curve_monotonic_and_capped() {
        let p = DiskParams::hdd_7200rpm();
        let mut last = SimDuration::ZERO;
        for d in [0u64, 1, 100, 10_000, 1_000_000, 100_000_000] {
            let t = p.seek_time(d);
            assert!(t >= last, "seek time must grow with distance");
            last = t;
        }
        assert!(p.seek_time(u64::MAX / 2).nanos() <= p.seek_max_ns);
    }

    #[test]
    fn third_stroke_seek_is_calibrated() {
        let p = DiskParams::hdd_7200rpm();
        let t = p.seek_time(p.capacity_sectors / 3);
        let ms = t.nanos() as f64 / 1e6;
        assert!((ms - 8.5).abs() < 0.1, "expected ~8.5 ms, got {ms:.2} ms");
    }

    #[test]
    fn random_4k_throughput_order_of_magnitude() {
        let p = DiskParams::hdd_7200rpm();
        let sectors = bytes_to_sectors(4096);
        let (_, t) = p.service_time(0, p.capacity_sectors / 3, sectors);
        let mbps = 4096.0 / t.as_secs_f64() / 1e6;
        assert!(
            (0.2..1.5).contains(&mbps),
            "random 4 KB should be sub-MB/s territory, got {mbps:.2} MB/s"
        );
    }

    #[test]
    fn zoning_slows_inner_tracks() {
        let mut p = DiskParams::hdd_7200rpm();
        p.inner_rate_fraction = 0.5;
        assert_eq!(p.rate_at(0), p.transfer_bytes_per_sec);
        let mid = p.rate_at(p.capacity_sectors / 2);
        let inner = p.rate_at(p.capacity_sectors);
        assert!(mid < p.transfer_bytes_per_sec && mid > inner);
        assert!((inner as f64 - p.transfer_bytes_per_sec as f64 * 0.5).abs() < 2.0);
        // Sequential service at the inner edge is ~2x slower.
        let (_, outer_t) = p.service_time(0, 0, 1024);
        let lbn = p.capacity_sectors - 2048;
        let (_, inner_t) = p.service_time(lbn, lbn, 1024);
        let ratio = inner_t.nanos() as f64 / outer_t.nanos() as f64;
        assert!(ratio > 1.6, "expected ~2x, got {ratio:.2}");
    }

    #[test]
    fn zoning_disabled_by_default() {
        let p = DiskParams::hdd_7200rpm();
        assert_eq!(p.rate_at(0), p.rate_at(p.capacity_sectors));
    }

    #[test]
    fn bytes_to_sectors_rounds_up() {
        assert_eq!(bytes_to_sectors(0), 0);
        assert_eq!(bytes_to_sectors(1), 1);
        assert_eq!(bytes_to_sectors(512), 1);
        assert_eq!(bytes_to_sectors(513), 2);
        assert_eq!(bytes_to_sectors(65536), 128);
    }
}
