//! NOOP, SSTF and SCAN schedulers.

use super::{Decision, Scheduler, DEFAULT_MAX_MERGE_SECTORS};
use crate::model::Lbn;
use crate::request::{DiskRequest, IoKind};
use dualpar_sim::SimTime;
use std::collections::VecDeque;

/// FIFO with back-merging of contiguous requests — Linux `noop`.
#[derive(Debug, Default)]
pub struct NoopScheduler {
    queue: VecDeque<DiskRequest>,
    max_merge: u64,
}

impl NoopScheduler {
    /// Build a NOOP instance.
    pub fn new() -> Self {
        NoopScheduler {
            queue: VecDeque::new(),
            max_merge: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

impl Scheduler for NoopScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        if let Some(tail) = self.queue.back_mut() {
            if tail.can_back_merge(&req, self.max_merge) {
                tail.back_merge(req);
                return;
            }
        }
        self.queue.push_back(req);
    }

    fn decide(&mut self, _now: SimTime, _head: Lbn) -> Decision {
        match self.queue.pop_front() {
            Some(r) => Decision::Dispatch(r),
            None => Decision::Empty,
        }
    }

    fn absorb_contiguous(&mut self, end: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.lbn == end && r.kind == kind)?;
        self.queue.remove(idx)
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.end() == start && r.kind == kind)?;
        self.queue.remove(idx)
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "noop"
    }
}

/// Shortest-seek-time-first: greedy nearest request to the head. Maximises
/// short-term efficiency but can starve distant requests — included for the
/// scheduler ablation.
#[derive(Debug, Default)]
pub struct SstfScheduler {
    queue: Vec<DiskRequest>,
    max_merge: u64,
}

impl SstfScheduler {
    /// Build an SSTF instance.
    pub fn new() -> Self {
        SstfScheduler {
            queue: Vec::new(),
            max_merge: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

impl Scheduler for SstfScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        // Try a back merge against any queued request ending at req.lbn.
        for q in &mut self.queue {
            if q.can_back_merge(&req, self.max_merge) {
                q.back_merge(req);
                return;
            }
        }
        self.queue.push(req);
    }

    fn decide(&mut self, _now: SimTime, head: Lbn) -> Decision {
        if self.queue.is_empty() {
            return Decision::Empty;
        }
        let (idx, _) = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(i, r)| (r.lbn.abs_diff(head), r.lbn, *i))
            .expect("non-empty");
        Decision::Dispatch(self.queue.swap_remove(idx))
    }


    fn absorb_contiguous(&mut self, end: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.lbn == end && r.kind == kind)?;
        Some(self.queue.swap_remove(idx))
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.end() == start && r.kind == kind)?;
        Some(self.queue.swap_remove(idx))
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "sstf"
    }
}

/// Circular SCAN (elevator): sweep upward from the head, wrapping to the
/// lowest queued LBN when the top is reached.
#[derive(Debug, Default)]
pub struct ScanScheduler {
    queue: Vec<DiskRequest>,
    max_merge: u64,
}

impl ScanScheduler {
    /// Build a SCAN instance.
    pub fn new() -> Self {
        ScanScheduler {
            queue: Vec::new(),
            max_merge: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

impl Scheduler for ScanScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        for q in &mut self.queue {
            if q.can_back_merge(&req, self.max_merge) {
                q.back_merge(req);
                return;
            }
        }
        self.queue.push(req);
    }

    fn decide(&mut self, _now: SimTime, head: Lbn) -> Decision {
        if self.queue.is_empty() {
            return Decision::Empty;
        }
        // Smallest LBN at or above the head, else the global smallest.
        let pick = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, r)| r.lbn >= head)
            .min_by_key(|(i, r)| (r.lbn, *i))
            .or_else(|| self.queue.iter().enumerate().min_by_key(|(i, r)| (r.lbn, *i)))
            .map(|(i, _)| i)
            .expect("non-empty");
        Decision::Dispatch(self.queue.swap_remove(pick))
    }


    fn absorb_contiguous(&mut self, end: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.lbn == end && r.kind == kind)?;
        Some(self.queue.swap_remove(idx))
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .queue
            .iter()
            .position(|r| r.end() == start && r.kind == kind)?;
        Some(self.queue.swap_remove(idx))
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoCtx, IoKind};

    fn req(id: u64, lbn: Lbn, sectors: u64) -> DiskRequest {
        DiskRequest::new(id, IoCtx(0), IoKind::Read, lbn, sectors, SimTime::ZERO)
    }

    fn drain(s: &mut dyn Scheduler, head: Lbn) -> Vec<Lbn> {
        let mut out = Vec::new();
        let mut h = head;
        loop {
            match s.decide(SimTime::ZERO, h) {
                Decision::Dispatch(r) => {
                    h = r.end();
                    out.push(r.lbn);
                }
                Decision::Empty => break,
                Decision::IdleUntil(_) => unreachable!("simple schedulers never idle"),
            }
        }
        out
    }

    #[test]
    fn noop_preserves_fifo() {
        let mut s = NoopScheduler::new();
        for (id, lbn) in [(1, 500), (2, 100), (3, 900)] {
            s.enqueue(req(id, lbn, 8));
        }
        assert_eq!(drain(&mut s, 0), vec![500, 100, 900]);
    }

    #[test]
    fn noop_back_merges_contiguous_tail() {
        let mut s = NoopScheduler::new();
        s.enqueue(req(1, 100, 8));
        s.enqueue(req(2, 108, 8));
        assert_eq!(s.queued(), 1);
        match s.decide(SimTime::ZERO, 0) {
            Decision::Dispatch(r) => {
                assert_eq!(r.sectors, 16);
                assert_eq!(r.merged, vec![1, 2]);
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
    }

    #[test]
    fn sstf_picks_nearest() {
        let mut s = SstfScheduler::new();
        s.enqueue(req(1, 1000, 8));
        s.enqueue(req(2, 90, 8));
        s.enqueue(req(3, 200, 8));
        // head at 100: nearest is 90, then (head=98) 200, then 1000
        assert_eq!(drain(&mut s, 100), vec![90, 200, 1000]);
    }

    #[test]
    fn scan_sweeps_upward_then_wraps() {
        let mut s = ScanScheduler::new();
        for (id, lbn) in [(1, 50), (2, 500), (3, 300), (4, 10)] {
            s.enqueue(req(id, lbn, 8));
        }
        // head at 200: services 300, 500, wraps to 10, 50.
        assert_eq!(drain(&mut s, 200), vec![300, 500, 10, 50]);
    }

    #[test]
    fn scan_from_zero_is_fully_sorted() {
        let mut s = ScanScheduler::new();
        for (id, lbn) in [(1, 700), (2, 100), (3, 400), (4, 900), (5, 250)] {
            s.enqueue(req(id, lbn, 8));
        }
        let order = drain(&mut s, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn sstf_merges_mid_queue() {
        let mut s = SstfScheduler::new();
        s.enqueue(req(1, 100, 8));
        s.enqueue(req(2, 5000, 8));
        s.enqueue(req(3, 108, 8)); // merges into request 1
        assert_eq!(s.queued(), 2);
    }
}
