//! The anticipatory scheduler (Iyer & Druschel, SOSP '01 — the paper's
//! reference [17], and Linux's `as` elevator of the same era).
//!
//! A seek-minimising elevator with one twist: after serving a request, if
//! the *same context* is likely to issue a nearby request imminently, the
//! disk idles briefly instead of moving the head away — defeating the
//! "deceptive idleness" of synchronous I/O. Unlike CFQ there are no
//! per-context queues or time slices; anticipation is the only
//! context-aware mechanism.

use super::{Decision, Scheduler, DEFAULT_MAX_MERGE_SECTORS};
use crate::ctxmap::CtxMap;
use crate::model::Lbn;
use crate::request::{DiskRequest, IoCtx, IoKind};
use dualpar_sim::{SimDuration, SimTime};

/// Anticipatory-scheduler tunables.
#[derive(Debug, Clone)]
pub struct AnticipatoryConfig {
    /// Maximum anticipation wait (Linux `antic_expire` default 6 ms).
    pub antic_window: SimDuration,
    /// Cap on merged request size.
    pub max_merge_sectors: u64,
}

impl Default for AnticipatoryConfig {
    fn default() -> Self {
        AnticipatoryConfig {
            antic_window: SimDuration::from_millis(6),
            max_merge_sectors: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

/// The anticipatory scheduler state.
#[derive(Debug)]
pub struct AnticipatoryScheduler {
    cfg: AnticipatoryConfig,
    /// Global LBN-sorted queue.
    sorted: Vec<DiskRequest>,
    /// Context whose follow-up we are (or would be) anticipating.
    last_ctx: Option<IoCtx>,
    /// Armed anticipation deadline.
    antic_until: Option<SimTime>,
    /// Per-context verdict: did the last armed anticipation pay off?
    /// Dense-indexed by context id ([`CtxMap`]) — the decide hot path
    /// reads this on every empty-queue check.
    antic_ok: CtxMap<bool>,
}

impl AnticipatoryScheduler {
    /// Build an instance.
    pub fn new(cfg: AnticipatoryConfig) -> Self {
        AnticipatoryScheduler {
            cfg,
            sorted: Vec::new(),
            last_ctx: None,
            antic_until: None,
            antic_ok: CtxMap::new(),
        }
    }

    fn pop_elevator(&mut self, head: Lbn) -> DiskRequest {
        let idx = self.sorted.partition_point(|r| r.lbn < head);
        let idx = if idx == self.sorted.len() { 0 } else { idx };
        // The shifting `remove` is load-bearing: `partition_point` here and
        // in `absorb_contiguous` requires `sorted` to stay ordered by
        // `(lbn, id)`, so a `swap_remove` would corrupt C-SCAN selection
        // and merge lookups. At realistic depths (tens of requests) the
        // shift is a short memmove; the `dispatch` criterion group in
        // `crates/bench/benches/hot_path.rs` guards against it regressing.
        self.sorted.remove(idx)
    }
}

impl Scheduler for AnticipatoryScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        // Back-merge against any queued request.
        for q in &mut self.sorted {
            if q.can_back_merge(&req, self.cfg.max_merge_sectors) {
                q.back_merge(req);
                return;
            }
        }
        // An arrival from the anticipated context rewards the wait.
        if self.antic_until.is_some() && self.last_ctx == Some(req.ctx) {
            self.antic_ok.set(req.ctx, true);
            self.antic_until = None;
        }
        let pos = self
            .sorted
            .partition_point(|r| (r.lbn, r.id) < (req.lbn, req.id));
        self.sorted.insert(pos, req);
    }

    fn decide(&mut self, now: SimTime, head: Lbn) -> Decision {
        // Anticipation: the last context's queue-relevant request may still
        // be on its way.
        if let Some(ctx) = self.last_ctx {
            let has_from_ctx = self.sorted.iter().any(|r| r.ctx == ctx);
            if !has_from_ctx {
                let ok = self.antic_ok.get(ctx).copied().unwrap_or(true);
                match self.antic_until {
                    None if ok => {
                        let until = now.saturating_add(self.cfg.antic_window);
                        self.antic_until = Some(until);
                        return Decision::IdleUntil(until);
                    }
                    Some(until) if now < until => return Decision::IdleUntil(until),
                    Some(_) => {
                        // Expired unrewarded.
                        self.antic_ok.set(ctx, false);
                        self.antic_until = None;
                        self.last_ctx = None;
                    }
                    None => {}
                }
            } else {
                self.antic_until = None;
            }
        }
        if self.sorted.is_empty() {
            self.last_ctx = None;
            return Decision::Empty;
        }
        let req = self.pop_elevator(head);
        self.last_ctx = Some(req.ctx);
        Decision::Dispatch(req)
    }

    fn absorb_contiguous(&mut self, end: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .sorted
            .iter()
            .position(|r| r.lbn == end && r.kind == kind)?;
        Some(self.sorted.remove(idx))
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .sorted
            .iter()
            .position(|r| r.end() == start && r.kind == kind)?;
        Some(self.sorted.remove(idx))
    }

    fn queued(&self) -> usize {
        self.sorted.len()
    }

    fn name(&self) -> &'static str {
        "anticipatory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, ctx: u32, lbn: Lbn) -> DiskRequest {
        DiskRequest::new(id, IoCtx(ctx), IoKind::Read, lbn, 8, SimTime::ZERO)
    }

    #[test]
    fn serves_in_elevator_order() {
        let mut s = AnticipatoryScheduler::new(AnticipatoryConfig::default());
        for (id, lbn) in [(1, 9000), (2, 1000), (3, 5000)] {
            s.enqueue(req(id, 1, lbn));
        }
        let mut order = Vec::new();
        let mut head = 0;
        let mut now = SimTime::ZERO;
        loop {
            match s.decide(now, head) {
                Decision::Dispatch(r) => {
                    head = r.end();
                    order.push(r.lbn);
                }
                Decision::IdleUntil(t) => now = t,
                Decision::Empty => break,
            }
        }
        assert_eq!(order, vec![1000, 5000, 9000]);
    }

    #[test]
    fn anticipates_last_context_over_other_work() {
        let mut s = AnticipatoryScheduler::new(AnticipatoryConfig::default());
        s.enqueue(req(1, 1, 100));
        let _ = s.decide(SimTime::ZERO, 0); // serves ctx 1
        s.enqueue(req(2, 2, 900_000)); // far-away work from someone else
        // AS idles, hoping ctx 1 comes back with something nearby.
        match s.decide(SimTime::from_millis(1), 108) {
            Decision::IdleUntil(t) => assert_eq!(t, SimTime::from_millis(7)),
            other => panic!("expected idle, got {other:?}"),
        }
        // It does: the nearby request is serviced before the far one.
        s.enqueue(req(3, 1, 108));
        match s.decide(SimTime::from_millis(2), 108) {
            Decision::Dispatch(r) => assert_eq!(r.id, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_anticipation_disables_itself() {
        let mut s = AnticipatoryScheduler::new(AnticipatoryConfig::default());
        s.enqueue(req(1, 1, 100));
        let _ = s.decide(SimTime::ZERO, 0);
        s.enqueue(req(2, 2, 900_000));
        let until = match s.decide(SimTime::from_millis(1), 108) {
            Decision::IdleUntil(t) => t,
            other => panic!("{other:?}"),
        };
        // ctx 1's window expires unrewarded; the far request is served.
        match s.decide(until, 108) {
            Decision::Dispatch(r) => assert_eq!(r.id, 2),
            other => panic!("{other:?}"),
        }
        // ctx 2 gets (and wastes) its own anticipation window.
        s.enqueue(req(3, 1, 200));
        let until2 = match s.decide(until, 108) {
            Decision::IdleUntil(t) => t,
            other => panic!("expected idle for ctx2, got {other:?}"),
        };
        match s.decide(until2, 108) {
            Decision::Dispatch(r) => assert_eq!(r.id, 3),
            other => panic!("{other:?}"),
        }
        // ctx 1 burned its credit earlier: after serving it, no idle.
        assert_eq!(s.decide(until2, 208), Decision::Empty);
    }

    #[test]
    fn empty_is_empty() {
        let mut s = AnticipatoryScheduler::new(AnticipatoryConfig::default());
        assert_eq!(s.decide(SimTime::ZERO, 0), Decision::Empty);
    }
}
