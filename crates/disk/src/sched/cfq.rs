//! A behavioural model of Linux CFQ (Completely Fair Queuing), the paper's
//! disk scheduler.
//!
//! The properties that matter for reproducing the paper:
//!
//! 1. **Per-context queues served round-robin in time slices.** Requests from
//!    different processes (or programs) are *not* globally sorted; the head
//!    moves to wherever the next context's data lives when a slice expires.
//!    With two `mpi-io-test` instances on one disk this is exactly the
//!    long-distance head thrashing of Fig. 6(a).
//! 2. **Sorting only within a context's current queue.** CFQ can create a
//!    good order only among the requests it can *see*. A trickle of prefetch
//!    requests (Strategy 2) gives it one or two outstanding requests at a
//!    time — service order ≈ arrival order (Fig. 1c). A pre-sorted batch
//!    from DualPar's CRM arrives together and sweeps cleanly (Fig. 1d).
//! 3. **Idle anticipation** (`slice_idle`): after serving a context's last
//!    request CFQ keeps the disk idle briefly, expecting another nearby
//!    request from the same context — good for per-process sequential
//!    streams, wasted time for interleaved ones.

use super::{Decision, Scheduler, DEFAULT_MAX_MERGE_SECTORS};
use crate::ctxmap::CtxMap;
use crate::model::Lbn;
use crate::request::{DiskRequest, IoCtx};
use dualpar_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// CFQ tunables (Linux defaults).
#[derive(Debug, Clone)]
pub struct CfqConfig {
    /// Length of a context's service slice — Linux `slice_sync` default.
    pub slice: SimDuration,
    /// Anticipatory idle window after a context's queue empties —
    /// Linux `slice_idle` default.
    pub slice_idle: SimDuration,
    /// Cap on merged request size.
    pub max_merge_sectors: u64,
}

impl Default for CfqConfig {
    fn default() -> Self {
        CfqConfig {
            slice: SimDuration::from_millis(100),
            slice_idle: SimDuration::from_millis(8),
            max_merge_sectors: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

/// One context's sorted queue.
#[derive(Debug)]
struct CtxQueue {
    /// Requests sorted by LBN. Small queues dominate, so a sorted Vec beats
    /// a tree in practice.
    sorted: Vec<DiskRequest>,
    /// Whether anticipation is worth arming for this context. Real CFQ
    /// tracks per-queue think time and stops idling for queues whose next
    /// request does not arrive promptly; we keep the boolean distillation:
    /// an idle window that expires unrewarded disables idling for the
    /// context until an armed idle is rewarded again.
    idle_ok: bool,
}

impl Default for CtxQueue {
    fn default() -> Self {
        CtxQueue {
            sorted: Vec::new(),
            idle_ok: true,
        }
    }
}

impl CtxQueue {
    fn insert(&mut self, req: DiskRequest, max_merge: u64) {
        // Attempt a back merge with the request ending at req.lbn.
        if let Some(prev) = self
            .sorted
            .iter_mut()
            .find(|r| r.can_back_merge(&req, max_merge))
        {
            prev.back_merge(req);
            return;
        }
        let pos = self
            .sorted
            .partition_point(|r| (r.lbn, r.id) < (req.lbn, req.id));
        self.sorted.insert(pos, req);
    }

    /// Next request in circular-SCAN order from `head`.
    fn pop_elevator(&mut self, head: Lbn) -> Option<DiskRequest> {
        if self.sorted.is_empty() {
            return None;
        }
        let idx = self.sorted.partition_point(|r| r.lbn < head);
        let idx = if idx == self.sorted.len() { 0 } else { idx };
        // Must be the shifting `remove`, not `swap_remove`: the
        // `partition_point` C-SCAN pick above and the merge probes in
        // `absorb_contiguous` both assume `sorted` stays ordered by
        // `(lbn, id)`. Per-context queues are short (slice quantum bounds
        // them), so the shift is a small memmove; the `dispatch` criterion
        // group in `crates/bench/benches/hot_path.rs` is the regression
        // guard.
        Some(self.sorted.remove(idx))
    }

    fn len(&self) -> usize {
        self.sorted.len()
    }
}

/// The CFQ scheduler state.
#[derive(Debug)]
pub struct CfqScheduler {
    cfg: CfqConfig,
    /// Per-context queues, dense-indexed by context id ([`CtxMap`]): the
    /// enqueue/decide hot paths do an array load instead of a hash probe,
    /// and the merge-absorption scans iterate in context-id order — a
    /// deterministic-by-construction order, unlike the retired hash map's
    /// table order.
    queues: CtxMap<CtxQueue>,
    /// Round-robin order of contexts that have (or recently had) requests.
    rr: VecDeque<IoCtx>,
    /// The context currently holding the slice.
    active: Option<IoCtx>,
    slice_end: SimTime,
    /// Deadline of the current anticipation window, if idling.
    idle_until: Option<SimTime>,
    total_queued: usize,
}

impl CfqScheduler {
    /// Build a CFQ instance.
    pub fn new(cfg: CfqConfig) -> Self {
        CfqScheduler {
            cfg,
            queues: CtxMap::new(),
            rr: VecDeque::new(),
            active: None,
            slice_end: SimTime::ZERO,
            idle_until: None,
            total_queued: 0,
        }
    }

    fn queue_len(&self, ctx: IoCtx) -> usize {
        self.queues.get(ctx).map_or(0, CtxQueue::len)
    }

    /// Select the next context with queued requests, starting a new slice.
    fn switch_context(&mut self, now: SimTime) -> Option<IoCtx> {
        self.idle_until = None;
        let rounds = self.rr.len();
        for _ in 0..rounds {
            let ctx = self.rr.pop_front().expect("rr nonempty within rounds");
            if self.queue_len(ctx) > 0 {
                self.rr.push_back(ctx);
                self.active = Some(ctx);
                self.slice_end = now.saturating_add(self.cfg.slice);
                return Some(ctx);
            }
            // Context idle: drop it from the RR ring; it re-registers on
            // its next request. The queue entry (and its anticipation
            // verdict) is kept.
        }
        self.active = None;
        None
    }
}

impl Scheduler for CfqScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        let ctx = req.ctx;
        let before;
        {
            let q = self.queues.get_or_insert_default(ctx);
            before = q.len();
            q.insert(req, self.cfg.max_merge_sectors);
            let after = q.len();
            if after > before {
                self.total_queued += 1;
            }
        }
        if before == 0 && !self.rr.contains(&ctx) {
            self.rr.push_back(ctx);
        }
        // A new request for the anticipated context cancels the idle wait —
        // the caller re-decides on enqueue, so just clear the deadline.
        // An armed idle that gets its request is a success: anticipation
        // stays enabled for this context.
        if self.active == Some(ctx) {
            if self.idle_until.is_some() {
                if let Some(q) = self.queues.get_mut(ctx) {
                    q.idle_ok = true;
                }
            }
            self.idle_until = None;
        }
    }

    fn decide(&mut self, now: SimTime, head: Lbn) -> Decision {
        // Serve within the active slice while it lasts. Note anticipation
        // must run even when nothing at all is queued — that is the point
        // of `slice_idle`.
        if let Some(ctx) = self.active {
            if now < self.slice_end {
                if let Some(q) = self.queues.get_mut(ctx) {
                    if let Some(r) = q.pop_elevator(head) {
                        self.total_queued -= 1;
                        self.idle_until = None;
                        return Decision::Dispatch(r);
                    }
                }
                // Active context has nothing queued: anticipate briefly,
                // unless anticipation last failed for this context.
                let idle_ok = self.queues.get(ctx).is_none_or(|q| q.idle_ok);
                match self.idle_until {
                    None if idle_ok => {
                        let until = now.saturating_add(self.cfg.slice_idle).min_of(self.slice_end);
                        if until > now {
                            self.idle_until = Some(until);
                            return Decision::IdleUntil(until);
                        }
                    }
                    Some(until) if now < until => {
                        return Decision::IdleUntil(until);
                    }
                    Some(_) => {
                        // The idle window expired unrewarded: disable
                        // anticipation for this context until it earns it
                        // back.
                        if let Some(q) = self.queues.get_mut(ctx) {
                            q.idle_ok = false;
                        }
                    }
                    _ => {}
                }
            }
        }
        if self.total_queued == 0 {
            self.active = None;
            self.idle_until = None;
            return Decision::Empty;
        }
        // Slice expired or idle window elapsed: move to the next context.
        match self.switch_context(now) {
            Some(ctx) => {
                let q = self.queues.get_mut(ctx).expect("selected ctx has queue");
                let r = q.pop_elevator(head).expect("selected ctx nonempty");
                self.total_queued -= 1;
                Decision::Dispatch(r)
            }
            None => Decision::Empty,
        }
    }

    fn absorb_contiguous(&mut self, end: Lbn, kind: crate::request::IoKind) -> Option<DiskRequest> {
        // Context-id iteration order: when several contexts hold a
        // mergeable request at the same LBN, the lowest context id wins —
        // a documented rule, where the hash map's table order was
        // arbitrary (though seed-stable).
        for q in self.queues.values_mut() {
            let idx = q.sorted.partition_point(|r| r.lbn < end);
            if let Some(r) = q.sorted.get(idx) {
                if r.lbn == end && r.kind == kind {
                    self.total_queued -= 1;
                    return Some(q.sorted.remove(idx));
                }
            }
        }
        None
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: crate::request::IoKind) -> Option<DiskRequest> {
        for q in self.queues.values_mut() {
            if let Some(idx) = q
                .sorted
                .iter()
                .position(|r| r.end() == start && r.kind == kind)
            {
                self.total_queued -= 1;
                return Some(q.sorted.remove(idx));
            }
        }
        None
    }

    fn queued(&self) -> usize {
        self.total_queued
    }

    fn name(&self) -> &'static str {
        "cfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoKind;

    fn req(id: u64, ctx: u32, lbn: Lbn, t: SimTime) -> DiskRequest {
        DiskRequest::new(id, IoCtx(ctx), IoKind::Read, lbn, 8, t)
    }

    #[test]
    fn single_context_served_in_elevator_order() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        for (id, lbn) in [(1, 900), (2, 100), (3, 500)] {
            s.enqueue(req(id, 1, lbn, SimTime::ZERO));
        }
        let mut order = Vec::new();
        let mut head = 0;
        while let Decision::Dispatch(r) = s.decide(SimTime::ZERO, head) {
            head = r.end();
            order.push(r.lbn);
        }
        assert_eq!(order, vec![100, 500, 900]);
    }

    #[test]
    fn anticipation_idles_after_context_drains() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        s.enqueue(req(1, 1, 100, SimTime::ZERO));
        match s.decide(SimTime::ZERO, 0) {
            Decision::Dispatch(r) => assert_eq!(r.id, 1),
            other => panic!("{other:?}"),
        }
        // Context 1's queue is now empty but its slice is live: CFQ idles.
        match s.decide(SimTime::from_millis(1), 108) {
            Decision::IdleUntil(t) => assert_eq!(t, SimTime::from_millis(9)),
            other => panic!("expected idle, got {other:?}"),
        }
        // Queue stays empty overall though — with no other context, after the
        // idle window it reports Empty.
        match s.decide(SimTime::from_millis(9), 108) {
            Decision::Empty => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn new_request_from_active_context_breaks_idle() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        s.enqueue(req(1, 1, 100, SimTime::ZERO));
        let _ = s.decide(SimTime::ZERO, 0);
        let _ = s.decide(SimTime::from_millis(1), 108); // starts idling
        s.enqueue(req(2, 1, 108, SimTime::from_millis(2)));
        match s.decide(SimTime::from_millis(2), 108) {
            Decision::Dispatch(r) => assert_eq!(r.id, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slice_expiry_rotates_contexts() {
        let cfg = CfqConfig {
            slice: SimDuration::from_millis(10),
            slice_idle: SimDuration::from_millis(2),
            ..CfqConfig::default()
        };
        let mut s = CfqScheduler::new(cfg);
        // Two contexts, each with requests in a distinct disk region.
        for i in 0..3 {
            s.enqueue(req(i, 1, 1000 + i * 1000, SimTime::ZERO));
            s.enqueue(req(100 + i, 2, 900_000 + i * 1000, SimTime::ZERO));
        }
        // First slice: context 1.
        let mut served_ctx1 = 0;
        let mut now = SimTime::ZERO;
        let mut head = 0;
        loop {
            match s.decide(now, head) {
                Decision::Dispatch(r) => {
                    if r.ctx == IoCtx(1) {
                        served_ctx1 += 1;
                        head = r.end();
                    } else {
                        // Rotation happened.
                        break;
                    }
                }
                Decision::IdleUntil(t) => now = t,
                Decision::Empty => break,
            }
            // Advance time past the slice midway to force expiry.
            if served_ctx1 == 2 {
                now = SimTime::from_millis(11);
            }
        }
        assert_eq!(served_ctx1, 2, "slice expiry should preempt context 1");
    }

    #[test]
    fn round_robin_alternates_between_contexts() {
        let cfg = CfqConfig {
            slice: SimDuration::from_millis(10),
            slice_idle: SimDuration::ZERO,
            ..CfqConfig::default()
        };
        let mut s = CfqScheduler::new(cfg);
        for i in 0..2u64 {
            s.enqueue(req(i, 1, 100 + i * 1000, SimTime::ZERO));
            s.enqueue(req(10 + i, 2, 50_000 + i * 1000, SimTime::ZERO));
        }
        let mut ctx_sequence = Vec::new();
        let mut now = SimTime::ZERO;
        while let Decision::Dispatch(r) = {
            // Each service takes 20 ms (longer than the slice), so every
            // dispatch exhausts the slice and rotation occurs.
            let d = s.decide(now, 0);
            now += SimDuration::from_millis(20);
            d
        } {
            ctx_sequence.push(r.ctx.0);
        }
        assert_eq!(ctx_sequence, vec![1, 2, 1, 2]);
    }

    #[test]
    fn merges_within_context() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        s.enqueue(req(1, 1, 100, SimTime::ZERO));
        s.enqueue(req(2, 1, 108, SimTime::ZERO));
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn does_not_merge_across_contexts() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        s.enqueue(req(1, 1, 100, SimTime::ZERO));
        s.enqueue(req(2, 2, 108, SimTime::ZERO));
        assert_eq!(s.queued(), 2);
    }

    #[test]
    fn empty_scheduler_reports_empty() {
        let mut s = CfqScheduler::new(CfqConfig::default());
        assert_eq!(s.decide(SimTime::ZERO, 0), Decision::Empty);
        assert!(s.is_empty());
    }
}
