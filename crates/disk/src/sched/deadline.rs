//! The deadline scheduler: one LBN-sorted dispatch sweep, with per-request
//! expiry times that force service of starving requests.

use super::{Decision, Scheduler, DEFAULT_MAX_MERGE_SECTORS};
use crate::model::Lbn;
use crate::request::{DiskRequest, IoKind};
use dualpar_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Deadline-scheduler tunables (Linux defaults).
#[derive(Debug, Clone)]
pub struct DeadlineConfig {
    /// Read expiry — Linux default 500 ms.
    pub read_expire: SimDuration,
    /// Write expiry — Linux default 5 s.
    pub write_expire: SimDuration,
    /// Cap on merged request size.
    pub max_merge_sectors: u64,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            read_expire: SimDuration::from_millis(500),
            write_expire: SimDuration::from_secs(5),
            max_merge_sectors: DEFAULT_MAX_MERGE_SECTORS,
        }
    }
}

/// Simplified mq-deadline: a sorted list for the elevator sweep plus FIFO
/// queues carrying deadlines. When the head-of-FIFO deadline has passed, the
/// sweep jumps to that request; otherwise it continues in ascending LBN.
#[derive(Debug)]
pub struct DeadlineScheduler {
    cfg: DeadlineConfig,
    /// All queued requests, kept sorted by (lbn, insertion order is
    /// irrelevant because lbns of live requests are distinct per merge).
    sorted: Vec<DiskRequest>,
    /// FIFO of (deadline, request id) per direction.
    read_fifo: VecDeque<(SimTime, u64)>,
    write_fifo: VecDeque<(SimTime, u64)>,
}

impl DeadlineScheduler {
    /// Build a deadline instance.
    pub fn new(cfg: DeadlineConfig) -> Self {
        DeadlineScheduler {
            cfg,
            sorted: Vec::new(),
            read_fifo: VecDeque::new(),
            write_fifo: VecDeque::new(),
        }
    }

    fn fifo_for(&mut self, kind: IoKind) -> &mut VecDeque<(SimTime, u64)> {
        match kind {
            IoKind::Read => &mut self.read_fifo,
            IoKind::Write => &mut self.write_fifo,
        }
    }

    fn take_by_id(&mut self, id: u64) -> Option<DiskRequest> {
        let idx = self.sorted.iter().position(|r| r.id == id)?;
        Some(self.sorted.remove(idx))
    }

    /// First expired request id at `now`, if any (reads take priority).
    /// Callers must purge stale FIFO entries first.
    fn expired(&mut self, now: SimTime) -> Option<u64> {
        for fifo in [&mut self.read_fifo, &mut self.write_fifo] {
            if let Some(&(dl, id)) = fifo.front() {
                if dl <= now {
                    fifo.pop_front();
                    return Some(id);
                }
            }
        }
        None
    }

    fn purge_stale_fifo(&mut self) {
        let live: dualpar_sim::FxHashSet<u64> = self.sorted.iter().map(|r| r.id).collect();
        self.read_fifo.retain(|(_, id)| live.contains(id));
        self.write_fifo.retain(|(_, id)| live.contains(id));
    }
}

impl Scheduler for DeadlineScheduler {
    fn enqueue(&mut self, req: DiskRequest) {
        // Back-merge against an existing request; the merged request keeps
        // the *earlier* deadline (its own FIFO entry).
        for q in &mut self.sorted {
            if q.can_back_merge(&req, self.cfg.max_merge_sectors) {
                q.back_merge(req);
                return;
            }
        }
        let expire = match req.kind {
            IoKind::Read => self.cfg.read_expire,
            IoKind::Write => self.cfg.write_expire,
        };
        let deadline = req.arrival.saturating_add(expire);
        let id = req.id;
        let kind = req.kind;
        let pos = self
            .sorted
            .partition_point(|r| (r.lbn, r.id) < (req.lbn, req.id));
        self.sorted.insert(pos, req);
        self.fifo_for(kind).push_back((deadline, id));
    }

    fn decide(&mut self, now: SimTime, head: Lbn) -> Decision {
        if self.sorted.is_empty() {
            return Decision::Empty;
        }
        self.purge_stale_fifo();
        if let Some(id) = self.expired(now) {
            if let Some(r) = self.take_by_id(id) {
                return Decision::Dispatch(r);
            }
        }
        // Elevator: first request at or above head, else wrap to lowest.
        let idx = self
            .sorted
            .partition_point(|r| r.lbn < head)
            .min(self.sorted.len());
        let idx = if idx == self.sorted.len() { 0 } else { idx };
        Decision::Dispatch(self.sorted.remove(idx))
    }

    fn absorb_contiguous(&mut self, end: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self.sorted.iter().position(|r| r.lbn == end && r.kind == kind)?;
        let req = self.sorted.remove(idx);
        // Its FIFO entry is purged lazily by purge_stale_fifo.
        Some(req)
    }

    fn absorb_ending_at(&mut self, start: Lbn, kind: IoKind) -> Option<DiskRequest> {
        let idx = self
            .sorted
            .iter()
            .position(|r| r.end() == start && r.kind == kind)?;
        Some(self.sorted.remove(idx))
    }

    fn queued(&self) -> usize {
        self.sorted.len()
    }

    fn name(&self) -> &'static str {
        "deadline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoCtx;

    fn req_at(id: u64, lbn: Lbn, t: SimTime) -> DiskRequest {
        DiskRequest::new(id, IoCtx(0), IoKind::Read, lbn, 8, t)
    }

    #[test]
    fn sweeps_in_lbn_order_when_no_expiry() {
        let mut s = DeadlineScheduler::new(DeadlineConfig::default());
        for (id, lbn) in [(1, 900), (2, 100), (3, 500)] {
            s.enqueue(req_at(id, lbn, SimTime::ZERO));
        }
        let mut order = Vec::new();
        let mut head = 0;
        while let Decision::Dispatch(r) = s.decide(SimTime::ZERO, head) {
            head = r.end();
            order.push(r.lbn);
        }
        assert_eq!(order, vec![100, 500, 900]);
    }

    #[test]
    fn expired_read_jumps_the_sweep() {
        let mut s = DeadlineScheduler::new(DeadlineConfig::default());
        s.enqueue(req_at(1, 1_000_000, SimTime::ZERO)); // old, far away
        s.enqueue(req_at(2, 10, SimTime::from_millis(600)));
        // At t=600ms the first request (deadline 500ms) has expired, so it is
        // served even though LBN 10 is right at the head.
        match s.decide(SimTime::from_millis(600), 0) {
            Decision::Dispatch(r) => assert_eq!(r.id, 1),
            other => panic!("expected dispatch, got {other:?}"),
        }
    }

    #[test]
    fn writes_expire_later_than_reads() {
        let cfg = DeadlineConfig::default();
        let mut s = DeadlineScheduler::new(cfg);
        let mut w = req_at(1, 1_000_000, SimTime::ZERO);
        w.kind = IoKind::Write;
        s.enqueue(w);
        s.enqueue(req_at(2, 10, SimTime::from_secs(1)));
        // 1 s: write (5 s expiry) is not yet expired — sweep picks LBN 10.
        match s.decide(SimTime::from_secs(1), 0) {
            Decision::Dispatch(r) => assert_eq!(r.id, 2),
            other => panic!("{other:?}"),
        }
        // 6 s: write has expired.
        match s.decide(SimTime::from_secs(6), 0) {
            Decision::Dispatch(r) => assert_eq!(r.id, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wraps_to_lowest_lbn() {
        let mut s = DeadlineScheduler::new(DeadlineConfig::default());
        s.enqueue(req_at(1, 100, SimTime::ZERO));
        match s.decide(SimTime::ZERO, 500) {
            Decision::Dispatch(r) => assert_eq!(r.lbn, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_keeps_single_queue_entry() {
        let mut s = DeadlineScheduler::new(DeadlineConfig::default());
        s.enqueue(req_at(1, 100, SimTime::ZERO));
        s.enqueue(req_at(2, 108, SimTime::ZERO));
        assert_eq!(s.queued(), 1);
        match s.decide(SimTime::ZERO, 0) {
            Decision::Dispatch(r) => assert_eq!(r.merged, vec![1, 2]),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.queued(), 0);
    }
}
