//! Disk I/O schedulers.
//!
//! The scheduler decides the *service order* of queued block requests. The
//! paper's observation is that a scheduler can only exploit locality among
//! the requests it can currently see; all the application-level machinery of
//! DualPar exists to make that visible window large and pre-sorted. To show
//! that effect (and for the `ablation_sched` bench) we implement the Linux
//! schedulers of the era:
//!
//! * [`CfqScheduler`] — the paper's default: per-context queues served
//!   round-robin in time slices, sorted within a context, with idle
//!   anticipation on the active context;
//! * [`NoopScheduler`] — FIFO with back-merging only;
//! * [`DeadlineScheduler`] — one sorted sweep plus per-request expiry;
//! * [`SstfScheduler`] — shortest-seek-time-first (greedy);
//! * [`ScanScheduler`] — the classic elevator.

mod anticipatory;
mod cfq;
mod deadline;
mod simple;

pub use anticipatory::{AnticipatoryConfig, AnticipatoryScheduler};
pub use cfq::{CfqConfig, CfqScheduler};
pub use deadline::{DeadlineConfig, DeadlineScheduler};
pub use simple::{NoopScheduler, ScanScheduler, SstfScheduler};

use crate::model::Lbn;
use crate::request::DiskRequest;
use dualpar_sim::SimTime;

/// What the disk should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Start servicing this request now.
    Dispatch(DiskRequest),
    /// Keep the disk idle until the given time, anticipating more requests
    /// from the active context (CFQ's `slice_idle`). If a request arrives
    /// earlier the caller will ask again and get a `Dispatch`.
    IdleUntil(SimTime),
    /// Nothing queued.
    Empty,
}

/// A pluggable disk scheduler. Single-disk, non-reentrant.
pub trait Scheduler: Send {
    /// Add a request to the queue (may merge it into an existing one).
    fn enqueue(&mut self, req: DiskRequest);

    /// Choose the next action given the current time and head position.
    /// Must be work-conserving except for explicit anticipation: if the
    /// queue is non-empty the result is `Dispatch` or a bounded `IdleUntil`.
    fn decide(&mut self, now: SimTime, head: Lbn) -> Decision;

    /// Remove and return a queued request that starts exactly at `end`
    /// with the given kind, regardless of issuing context — the block
    /// layer's dispatch-time elevator merge. The disk calls this in a loop
    /// after each dispatch to chain contiguous requests into one media
    /// access (subject to the merge-size cap it enforces).
    fn absorb_contiguous(&mut self, end: Lbn, kind: crate::request::IoKind)
        -> Option<DiskRequest>;

    /// Remove and return a queued request that *ends* exactly at `start`
    /// with the given kind — the front-merge counterpart of
    /// [`Scheduler::absorb_contiguous`].
    fn absorb_ending_at(&mut self, start: Lbn, kind: crate::request::IoKind)
        -> Option<DiskRequest>;

    /// Number of queued (not yet dispatched) requests, counting merged
    /// requests once.
    fn queued(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.queued() == 0
    }

    /// Short scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// Default cap on merged request size: 1024 sectors = 512 KB, matching the
/// Linux block layer's historical `max_sectors_kb` default.
pub const DEFAULT_MAX_MERGE_SECTORS: u64 = 1024;

/// Which scheduler to instantiate — convenient for configs and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Completely Fair Queuing (the paper's default).
    Cfq,
    /// The anticipatory scheduler (Iyer & Druschel; Linux `as`).
    Anticipatory,
    /// FIFO with merging.
    Noop,
    /// LBN sweep with per-request expiry.
    Deadline,
    /// Shortest seek time first.
    Sstf,
    /// Circular elevator.
    Scan,
}

impl SchedulerKind {
    /// Instantiate the scheduler with its default configuration.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Cfq => Box::new(CfqScheduler::new(CfqConfig::default())),
            SchedulerKind::Anticipatory => {
                Box::new(AnticipatoryScheduler::new(AnticipatoryConfig::default()))
            }
            SchedulerKind::Noop => Box::new(NoopScheduler::new()),
            SchedulerKind::Deadline => Box::new(DeadlineScheduler::new(DeadlineConfig::default())),
            SchedulerKind::Sstf => Box::new(SstfScheduler::new()),
            SchedulerKind::Scan => Box::new(ScanScheduler::new()),
        }
    }

    /// Every available scheduler, for sweeps.
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::Cfq,
        SchedulerKind::Anticipatory,
        SchedulerKind::Noop,
        SchedulerKind::Deadline,
        SchedulerKind::Sstf,
        SchedulerKind::Scan,
    ];
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerKind::Cfq => "cfq",
            SchedulerKind::Anticipatory => "anticipatory",
            SchedulerKind::Noop => "noop",
            SchedulerKind::Deadline => "deadline",
            SchedulerKind::Sstf => "sstf",
            SchedulerKind::Scan => "scan",
        };
        f.write_str(s)
    }
}
