//! Block-level request representation shared by all schedulers.

use crate::model::Lbn;
use dualpar_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Read or write, at every layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the device.
    Read,
    /// Data flows to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

/// Identifier of the *issuing context* as seen by the disk scheduler — the
/// analogue of the process/io-context CFQ keys its per-context queues on.
/// Under vanilla MPI-IO each MPI process is its own context; under collective
/// I/O the aggregator is; under DualPar the per-node CRM daemon is. This
/// difference is precisely what changes the scheduler's view of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IoCtx(pub u32);

/// How many merged sub-request ids fit without touching the heap. Queue
/// merging rarely coalesces more than a handful of requests (the sector
/// cap bites first), so the common case is allocation-free.
const MERGED_INLINE: usize = 4;

/// The ids of every sub-request coalesced into one dispatch. Semantically
/// a `Vec<u64>`, but the first [`MERGED_INLINE`] ids live inline in the
/// request itself: `DiskRequest::new` used to `vec![id]` — one heap
/// allocation per request on the busiest path in the simulator — whereas
/// an inline `MergedIds` costs nothing until a merge chain grows past the
/// inline capacity.
#[derive(Debug, Clone)]
pub enum MergedIds {
    /// Up to [`MERGED_INLINE`] ids stored in place; `len` counts the
    /// occupied prefix of `buf`.
    Inline { len: u8, buf: [u64; MERGED_INLINE] },
    /// Overflow representation once a merge chain outgrows the buffer.
    Heap(Vec<u64>),
}

impl MergedIds {
    /// A one-element list (every request starts out owning only itself).
    #[inline]
    pub fn one(id: u64) -> Self {
        let mut buf = [0u64; MERGED_INLINE];
        buf[0] = id;
        MergedIds::Inline { len: 1, buf }
    }

    /// The ids as a slice, in merge order.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            MergedIds::Inline { len, buf } => &buf[..*len as usize],
            MergedIds::Heap(v) => v,
        }
    }

    /// Append one id, spilling to the heap when the inline buffer fills.
    pub fn push(&mut self, id: u64) {
        match self {
            MergedIds::Inline { len, buf } => {
                let n = *len as usize;
                if n < MERGED_INLINE {
                    buf[n] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(MERGED_INLINE * 2);
                    v.extend_from_slice(buf);
                    v.push(id);
                    *self = MergedIds::Heap(v);
                }
            }
            MergedIds::Heap(v) => v.push(id),
        }
    }

    /// Append every id of `other`, preserving order.
    pub fn absorb(&mut self, other: MergedIds) {
        for &id in other.as_slice() {
            self.push(id);
        }
    }
}

// Equality is over the id sequence, not the representation: an inline
// list and a heap list holding the same ids are the same value.
impl PartialEq for MergedIds {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for MergedIds {}

impl PartialEq<Vec<u64>> for MergedIds {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a MergedIds {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A request queued at (or being serviced by) a disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskRequest {
    /// Unique id assigned by the issuing layer.
    pub id: u64,
    /// Issuing context the scheduler keys fairness on.
    pub ctx: IoCtx,
    /// Read or write.
    pub kind: IoKind,
    /// First sector accessed.
    pub lbn: Lbn,
    /// Sectors accessed.
    pub sectors: u64,
    /// When the request reached the scheduler.
    pub arrival: SimTime,
    /// Ids of requests coalesced into this one by queue merging (always
    /// contains `id` itself). The server completes all of them at once.
    pub merged: MergedIds,
}

impl DiskRequest {
    /// Build an unmerged request.
    pub fn new(id: u64, ctx: IoCtx, kind: IoKind, lbn: Lbn, sectors: u64, arrival: SimTime) -> Self {
        debug_assert!(sectors > 0, "zero-length disk request");
        DiskRequest {
            id,
            ctx,
            kind,
            lbn,
            sectors,
            arrival,
            merged: MergedIds::one(id),
        }
    }

    /// Ids of every sub-request this dispatch services — the request's own
    /// id plus everything queue merging absorbed. Final once the request
    /// starts at the media (merging only happens while queued or at
    /// dispatch), so span/trace layers can fan service intervals out over
    /// it at start time.
    #[inline]
    pub fn merged_ids(&self) -> &[u64] {
        self.merged.as_slice()
    }

    /// One-past-the-end sector. Saturates: an extent reaching past
    /// `u64::MAX` is a caller bug, but a clamped end only disables merges
    /// instead of wrapping into a bogus low LBN.
    #[inline]
    pub fn end(&self) -> Lbn {
        debug_assert!(
            self.lbn.checked_add(self.sectors).is_some(),
            "request extent overflows LBN space: lbn={} sectors={}",
            self.lbn,
            self.sectors
        );
        self.lbn.saturating_add(self.sectors)
    }

    /// Whether `next` extends this request contiguously at its tail with the
    /// same kind (the block layer's "back merge").
    pub fn can_back_merge(&self, next: &DiskRequest, max_sectors: u64) -> bool {
        self.kind == next.kind
            && self.end() == next.lbn
            && self
                .sectors
                .checked_add(next.sectors)
                .is_some_and(|total| total <= max_sectors)
    }

    /// Perform the back merge, absorbing `next`'s ids.
    pub fn back_merge(&mut self, next: DiskRequest) {
        debug_assert!(self.can_back_merge(&next, u64::MAX));
        self.sectors = self.sectors.saturating_add(next.sectors);
        self.merged.absorb(next.merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, lbn: Lbn, sectors: u64) -> DiskRequest {
        DiskRequest::new(id, IoCtx(1), IoKind::Read, lbn, sectors, SimTime::ZERO)
    }

    #[test]
    fn back_merge_requires_contiguity_and_kind() {
        let a = req(1, 100, 8);
        let b = req(2, 108, 8);
        let c = req(3, 120, 8);
        assert!(a.can_back_merge(&b, 1024));
        assert!(!a.can_back_merge(&c, 1024));
        let mut w = a.clone();
        w.kind = IoKind::Write;
        let mut b2 = b.clone();
        b2.kind = IoKind::Read;
        assert!(!w.can_back_merge(&b2, 1024));
    }

    #[test]
    fn back_merge_respects_size_cap() {
        let a = req(1, 0, 1000);
        let b = req(2, 1000, 100);
        assert!(!a.can_back_merge(&b, 1024));
        assert!(a.can_back_merge(&b, 1100));
    }

    #[test]
    fn back_merge_accumulates_ids() {
        let mut a = req(1, 0, 8);
        a.back_merge(req(2, 8, 8));
        a.back_merge(req(3, 16, 8));
        assert_eq!(a.sectors, 24);
        assert_eq!(a.merged, vec![1, 2, 3]);
        assert_eq!(a.end(), 24);
    }

    #[test]
    fn merged_ids_spill_past_inline_capacity() {
        let mut m = MergedIds::one(0);
        for id in 1..10u64 {
            m.push(id);
        }
        assert_eq!(m.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert!(matches!(m, MergedIds::Heap(_)));
        // Equality crosses representations.
        let mut short = MergedIds::one(0);
        short.push(1);
        assert_eq!(short, MergedIds::Heap(vec![0, 1]));
        // absorb preserves order across the boundary.
        let mut a = MergedIds::one(100);
        a.absorb(m);
        assert_eq!(
            a.as_slice().first().copied(),
            Some(100),
            "own id stays first"
        );
        assert_eq!(a.as_slice().len(), 11);
    }
}
