//! Block-level request representation shared by all schedulers.

use crate::model::Lbn;
use dualpar_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Read or write, at every layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the device.
    Read,
    /// Data flows to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

/// Identifier of the *issuing context* as seen by the disk scheduler — the
/// analogue of the process/io-context CFQ keys its per-context queues on.
/// Under vanilla MPI-IO each MPI process is its own context; under collective
/// I/O the aggregator is; under DualPar the per-node CRM daemon is. This
/// difference is precisely what changes the scheduler's view of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IoCtx(pub u32);

/// A request queued at (or being serviced by) a disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskRequest {
    /// Unique id assigned by the issuing layer.
    pub id: u64,
    /// Issuing context the scheduler keys fairness on.
    pub ctx: IoCtx,
    /// Read or write.
    pub kind: IoKind,
    /// First sector accessed.
    pub lbn: Lbn,
    /// Sectors accessed.
    pub sectors: u64,
    /// When the request reached the scheduler.
    pub arrival: SimTime,
    /// Ids of requests coalesced into this one by queue merging (always
    /// contains `id` itself). The server completes all of them at once.
    pub merged: Vec<u64>,
}

impl DiskRequest {
    /// Build an unmerged request.
    pub fn new(id: u64, ctx: IoCtx, kind: IoKind, lbn: Lbn, sectors: u64, arrival: SimTime) -> Self {
        debug_assert!(sectors > 0, "zero-length disk request");
        DiskRequest {
            id,
            ctx,
            kind,
            lbn,
            sectors,
            arrival,
            merged: vec![id],
        }
    }

    /// Ids of every sub-request this dispatch services — the request's own
    /// id plus everything queue merging absorbed. Final once the request
    /// starts at the media (merging only happens while queued or at
    /// dispatch), so span/trace layers can fan service intervals out over
    /// it at start time.
    #[inline]
    pub fn merged_ids(&self) -> &[u64] {
        &self.merged
    }

    /// One-past-the-end sector. Saturates: an extent reaching past
    /// `u64::MAX` is a caller bug, but a clamped end only disables merges
    /// instead of wrapping into a bogus low LBN.
    #[inline]
    pub fn end(&self) -> Lbn {
        debug_assert!(
            self.lbn.checked_add(self.sectors).is_some(),
            "request extent overflows LBN space: lbn={} sectors={}",
            self.lbn,
            self.sectors
        );
        self.lbn.saturating_add(self.sectors)
    }

    /// Whether `next` extends this request contiguously at its tail with the
    /// same kind (the block layer's "back merge").
    pub fn can_back_merge(&self, next: &DiskRequest, max_sectors: u64) -> bool {
        self.kind == next.kind
            && self.end() == next.lbn
            && self
                .sectors
                .checked_add(next.sectors)
                .is_some_and(|total| total <= max_sectors)
    }

    /// Perform the back merge, absorbing `next`'s ids.
    pub fn back_merge(&mut self, next: DiskRequest) {
        debug_assert!(self.can_back_merge(&next, u64::MAX));
        self.sectors = self.sectors.saturating_add(next.sectors);
        self.merged.extend(next.merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, lbn: Lbn, sectors: u64) -> DiskRequest {
        DiskRequest::new(id, IoCtx(1), IoKind::Read, lbn, sectors, SimTime::ZERO)
    }

    #[test]
    fn back_merge_requires_contiguity_and_kind() {
        let a = req(1, 100, 8);
        let b = req(2, 108, 8);
        let c = req(3, 120, 8);
        assert!(a.can_back_merge(&b, 1024));
        assert!(!a.can_back_merge(&c, 1024));
        let mut w = a.clone();
        w.kind = IoKind::Write;
        let mut b2 = b.clone();
        b2.kind = IoKind::Read;
        assert!(!w.can_back_merge(&b2, 1024));
    }

    #[test]
    fn back_merge_respects_size_cap() {
        let a = req(1, 0, 1000);
        let b = req(2, 1000, 100);
        assert!(!a.can_back_merge(&b, 1024));
        assert!(a.can_back_merge(&b, 1100));
    }

    #[test]
    fn back_merge_accumulates_ids() {
        let mut a = req(1, 0, 8);
        a.back_merge(req(2, 8, 8));
        a.back_merge(req(3, 16, 8));
        assert_eq!(a.sectors, 24);
        assert_eq!(a.merged, vec![1, 2, 3]);
        assert_eq!(a.end(), 24);
    }
}
