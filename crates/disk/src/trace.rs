//! Block-level tracing — the simulator's Blktrace.
//!
//! Records every serviced request (dispatch time, LBN, length, context) plus
//! the head seek distance incurred, so the harnesses can regenerate the LBN
//! scatter plots of Figs. 1(c,d) and 6(a,b) and the seek-distance timeline of
//! Fig. 7(b), and so EMC can sample `aveSeekDist` exactly as the paper's
//! locality daemon does from the kernel statistic.

use crate::model::Lbn;
use crate::request::{IoCtx, IoKind};
use dualpar_sim::{SimDuration, SimTime};
use serde::Serialize;

/// One serviced block request.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceRecord {
    /// Dispatch (service start) time.
    pub at: SimTime,
    /// First sector serviced.
    pub lbn: Lbn,
    /// Sectors serviced.
    pub sectors: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Issuing context.
    pub ctx: IoCtx,
    /// |head - lbn| at dispatch.
    pub seek_distance: u64,
}

/// Rolling trace of serviced requests on one disk.
#[derive(Debug, Default)]
pub struct BlockTrace {
    records: Vec<TraceRecord>,
    enabled: bool,
    /// Running total of seek distance & count, independent of `enabled` so
    /// EMC sampling works even when full tracing is off.
    seek_sum: u64,
    seek_count: u64,
    /// Snapshot markers for windowed averages.
    window_sum: u64,
    window_count: u64,
}

impl BlockTrace {
    /// Create a trace; `enabled` controls full record retention (the
    /// seek-distance counters always run).
    pub fn new(enabled: bool) -> Self {
        BlockTrace {
            enabled,
            ..Default::default()
        }
    }

    /// Toggle full record retention.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Record one serviced request.
    pub fn record(&mut self, rec: TraceRecord) {
        self.seek_sum += rec.seek_distance;
        self.seek_count += 1;
        self.window_sum = self.window_sum.saturating_add(rec.seek_distance);
        self.window_count += 1; // audit:allow — bounded by records seen
        if self.enabled {
            self.records.push(rec);
        }
    }

    /// All retained records (empty when retention is disabled).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose dispatch time lies in `[from, to)` — a Blktrace window.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.at >= from && r.at < to)
    }

    /// Lifetime average seek distance (sectors per serviced request).
    pub fn avg_seek_distance(&self) -> f64 {
        if self.seek_count == 0 {
            0.0
        } else {
            self.seek_sum as f64 / self.seek_count as f64
        }
    }

    /// Average seek distance since the last call, then reset the window.
    /// This is what the per-server locality daemon reports to EMC each slot.
    pub fn take_window_avg_seek(&mut self) -> Option<f64> {
        if self.window_count == 0 {
            return None;
        }
        let avg = self.window_sum as f64 / self.window_count as f64;
        self.window_sum = 0;
        self.window_count = 0;
        Some(avg)
    }

    /// Total requests serviced (independent of retention).
    pub fn serviced(&self) -> u64 {
        self.seek_count
    }

    /// Mean absolute LBN step between *consecutive* serviced requests in a
    /// time window — a direct measure of how sequential the service order
    /// was (small = smooth sweep, large = thrashing).
    pub fn window_mean_lbn_step(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut prev_end: Option<Lbn> = None;
        let mut sum = 0u64;
        let mut n = 0u64;
        for r in self.window(from, to) {
            if let Some(pe) = prev_end {
                sum += pe.abs_diff(r.lbn);
                n += 1;
            }
            prev_end = Some(r.lbn.saturating_add(r.sectors));
        }
        if n == 0 {
            None
        } else {
            Some(sum as f64 / n as f64)
        }
    }

    /// Seek-distance averages in fixed time bins across `[0, horizon)` —
    /// feeds Fig. 7(b).
    pub fn seek_distance_bins(&self, bin: SimDuration, horizon: SimTime) -> Vec<f64> {
        let nbins = (horizon.nanos() / bin.nanos()) as usize + 1;
        let mut sums = vec![0.0; nbins];
        let mut counts = vec![0u64; nbins];
        for r in &self.records {
            let idx = (r.at.nanos() / bin.nanos()) as usize;
            if idx < nbins {
                sums[idx] += r.seek_distance as f64;
                counts[idx] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, lbn: Lbn, seek: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            lbn,
            sectors: 8,
            kind: IoKind::Read,
            ctx: IoCtx(0),
            seek_distance: seek,
        }
    }

    #[test]
    fn windowing_selects_half_open_interval() {
        let mut t = BlockTrace::new(true);
        t.record(rec(10, 0, 0));
        t.record(rec(20, 0, 0));
        t.record(rec(30, 0, 0));
        let n = t
            .window(SimTime::from_millis(10), SimTime::from_millis(30))
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn seek_average_tracks_all_records() {
        let mut t = BlockTrace::new(false); // disabled tracing still counts
        t.record(rec(0, 0, 100));
        t.record(rec(1, 0, 300));
        assert_eq!(t.avg_seek_distance(), 200.0);
        assert!(t.records().is_empty());
    }

    #[test]
    fn window_avg_resets() {
        let mut t = BlockTrace::new(false);
        t.record(rec(0, 0, 100));
        assert_eq!(t.take_window_avg_seek(), Some(100.0));
        assert_eq!(t.take_window_avg_seek(), None);
        t.record(rec(1, 0, 50));
        assert_eq!(t.take_window_avg_seek(), Some(50.0));
    }

    #[test]
    fn mean_lbn_step_measures_sequentiality() {
        let mut t = BlockTrace::new(true);
        // Perfectly sequential: 0..8, 8..16, 16..24 — zero step.
        for i in 0..3 {
            t.record(rec(i, i * 8, 0));
        }
        let step = t
            .window_mean_lbn_step(SimTime::ZERO, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(step, 0.0);
    }

    #[test]
    fn seek_bins_average_per_bin() {
        let mut t = BlockTrace::new(true);
        t.record(rec(100, 0, 10));
        t.record(rec(200, 0, 30));
        t.record(rec(1100, 0, 50));
        let bins = t.seek_distance_bins(SimDuration::from_secs(1), SimTime::from_secs(2));
        assert_eq!(bins[0], 20.0);
        assert_eq!(bins[1], 50.0);
    }
}
