//! Property tests: every scheduler conserves requests — nothing lost,
//! nothing duplicated, byte coverage preserved through merging — and the
//! disk drains any queue to completion (no starvation / livelock).

use dualpar_disk::{
    bytes_to_sectors, Decision, DiskParams, DiskRequest, IoCtx, IoKind, Scheduler, SchedulerKind,
};
use dualpar_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary request workload: (ctx, lbn_block, sectors, is_read).
fn workload() -> impl Strategy<Value = Vec<(u32, u64, u64, bool)>> {
    proptest::collection::vec(
        (0u32..4, 0u64..10_000, 1u64..64, any::<bool>()),
        1..120,
    )
}

fn drain_all(sched: &mut dyn Scheduler, mut now: SimTime) -> Vec<DiskRequest> {
    let mut out = Vec::new();
    let mut head = 0u64;
    let mut idles = 0;
    loop {
        match sched.decide(now, head) {
            Decision::Dispatch(r) => {
                head = r.end();
                // model a service time so slices/deadlines advance
                now += SimDuration::from_millis(3);
                out.push(r);
                idles = 0;
            }
            Decision::IdleUntil(t) => {
                assert!(t > now, "idle must move time forward");
                now = t;
                idles += 1;
                assert!(idles < 1000, "livelock: endless idling");
            }
            Decision::Empty => break,
        }
    }
    out
}

fn run_conservation(kind: SchedulerKind, reqs: Vec<(u32, u64, u64, bool)>) {
    let mut sched = kind.build();
    let mut expected_ids = BTreeSet::new();
    let mut expected_sectors = 0u64;
    for (i, &(ctx, blk, sectors, is_read)) in reqs.iter().enumerate() {
        let id = i as u64;
        expected_ids.insert(id);
        expected_sectors += sectors;
        let kind = if is_read { IoKind::Read } else { IoKind::Write };
        sched.enqueue(DiskRequest::new(
            id,
            IoCtx(ctx),
            kind,
            blk * 64, // spread out, but collisions/contiguity still occur
            sectors,
            SimTime::ZERO,
        ));
    }
    let serviced = drain_all(sched.as_mut(), SimTime::ZERO);
    let mut seen_ids = BTreeSet::new();
    let mut seen_sectors = 0u64;
    for r in &serviced {
        seen_sectors += r.sectors;
        for &id in &r.merged {
            assert!(seen_ids.insert(id), "request id {id} serviced twice");
        }
    }
    assert_eq!(seen_ids, expected_ids, "scheduler lost or invented requests");
    assert_eq!(
        seen_sectors, expected_sectors,
        "merging changed total sector count"
    );
    assert!(sched.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cfq_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Cfq, reqs);
    }

    #[test]
    fn anticipatory_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Anticipatory, reqs);
    }

    #[test]
    fn noop_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Noop, reqs);
    }

    #[test]
    fn deadline_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Deadline, reqs);
    }

    #[test]
    fn sstf_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Sstf, reqs);
    }

    #[test]
    fn scan_conserves(reqs in workload()) {
        run_conservation(SchedulerKind::Scan, reqs);
    }

    /// Service time is monotone in request size and seek distance.
    #[test]
    fn service_time_monotone(lbn in 0u64..500_000_000, sectors in 1u64..2048) {
        let p = DiskParams::hdd_7200rpm();
        let (d1, t1) = p.service_time(0, lbn, sectors);
        let (d2, t2) = p.service_time(0, lbn, sectors + 8);
        prop_assert_eq!(d1, d2);
        prop_assert!(t2 >= t1, "bigger request can't be faster");
        let (_, t3) = p.service_time(0, lbn / 2, sectors);
        if lbn > 0 {
            prop_assert!(t3 <= t1, "shorter seek can't be slower");
        }
    }

    /// Sorted service order is never slower than a random order for the
    /// same request set on a FIFO (noop) disk.
    #[test]
    fn sorted_order_never_slower(mut blocks in proptest::collection::vec(0u64..100_000, 2..60)) {
        let p = DiskParams::hdd_7200rpm();
        let total = |order: &[u64]| {
            let mut head = 0u64;
            let mut t = SimDuration::ZERO;
            for &b in order {
                let lbn = b * 1024;
                let (_, s) = p.service_time(head, lbn, bytes_to_sectors(4096));
                t += s;
                head = lbn + bytes_to_sectors(4096);
            }
            t
        };
        let random_t = total(&blocks);
        blocks.sort_unstable();
        let sorted_t = total(&blocks);
        prop_assert!(sorted_t <= random_t);
    }
}
