//! A sorted, disjoint set of byte ranges.
//!
//! Used by the global cache to track which bytes of a chunk are present or
//! dirty, and by the CRM to compute holes between requests. Stored as a
//! sorted `Vec<(start, end)>` of half-open intervals, merged on insert.

use serde::{Deserialize, Serialize};

/// Set of disjoint half-open byte intervals `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeSet {
    runs: Vec<(u64, u64)>,
}

/// One-past-the-end offset of `[start, start+len)`. A range whose end
/// exceeds `u64::MAX` is a caller bug (file offsets are byte positions, so
/// the last representable byte is `u64::MAX - 1`); catch it loudly in debug
/// builds and clamp to `u64::MAX` in release rather than wrapping around to
/// a tiny end and silently corrupting the run list.
#[inline]
fn range_end(start: u64, len: u64) -> u64 {
    debug_assert!(
        start.checked_add(len).is_some(),
        "byte range overflows u64: start={start} len={len}"
    );
    start.saturating_add(len)
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// A set containing the single interval `[start, start+len)`.
    pub fn from_range(start: u64, len: u64) -> Self {
        let mut s = RangeSet::new();
        s.insert(start, len);
        s
    }

    /// Does the set cover nothing?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of disjoint runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Iterate the disjoint `(start, end)` runs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().copied()
    }

    /// Insert `[start, start+len)`, merging with touching/overlapping runs.
    pub fn insert(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut s = start;
        let mut e = range_end(start, len);
        // Find all runs overlapping or touching [s, e).
        let lo = self.runs.partition_point(|&(_, re)| re < s);
        let mut hi = lo;
        while hi < self.runs.len() && self.runs[hi].0 <= e {
            s = s.min(self.runs[hi].0);
            e = e.max(self.runs[hi].1);
            hi += 1;
        }
        self.runs.splice(lo..hi, [(s, e)]);
    }

    /// Remove `[start, start+len)` from the set.
    pub fn remove(&mut self, start: u64, len: u64) {
        if len == 0 || self.runs.is_empty() {
            return;
        }
        let s = start;
        let e = range_end(start, len);
        let mut result = Vec::with_capacity(self.runs.len() + 1);
        for &(rs, re) in &self.runs {
            if re <= s || rs >= e {
                result.push((rs, re));
                continue;
            }
            if rs < s {
                result.push((rs, s));
            }
            if re > e {
                result.push((e, re));
            }
        }
        self.runs = result;
    }

    /// Does the set fully cover `[start, start+len)`?
    pub fn contains_range(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let e = range_end(start, len);
        let idx = self.runs.partition_point(|&(_, re)| re <= start);
        match self.runs.get(idx) {
            Some(&(rs, re)) => rs <= start && e <= re,
            None => false,
        }
    }

    /// Bytes of `[start, start+len)` covered by the set.
    pub fn intersect_len(&self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let e = range_end(start, len);
        let mut covered = 0;
        let idx = self.runs.partition_point(|&(_, re)| re <= start);
        for &(rs, re) in &self.runs[idx..] {
            if rs >= e {
                break;
            }
            covered += re.min(e) - rs.max(start);
        }
        covered
    }

    /// The gaps of `[start, start+len)` not covered by the set.
    pub fn gaps(&self, start: u64, len: u64) -> Vec<(u64, u64)> {
        let e = range_end(start, len);
        let mut gaps = Vec::new();
        let mut cursor = start;
        let idx = self.runs.partition_point(|&(_, re)| re <= start);
        for &(rs, re) in &self.runs[idx..] {
            if rs >= e {
                break;
            }
            if rs > cursor {
                gaps.push((cursor, rs - cursor));
            }
            cursor = cursor.max(re);
        }
        if cursor < e {
            gaps.push((cursor, e - cursor));
        }
        gaps
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_touching() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(10, 10); // touching
        assert_eq!(r.num_runs(), 1);
        assert_eq!(r.covered(), 20);
        r.insert(30, 5);
        assert_eq!(r.num_runs(), 2);
        r.insert(15, 20); // bridges the gap
        assert_eq!(r.num_runs(), 1);
        assert_eq!(r.covered(), 35);
    }

    #[test]
    fn insert_overlapping_is_idempotent() {
        let mut r = RangeSet::from_range(5, 10);
        r.insert(5, 10);
        r.insert(7, 3);
        assert_eq!(r.covered(), 10);
        assert_eq!(r.num_runs(), 1);
    }

    #[test]
    fn remove_splits_runs() {
        let mut r = RangeSet::from_range(0, 100);
        r.remove(40, 20);
        assert_eq!(r.num_runs(), 2);
        assert_eq!(r.covered(), 80);
        assert!(r.contains_range(0, 40));
        assert!(r.contains_range(60, 40));
        assert!(!r.contains_range(39, 2));
    }

    #[test]
    fn remove_nonexistent_is_noop() {
        let mut r = RangeSet::from_range(0, 10);
        r.remove(50, 10);
        assert_eq!(r.covered(), 10);
    }

    #[test]
    fn contains_range_edges() {
        let r = RangeSet::from_range(10, 10);
        assert!(r.contains_range(10, 10));
        assert!(r.contains_range(15, 5));
        assert!(!r.contains_range(15, 6));
        assert!(!r.contains_range(9, 2));
        assert!(r.contains_range(0, 0)); // empty range trivially contained
    }

    #[test]
    fn intersect_len_partial() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(20, 10);
        assert_eq!(r.intersect_len(5, 20), 10); // 5..10 and 20..25
        assert_eq!(r.intersect_len(10, 10), 0);
        assert_eq!(r.intersect_len(0, 30), 20);
    }

    #[test]
    fn gaps_are_complement() {
        let mut r = RangeSet::new();
        r.insert(10, 10);
        r.insert(30, 10);
        let gaps = r.gaps(0, 50);
        assert_eq!(gaps, vec![(0, 10), (20, 10), (40, 10)]);
        assert_eq!(r.gaps(10, 10), vec![]);
        assert_eq!(r.gaps(12, 5), vec![]);
    }

    #[test]
    fn zero_len_operations() {
        let mut r = RangeSet::new();
        r.insert(5, 0);
        assert!(r.is_empty());
        r.insert(5, 5);
        r.remove(6, 0);
        assert_eq!(r.covered(), 5);
        assert_eq!(r.intersect_len(0, 0), 0);
    }

    #[test]
    fn near_max_ranges_are_exact() {
        // The largest representable range ends exactly at u64::MAX.
        let start = u64::MAX - 100;
        let mut r = RangeSet::from_range(start, 100);
        assert_eq!(r.covered(), 100);
        assert!(r.contains_range(start, 100));
        assert!(r.contains_range(u64::MAX - 1, 1));
        assert_eq!(r.intersect_len(start, 100), 100);
        assert_eq!(r.gaps(start, 100), vec![]);
        r.remove(start + 40, 20);
        assert_eq!(r.covered(), 80);
        assert_eq!(r.gaps(start, 100), vec![(start + 40, 20)]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "byte range overflows u64")]
    fn overflowing_range_panics_in_debug() {
        let mut r = RangeSet::new();
        r.insert(u64::MAX - 5, 10);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Ranges pinned near `u64::MAX` whose end still fits in `u64`.
        fn near_max_range() -> impl Strategy<Value = (u64, u64)> {
            (0u64..4096).prop_flat_map(|back| {
                let start = u64::MAX - back;
                (Just(start), 0..=back)
            })
        }

        proptest! {
            #[test]
            fn single_insert_near_max_round_trips(
                (start, len) in near_max_range()
            ) {
                let r = RangeSet::from_range(start, len);
                prop_assert_eq!(r.covered(), len);
                prop_assert!(r.contains_range(start, len));
                prop_assert_eq!(r.intersect_len(start, len), len);
                prop_assert_eq!(r.gaps(start, len), vec![]);
            }

            #[test]
            fn insert_remove_near_max_is_consistent(
                (s1, l1) in near_max_range(),
                (s2, l2) in near_max_range(),
            ) {
                let mut r = RangeSet::new();
                r.insert(s1, l1);
                r.insert(s2, l2);
                // covered == probe-based count over the union window
                // (bounded: lo >= u64::MAX - 4095, so <= 4096 probes).
                let lo = s1.min(s2);
                let want: u64 = (lo..=u64::MAX)
                    .filter(|&b| {
                        (b >= s1 && b - s1 < l1) || (b >= s2 && b - s2 < l2)
                    })
                    .count() as u64;
                prop_assert_eq!(r.covered(), want);
                r.remove(s2, l2);
                prop_assert_eq!(r.intersect_len(s2, l2), 0);
                // gaps ∪ runs must tile the removed window exactly.
                let gap_total: u64 =
                    r.gaps(s2, l2).iter().map(|&(_, g)| g).sum();
                prop_assert_eq!(gap_total + r.intersect_len(s2, l2), l2);
            }
        }
    }
}
