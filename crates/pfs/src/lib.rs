//! # dualpar-pfs
//!
//! A PVFS2-like striped parallel file system model: round-robin 64 KB
//! striping across data servers, per-server extent allocation mapping local
//! objects to disk LBNs, and end-to-end resolution of file regions to disk
//! runs. The metadata server of the paper (which hosts the EMC daemon) is
//! represented by the file table here plus the EMC logic in `dualpar-core`.

pub mod alloc;
pub mod ranges;
pub mod fs;
pub mod layout;

pub use alloc::{AllocConfig, Extent, ExtentAllocator};
pub use ranges::RangeSet;
pub use fs::{FileMeta, Pvfs, ResolvedIo};
pub use layout::{FileId, FileRegion, ServerId, StripeLayout, StripePiece};
