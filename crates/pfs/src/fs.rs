//! The parallel file system proper: file table + striping + per-server
//! extent maps, with the end-to-end `file region → (server, LBN run)`
//! resolution used by every I/O path in the simulator.

use crate::alloc::{AllocConfig, ExtentAllocator};
use crate::layout::{FileId, FileRegion, ServerId, StripeLayout};
use dualpar_disk::Lbn;
use serde::{Deserialize, Serialize};
use dualpar_sim::FxHashMap;

/// A file-region fragment resolved all the way to a disk address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedIo {
    /// Data server holding this run.
    pub server: ServerId,
    /// File the run belongs to.
    pub file: FileId,
    /// The file-level byte range this run covers.
    pub file_offset: u64,
    /// Bytes of file data in this run.
    pub bytes: u64,
    /// First disk sector.
    pub lbn: Lbn,
    /// Sector span on disk.
    pub sectors: u64,
}

/// File metadata kept by the metadata server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileMeta {
    /// File identifier.
    pub id: FileId,
    /// File name (unique).
    pub name: String,
    /// File size in bytes.
    pub size: u64,
}

/// The PVFS2 analogue: one metadata table plus `num_servers` data servers'
/// allocation state. Disk devices themselves live in the cluster simulator;
/// this type owns the *mapping*.
pub struct Pvfs {
    layout: StripeLayout,
    allocators: Vec<ExtentAllocator>,
    files: FxHashMap<FileId, FileMeta>,
    by_name: FxHashMap<String, FileId>,
    next_file: u32,
}

impl Pvfs {
    /// Build a file system over `num_servers` disks of the given capacity.
    pub fn new(num_servers: u32, stripe_size: u64, capacity_sectors: u64, alloc: AllocConfig) -> Self {
        Pvfs {
            layout: StripeLayout::new(stripe_size, num_servers),
            allocators: (0..num_servers)
                .map(|_| ExtentAllocator::new(capacity_sectors, alloc.clone()))
                .collect(),
            files: FxHashMap::default(),
            by_name: FxHashMap::default(),
            next_file: 1,
        }
    }

    /// The striping function.
    pub fn layout(&self) -> StripeLayout {
        self.layout
    }

    /// Data servers in the file system.
    pub fn num_servers(&self) -> u32 {
        self.layout.num_servers
    }

    /// Create (and fully pre-allocate) a file. Pre-allocation matches the
    /// benchmarks, which write/read files of known size.
    pub fn create(&mut self, name: &str, size: u64) -> FileId {
        assert!(
            !self.by_name.contains_key(name),
            "file {name:?} already exists"
        );
        let id = FileId(self.next_file);
        self.next_file += 1;
        for s in 0..self.layout.num_servers {
            let local = self.layout.local_object_size(ServerId(s), size);
            if local > 0 {
                self.allocators[s as usize].allocate(id, local);
            }
        }
        self.files.insert(
            id,
            FileMeta {
                id,
                name: name.to_string(),
                size,
            },
        );
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look a file up by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    /// Metadata of `id`, if it exists.
    pub fn meta(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Size of `id` in bytes (0 if unknown).
    pub fn size(&self, id: FileId) -> u64 {
        self.files.get(&id).map_or(0, |m| m.size)
    }

    /// Resolve a file region to per-server disk runs, in file order.
    /// Adjacent stripe pieces that are contiguous both on the same server's
    /// local object *and* on disk are merged into a single run.
    pub fn resolve(&self, file: FileId, region: FileRegion) -> Vec<ResolvedIo> {
        debug_assert!(
            region.end() <= self.size(file),
            "I/O beyond EOF: {region:?} on {file:?} (size {})",
            self.size(file)
        );
        let mut out: Vec<ResolvedIo> = Vec::new();
        for piece in self.layout.split(region) {
            let alloc = &self.allocators[piece.server.0 as usize];
            let mut covered = 0u64;
            for (lbn, sectors) in alloc.translate(file, piece.local_offset, piece.len) {
                let run_bytes =
                    (sectors.saturating_mul(dualpar_disk::SECTOR_BYTES)).min(piece.len - covered);
                // Merge with the previous run if it continues it on disk.
                if let Some(last) = out.last_mut() {
                    if last.server == piece.server
                        && last.lbn.saturating_add(last.sectors) == lbn
                        && last.file_offset + last.bytes == piece.file_offset + covered
                    {
                        last.sectors = last.sectors.saturating_add(sectors);
                        last.bytes += run_bytes;
                        covered += run_bytes;
                        continue;
                    }
                }
                out.push(ResolvedIo {
                    server: piece.server,
                    file,
                    file_offset: piece.file_offset + covered,
                    bytes: run_bytes,
                    lbn,
                    sectors,
                });
                covered += run_bytes;
            }
        }
        out
    }

    /// First LBN of the file's object on `server` (for layout assertions).
    pub fn base_lbn(&self, server: ServerId, file: FileId) -> Option<Lbn> {
        self.allocators[server.0 as usize].base_lbn(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Pvfs {
        // 4 servers, 64 KB stripes, 300 GB disks, default gaps.
        Pvfs::new(4, 64 * 1024, 300 * (1 << 30) / 512, AllocConfig::default())
    }

    #[test]
    fn create_and_lookup() {
        let mut p = fs();
        let f = p.create("data.bin", 1 << 20);
        assert_eq!(p.lookup("data.bin"), Some(f));
        assert_eq!(p.size(f), 1 << 20);
        assert!(p.lookup("other").is_none());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let mut p = fs();
        p.create("x", 10);
        p.create("x", 10);
    }

    #[test]
    fn resolve_covers_all_bytes_in_order() {
        let mut p = fs();
        let f = p.create("big", 10 << 20);
        let region = FileRegion::new(100_000, 1_000_000);
        let runs = p.resolve(f, region);
        let total: u64 = runs.iter().map(|r| r.bytes).sum();
        assert_eq!(total, region.len);
        let mut off = region.offset;
        for r in &runs {
            assert_eq!(r.file_offset, off);
            off += r.bytes;
        }
    }

    #[test]
    fn single_stripe_read_touches_one_server() {
        let mut p = fs();
        let f = p.create("big", 10 << 20);
        // Entirely within stripe unit 5 → server 1.
        let runs = p.resolve(f, FileRegion::new(5 * 65536 + 100, 1000));
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].server, ServerId(1));
    }

    #[test]
    fn stripe_aligned_read_spreads_over_servers() {
        let mut p = fs();
        let f = p.create("big", 10 << 20);
        let runs = p.resolve(f, FileRegion::new(0, 4 * 65536));
        let servers: Vec<u32> = runs.iter().map(|r| r.server.0).collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn file_offset_monotone_implies_lbn_monotone_per_server() {
        // The property DualPar leans on: sorting by file offset sorts the
        // per-server disk addresses too.
        let mut p = fs();
        let f = p.create("big", 64 << 20);
        let mut per_server_lbns: FxHashMap<ServerId, Vec<Lbn>> = FxHashMap::default();
        for i in 0..256u64 {
            for r in p.resolve(f, FileRegion::new(i * 256 * 1024, 4096)) {
                per_server_lbns.entry(r.server).or_default().push(r.lbn);
            }
        }
        for (s, lbns) in per_server_lbns {
            let mut sorted = lbns.clone();
            sorted.sort_unstable();
            assert_eq!(lbns, sorted, "server {s:?} LBNs not monotone");
        }
    }

    #[test]
    fn two_files_far_apart_on_disk() {
        let mut p = fs();
        let a = p.create("a", 1 << 20);
        let b = p.create("b", 1 << 20);
        let la = p.base_lbn(ServerId(0), a).unwrap();
        let lb = p.base_lbn(ServerId(0), b).unwrap();
        assert!(lb - la > (32 << 20) / 512, "files should be far apart");
    }

    #[test]
    fn whole_stripe_row_merges_only_across_contiguous_lbns() {
        let mut p = fs();
        let f = p.create("big", 10 << 20);
        // Two consecutive units on the same server (units 0 and 4) are
        // adjacent in the local object, hence contiguous on disk — but a
        // region covering units 0..=4 visits servers 0,1,2,3,0: the final
        // piece merges with nothing because the previous run is server 3's.
        let runs = p.resolve(f, FileRegion::new(0, 5 * 65536));
        assert_eq!(runs.len(), 5);
    }
}
