//! Per-server extent allocation: where a file's local object lives on disk.
//!
//! Local objects are laid out sequentially on each server's disk, one file
//! after another (optionally with a gap, and optionally fragmented for
//! failure-injection tests). Sequential-per-file allocation preserves the
//! file-offset → LBN monotonicity that both CFQ and DualPar's CRM rely on;
//! distinct files landing in distinct disk regions is what produces the
//! long inter-file seeks of Fig. 6(a) when two programs share a disk.

use crate::layout::FileId;
use dualpar_disk::{bytes_to_sectors, Lbn};
use serde::{Deserialize, Serialize};
use dualpar_sim::FxHashMap;

/// A contiguous run of sectors on one disk backing part of a local object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// Byte offset within the local object where this extent begins.
    pub object_offset: u64,
    /// First disk sector of this extent.
    pub lbn: Lbn,
    /// Extent length in bytes.
    pub bytes: u64,
}

/// Allocation policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocConfig {
    /// Gap left between consecutive files, in bytes (creates inter-file
    /// seek distance).
    pub inter_file_gap: u64,
    /// If nonzero, split objects into fragments of this many bytes with
    /// `fragment_gap` between them (models an aged file system).
    pub fragment_bytes: u64,
    /// Gap between fragments, in bytes.
    pub fragment_gap: u64,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            inter_file_gap: 64 << 20, // 64 MB between files
            fragment_bytes: 0,
            fragment_gap: 0,
        }
    }
}

/// Extent allocator for one server's disk.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    cfg: AllocConfig,
    capacity_sectors: u64,
    next_lbn: Lbn,
    objects: FxHashMap<FileId, Vec<Extent>>,
}

impl ExtentAllocator {
    /// Build an allocator for a disk of the given capacity.
    pub fn new(capacity_sectors: u64, cfg: AllocConfig) -> Self {
        ExtentAllocator {
            cfg,
            capacity_sectors,
            // Leave a superblock-ish region at the front.
            next_lbn: 2048,
            objects: FxHashMap::default(),
        }
    }

    /// Allocate the local object for `file` of `bytes` length.
    ///
    /// # Panics
    /// Panics if the disk is full or the file was already allocated —
    /// both are setup bugs in an experiment definition.
    pub fn allocate(&mut self, file: FileId, bytes: u64) {
        assert!(
            !self.objects.contains_key(&file),
            "file {file:?} allocated twice on this server"
        );
        let mut extents = Vec::new();
        let frag = if self.cfg.fragment_bytes == 0 {
            u64::MAX
        } else {
            self.cfg.fragment_bytes
        };
        let mut remaining = bytes;
        let mut object_offset = 0u64;
        while remaining > 0 {
            let chunk = remaining.min(frag);
            let sectors = bytes_to_sectors(chunk);
            assert!(
                self.next_lbn.saturating_add(sectors) <= self.capacity_sectors,
                "server disk full allocating {file:?}"
            );
            extents.push(Extent {
                object_offset,
                lbn: self.next_lbn,
                bytes: chunk,
            });
            self.next_lbn = self
                .next_lbn
                .saturating_add(sectors)
                .saturating_add(bytes_to_sectors(self.cfg.fragment_gap));
            object_offset += chunk;
            remaining -= chunk;
        }
        self.next_lbn = self
            .next_lbn
            .saturating_add(bytes_to_sectors(self.cfg.inter_file_gap));
        self.objects.insert(file, extents);
    }

    /// Has `file` been allocated on this server?
    pub fn is_allocated(&self, file: FileId) -> bool {
        self.objects.contains_key(&file)
    }

    /// Translate `(object_offset, len)` into disk LBN runs.
    ///
    /// # Panics
    /// Panics on access beyond the allocated object (an experiment bug).
    pub fn translate(&self, file: FileId, object_offset: u64, len: u64) -> Vec<(Lbn, u64)> {
        let extents = self
            .objects
            .get(&file)
            .unwrap_or_else(|| panic!("file {file:?} not allocated on this server"));
        if len == 0 {
            return Vec::new();
        }
        let mut runs: Vec<(Lbn, u64)> = Vec::new();
        let mut off = object_offset;
        let end = object_offset + len;
        for e in extents {
            let e_end = e.object_offset + e.bytes;
            if e_end <= off {
                continue;
            }
            if e.object_offset >= end {
                break;
            }
            let seg_start = off.max(e.object_offset);
            let seg_end = end.min(e_end);
            let within = seg_start - e.object_offset;
            // Sector-granular: sub-sector offsets round the run outward.
            let lbn = e.lbn.saturating_add(within / dualpar_disk::SECTOR_BYTES);
            let sectors = bytes_to_sectors(seg_end - seg_start);
            // Merge with previous run when contiguous.
            if let Some(last) = runs.last_mut() {
                if last.0.saturating_add(last.1) == lbn {
                    last.1 = last.1.saturating_add(sectors);
                    off = seg_end;
                    continue;
                }
            }
            runs.push((lbn, sectors));
            off = seg_end;
        }
        assert!(
            off >= end,
            "access beyond end of object: file {file:?} offset {object_offset} len {len}"
        );
        runs
    }

    /// LBN of the first extent, if allocated (for locality assertions).
    pub fn base_lbn(&self, file: FileId) -> Option<Lbn> {
        self.objects.get(&file).and_then(|e| e.first()).map(|e| e.lbn)
    }

    /// High-water mark of allocated sectors.
    pub fn sectors_used(&self) -> u64 {
        self.next_lbn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> ExtentAllocator {
        ExtentAllocator::new(1 << 30, AllocConfig::default()) // huge disk
    }

    #[test]
    fn contiguous_allocation_translates_to_one_run() {
        let mut a = alloc();
        a.allocate(FileId(1), 1 << 20);
        let runs = a.translate(FileId(1), 0, 1 << 20);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1, bytes_to_sectors(1 << 20));
    }

    #[test]
    fn offsets_map_monotonically() {
        let mut a = alloc();
        a.allocate(FileId(1), 1 << 20);
        let r1 = a.translate(FileId(1), 0, 4096);
        let r2 = a.translate(FileId(1), 65536, 4096);
        assert!(r2[0].0 > r1[0].0, "higher offset ⇒ higher LBN");
        assert_eq!(r2[0].0 - r1[0].0, 65536 / 512);
    }

    #[test]
    fn files_are_separated() {
        let mut a = alloc();
        a.allocate(FileId(1), 1 << 20);
        a.allocate(FileId(2), 1 << 20);
        let b1 = a.base_lbn(FileId(1)).unwrap();
        let b2 = a.base_lbn(FileId(2)).unwrap();
        let gap_sectors = (b2 - b1) - bytes_to_sectors(1 << 20);
        assert_eq!(gap_sectors, bytes_to_sectors(64 << 20));
    }

    #[test]
    fn fragmented_object_yields_multiple_runs() {
        let cfg = AllocConfig {
            inter_file_gap: 0,
            fragment_bytes: 256 * 1024,
            fragment_gap: 1 << 20,
        };
        let mut a = ExtentAllocator::new(1 << 30, cfg);
        a.allocate(FileId(1), 1 << 20); // 4 fragments
        let runs = a.translate(FileId(1), 0, 1 << 20);
        assert_eq!(runs.len(), 4);
        // Cross-fragment read spans two runs.
        let cross = a.translate(FileId(1), 200 * 1024, 100 * 1024);
        assert_eq!(cross.len(), 2);
        let total: u64 = cross.iter().map(|r| r.1).sum();
        assert_eq!(total, bytes_to_sectors(56 * 1024) + bytes_to_sectors(44 * 1024));
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn translate_unallocated_panics() {
        let a = alloc();
        a.translate(FileId(9), 0, 10);
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn translate_past_end_panics() {
        let mut a = alloc();
        a.allocate(FileId(1), 4096);
        a.translate(FileId(1), 0, 8192);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_allocate_panics() {
        let mut a = alloc();
        a.allocate(FileId(1), 10);
        a.allocate(FileId(1), 10);
    }

    #[test]
    fn translate_zero_len_inside_object() {
        let mut a = alloc();
        a.allocate(FileId(1), 4096);
        let runs = a.translate(FileId(1), 100, 0);
        assert!(runs.is_empty());
    }
}
