//! Round-robin striping, as PVFS2 does it.
//!
//! A file is divided into fixed-size stripe units (64 KB by default, the
//! PVFS2 default the paper uses). Unit `k` lives on server `k mod N`, at
//! local-object offset `(k div N) * stripe + (offset within unit)`. This
//! mapping gives the "good correspondence between file-level addresses and
//! disk-level addresses" (§II) that makes file-level sorting effective.

use serde::{Deserialize, Serialize};

/// Identifies a data server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(
    /// Zero-based server index.
    pub u32,
);

/// Identifies a file in the parallel file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(
    /// Opaque file number (assigned at creation).
    pub u32,
);

/// A contiguous byte range within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileRegion {
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl FileRegion {
    /// Build a region.
    pub fn new(offset: u64, len: u64) -> Self {
        FileRegion { offset, len }
    }

    #[inline]
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Do the two regions share any byte?
    pub fn overlaps(&self, other: &FileRegion) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }

    /// Is `other` entirely inside this region?
    pub fn contains(&self, other: &FileRegion) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }
}

/// A piece of a file region that lands on one server's local object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripePiece {
    /// Server holding the piece.
    pub server: ServerId,
    /// Offset of this piece in the original file.
    pub file_offset: u64,
    /// Offset within the server's local object for this file.
    pub local_offset: u64,
    /// Piece length in bytes (at most one stripe unit).
    pub len: u64,
}

/// The striping function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe unit in bytes (64 KB for PVFS2).
    pub stripe_size: u64,
    /// Servers the file is striped over.
    pub num_servers: u32,
}

impl StripeLayout {
    /// Build a layout.
    pub fn new(stripe_size: u64, num_servers: u32) -> Self {
        assert!(stripe_size > 0 && num_servers > 0);
        StripeLayout {
            stripe_size,
            num_servers,
        }
    }

    /// PVFS2 default: 64 KB units.
    pub fn pvfs2_default(num_servers: u32) -> Self {
        StripeLayout::new(64 * 1024, num_servers)
    }

    /// Which server holds the byte at `offset`.
    #[inline]
    pub fn server_of(&self, offset: u64) -> ServerId {
        ServerId(((offset / self.stripe_size) % self.num_servers as u64) as u32)
    }

    /// Local-object offset of the byte at file `offset` on its server.
    #[inline]
    pub fn local_offset_of(&self, offset: u64) -> u64 {
        let unit = offset / self.stripe_size;
        (unit / self.num_servers as u64) * self.stripe_size + offset % self.stripe_size
    }

    /// Inverse mapping: file offset of `(server, local_offset)`.
    #[inline]
    pub fn file_offset_of(&self, server: ServerId, local_offset: u64) -> u64 {
        let row = local_offset / self.stripe_size;
        let within = local_offset % self.stripe_size;
        (row * self.num_servers as u64 + server.0 as u64) * self.stripe_size + within
    }

    /// Split a file region into per-server stripe pieces, in file order.
    /// Consecutive pieces on the same server (i.e. a region no wider than
    /// one stripe row) are NOT merged here; see `Pvfs::resolve` for LBN-run
    /// merging.
    pub fn split(&self, region: FileRegion) -> Vec<StripePiece> {
        let mut pieces = Vec::new();
        let mut off = region.offset;
        let end = region.end();
        while off < end {
            let unit_end = (off / self.stripe_size + 1) * self.stripe_size;
            let len = unit_end.min(end) - off;
            pieces.push(StripePiece {
                server: self.server_of(off),
                file_offset: off,
                local_offset: self.local_offset_of(off),
                len,
            });
            off += len;
        }
        pieces
    }

    /// Bytes of local object needed on `server` to hold a file of `size`.
    pub fn local_object_size(&self, server: ServerId, size: u64) -> u64 {
        if size == 0 {
            return 0;
        }
        let full_units = size / self.stripe_size;
        let tail = size % self.stripe_size;
        let n = self.num_servers as u64;
        let s = server.0 as u64;
        // Units s, s+n, s+2n, ... < full_units are full on this server.
        let full_on_server = if full_units > s {
            (full_units - s - 1) / n + 1
        } else {
            0
        };
        let mut bytes = full_on_server * self.stripe_size;
        // The partial tail unit (index full_units) may be ours.
        if tail > 0 && full_units % n == s {
            bytes += tail;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_server_assignment() {
        let l = StripeLayout::new(64 * 1024, 4);
        assert_eq!(l.server_of(0), ServerId(0));
        assert_eq!(l.server_of(64 * 1024), ServerId(1));
        assert_eq!(l.server_of(4 * 64 * 1024), ServerId(0));
        assert_eq!(l.server_of(64 * 1024 - 1), ServerId(0));
    }

    #[test]
    fn local_offset_round_trip() {
        let l = StripeLayout::new(64 * 1024, 3);
        for off in [0u64, 1, 65_535, 65_536, 200_000, 1_000_000, 12_345_678] {
            let s = l.server_of(off);
            let lo = l.local_offset_of(off);
            assert_eq!(l.file_offset_of(s, lo), off, "offset {off}");
        }
    }

    #[test]
    fn split_covers_region_exactly() {
        let l = StripeLayout::new(64 * 1024, 3);
        let region = FileRegion::new(100_000, 300_000);
        let pieces = l.split(region);
        let mut expect = region.offset;
        for p in &pieces {
            assert_eq!(p.file_offset, expect);
            assert!(p.len <= l.stripe_size);
            expect += p.len;
        }
        assert_eq!(expect, region.end());
    }

    #[test]
    fn split_within_one_unit_is_single_piece() {
        let l = StripeLayout::new(64 * 1024, 3);
        let pieces = l.split(FileRegion::new(10, 100));
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].server, ServerId(0));
        assert_eq!(pieces[0].local_offset, 10);
    }

    #[test]
    fn local_object_size_sums_to_file_size() {
        let l = StripeLayout::new(64 * 1024, 9);
        for size in [0u64, 1, 64 * 1024, 64 * 1024 + 1, 10_000_000, 1 << 30] {
            let total: u64 = (0..9)
                .map(|s| l.local_object_size(ServerId(s), size))
                .sum();
            assert_eq!(total, size, "size {size}");
        }
    }

    #[test]
    fn region_predicates() {
        let a = FileRegion::new(0, 100);
        let b = FileRegion::new(50, 100);
        let c = FileRegion::new(100, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open ranges: [0,100) vs [100,110)
        assert!(a.contains(&FileRegion::new(10, 20)));
        assert!(!a.contains(&b));
    }
}
