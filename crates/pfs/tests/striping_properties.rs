//! Property tests for the striping bijection and resolution coverage.

use dualpar_pfs::{AllocConfig, FileRegion, Pvfs, ServerId, StripeLayout};
use proptest::prelude::*;

proptest! {
    /// offset → (server, local) → offset is the identity for any layout.
    #[test]
    fn striping_bijection(
        stripe_kb in 1u64..256,
        servers in 1u32..32,
        offset in 0u64..1_000_000_000,
    ) {
        let l = StripeLayout::new(stripe_kb * 1024, servers);
        let s = l.server_of(offset);
        let lo = l.local_offset_of(offset);
        prop_assert_eq!(l.file_offset_of(s, lo), offset);
    }

    /// split() tiles the region exactly: pieces are adjacent, in order, and
    /// each within one stripe unit.
    #[test]
    fn split_tiles_exactly(
        stripe_kb in 1u64..256,
        servers in 1u32..32,
        offset in 0u64..100_000_000,
        len in 1u64..50_000_000,
    ) {
        let l = StripeLayout::new(stripe_kb * 1024, servers);
        let r = FileRegion::new(offset, len);
        let mut expect = offset;
        for p in l.split(r) {
            prop_assert_eq!(p.file_offset, expect);
            prop_assert!(p.len > 0 && p.len <= l.stripe_size);
            prop_assert_eq!(p.server, l.server_of(p.file_offset));
            prop_assert_eq!(p.local_offset, l.local_offset_of(p.file_offset));
            expect += p.len;
        }
        prop_assert_eq!(expect, r.end());
    }

    /// local_object_size never differs across servers by more than one
    /// stripe unit and always sums to the file size.
    #[test]
    fn object_sizes_balanced(
        stripe_kb in 1u64..256,
        servers in 1u32..16,
        size in 0u64..1_000_000_000,
    ) {
        let l = StripeLayout::new(stripe_kb * 1024, servers);
        let sizes: Vec<u64> = (0..servers).map(|s| l.local_object_size(ServerId(s), size)).collect();
        prop_assert_eq!(sizes.iter().sum::<u64>(), size);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= l.stripe_size);
    }

    /// Full resolution covers the requested bytes exactly once, in order.
    #[test]
    fn resolve_full_coverage(
        servers in 1u32..10,
        offset in 0u64..(8u64 << 20),
        len in 1u64..(4u64 << 20),
    ) {
        let mut p = Pvfs::new(servers, 64 * 1024, 1 << 32, AllocConfig::default());
        let f = p.create("f", 16 << 20);
        let region = FileRegion::new(offset, len);
        let runs = p.resolve(f, region);
        let mut off = region.offset;
        for r in &runs {
            prop_assert_eq!(r.file_offset, off);
            prop_assert!(r.bytes > 0);
            // each run's sector span is big enough for its bytes
            prop_assert!(r.sectors * 512 >= r.bytes);
            off += r.bytes;
        }
        prop_assert_eq!(off, region.end());
    }

    /// Per-server LBNs are monotone in file offset (the property that makes
    /// file-level sorting effective at the disk).
    #[test]
    fn per_server_lbn_monotone(servers in 1u32..10, step_kb in 1u64..512) {
        let mut p = Pvfs::new(servers, 64 * 1024, 1 << 32, AllocConfig::default());
        let f = p.create("f", 32 << 20);
        let step = step_kb * 1024;
        let mut last: std::collections::HashMap<u32, u64> = Default::default();
        let mut off = 0;
        while off + 4096 <= 32 << 20 {
            for r in p.resolve(f, FileRegion::new(off, 4096)) {
                if let Some(&prev) = last.get(&r.server.0) {
                    prop_assert!(r.lbn >= prev, "LBN regressed on server {}", r.server.0);
                }
                last.insert(r.server.0, r.lbn);
            }
            off += step;
        }
    }
}
