//! Property tests for the DES engine invariants promised in DESIGN.md §7.

use dualpar_sim::{DetRng, EventQueue, FifoResource, OnlineStats, SimDuration, SimTime, Slab};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Events always pop in nondecreasing time order, and every live event
    /// is delivered exactly once.
    #[test]
    fn event_queue_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped.push(idx);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Cancelled events are never delivered; everything else is.
    #[test]
    fn event_queue_cancellation(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*id);
            } else {
                expected.push(*i);
            }
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, i)| i).collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    /// A FIFO resource is work-conserving and never overlaps service
    /// intervals; total busy time equals the sum of service demands.
    #[test]
    fn fifo_no_overlap(jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(arr, _)| arr);
        let mut r = FifoResource::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = 0u64;
        for &(arr, svc) in &sorted {
            let (start, end) = r.accept(SimTime(arr), SimDuration(svc));
            prop_assert!(start >= SimTime(arr));
            prop_assert!(start >= prev_end);
            prop_assert_eq!(end, start + SimDuration(svc));
            prev_end = end;
            total += svc;
        }
        prop_assert_eq!(r.total_busy(), SimDuration(total));
    }

    /// Deterministic RNG streams replay identically.
    #[test]
    fn rng_replays(seed in any::<u64>(), label in "[a-z]{1,12}", n in 1usize..200) {
        let mut a = DetRng::for_stream(seed, &label);
        let mut b = DetRng::for_stream(seed, &label);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Generational slab: under any interleaving of inserts and removes,
    /// live keys always resolve to their own value, and a removed key is
    /// dead forever — even after its slot is recycled, the stale key is
    /// detected (returns `None`) rather than aliasing the new occupant.
    /// Raw key values are never repeated, so ids derived from them
    /// (sub-request ids in the cluster engine) can't collide either.
    #[test]
    fn slab_stale_keys_never_alias(ops in proptest::collection::vec((any::<bool>(), 0u16..64), 1..300)) {
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<(dualpar_sim::SlabKey, u64)> = Vec::new();
        let mut dead: Vec<dualpar_sim::SlabKey> = Vec::new();
        let mut raws: HashMap<u64, ()> = HashMap::new();
        let mut next_val = 0u64;
        for &(is_insert, pick) in &ops {
            if is_insert || live.is_empty() {
                let key = slab.insert(next_val);
                prop_assert!(raws.insert(key.raw(), ()).is_none(), "raw key reused");
                live.push((key, next_val));
                next_val += 1;
            } else {
                let (key, val) = live.swap_remove(pick as usize % live.len());
                prop_assert_eq!(slab.remove(key), Some(val));
                dead.push(key);
            }
            // Every live key still maps to its own value...
            for &(key, val) in &live {
                prop_assert_eq!(slab.get(key).copied(), Some(val));
            }
            // ...and every dead key stays dead, recycled slot or not.
            for &key in &dead {
                prop_assert!(slab.get(key).is_none(), "stale key resolved");
                prop_assert!(!slab.contains(key));
            }
            prop_assert_eq!(slab.len(), live.len());
        }
    }

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn stats_merge_associative(xs in proptest::collection::vec(-1e6f64..1e6, 2..200), cut in 1usize..199) {
        let cut = cut.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..cut].iter().for_each(|&x| a.push(x));
        xs[cut..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance().abs()));
    }
}
