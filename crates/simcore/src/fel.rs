//! Indexed future-event list: a hierarchical timing wheel over the
//! generational [`Slab`].
//!
//! The previous [`EventQueue`] was a `BinaryHeap` with two side
//! `FxHashSet`s (`cancelled`, `pending`): every schedule/cancel/pop paid
//! O(log n) sift work plus two hash probes, and a cancelled-but-unreached
//! entry stayed in the heap (and the `cancelled` set) for the rest of the
//! run — lazy deletion never compacts. This replacement indexes events
//! instead of comparing them:
//!
//! * **Storage.** Every scheduled event lives in a generational
//!   [`Slab`] slot; [`EventId`] wraps the slot's [`SlabKey`] plus a
//!   per-queue instance tag. `cancel` is an O(1) eager `Slab::remove`
//!   (the payload drops immediately — no tombstones, no unbounded
//!   growth), a stale id misses on the generation check, and an id minted
//!   by a *different* queue instance is rejected by the tag before it can
//!   alias an unrelated slot.
//! * **Ordering.** Time is bucketed into ticks of 2^[`TICK_SHIFT`] ns.
//!   The wheel has [`LEVELS`] levels of [`SLOTS`] buckets; an event's
//!   level is the highest [`LEVEL_BITS`]-bit block where its tick differs
//!   from the cursor, its slot that block's value — near-horizon events
//!   land in level 0 (one tick per bucket), far events coarsen into the
//!   overflow levels and cascade down as the cursor approaches (each
//!   event moves at most `LEVELS - 1` times, so scheduling stays
//!   amortised O(1)). Per-level occupancy bitmaps make "next non-empty
//!   bucket" a handful of word scans.
//! * **Determinism.** Pop order is exactly ascending `(time, seq)` — the
//!   same total order the old heap produced. Bucket membership only
//!   partitions events by tick; within the current tick the drained
//!   bucket is sorted by `(time, seq)` into the `ready` run, and late
//!   arrivals for the same tick insert in sorted position. Same-time
//!   FIFO therefore survives any schedule/cancel interleaving, which the
//!   oracle-equivalence property test (against the retained heap
//!   implementation in the `event` test module) pins down.
//!
//! The cursor only advances inside [`EventQueue::pop`], and only to the
//! tick actually popped, so `tick(now) == cur_tick` holds at every public
//! API boundary — the invariant that lets `schedule` route same-tick
//! events straight into the ready run and place everything else strictly
//! ahead of the cursor. [`EventQueue::peek_time`] deliberately does *not*
//! advance the cursor (a later `schedule` may still target any time
//! `>= now`, which can precede the next queued event).

use crate::slab::{Slab, SlabKey};
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Opaque handle that identifies a scheduled event so it can be cancelled.
/// Carries the issuing queue's instance tag: a handle presented to any
/// other queue instance is rejected instead of aliasing an unrelated slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    queue: u64,
    key: SlabKey,
}

/// Nanoseconds per tick, as a shift: 1 tick = 1024 ns (~1 µs). Finer than
/// any scheduling quantum in the engine (cache hits are hundreds of ns but
/// same-tick events are ordered exactly by `(time, seq)` anyway), coarse
/// enough that one 256-slot level spans ~262 µs of near horizon.
const TICK_SHIFT: u32 = 10;
/// Bits per wheel level: 256 slots each.
const LEVEL_BITS: u32 = 8;
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover the full 54-bit tick space (the top levels are
/// the far-event overflow: one level-6 bucket spans ~9 simulated years).
const LEVELS: usize = (64 - TICK_SHIFT as usize).div_ceil(LEVEL_BITS as usize);
const WORDS: usize = SLOTS / 64;
/// `Entry::bucket` sentinel for "in the ready run".
const LOC_READY: u16 = u16::MAX;

// The wheel must be able to index every representable tick.
const _: () = assert!(LEVELS * LEVEL_BITS as usize >= 64 - TICK_SHIFT as usize);
const _: () = assert!(LEVELS * SLOTS < LOC_READY as usize);

/// Monotone source of queue-instance tags. The tag only discriminates
/// `EventId`s between queue instances (it never orders events or reaches
/// any serialized output), so cross-thread allocation order is harmless
/// for replay determinism.
static QUEUE_TAGS: AtomicU64 = AtomicU64::new(1);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    /// Bucket index (`level * SLOTS + slot`), or [`LOC_READY`].
    bucket: u16,
    /// Position inside the bucket's vec (meaningless in the ready run,
    /// whose order is maintained by binary search instead).
    pos: u32,
    payload: E,
}

/// A deterministic future-event list. Drop-in API replacement for the old
/// binary-heap queue: `schedule`/`cancel`/`pop`/`peek_time`/`len`/`now`
/// behave identically (the property tests compare against the retained
/// heap oracle), only `EventId` changed representation.
pub struct EventQueue<E> {
    slab: Slab<Entry<E>>,
    /// `LEVELS * SLOTS` buckets of slab keys. Intra-bucket order is
    /// immaterial (drains sort by `(time, seq)`), so cancellation can
    /// `swap_remove`.
    buckets: Vec<Vec<SlabKey>>,
    /// One bit per bucket, per level: "this bucket is non-empty".
    occupancy: [[u64; WORDS]; LEVELS],
    /// The current tick's events, sorted *descending* by `(time, seq)`:
    /// pop takes the minimum from the back in O(1).
    ready: Vec<(SimTime, u64, SlabKey)>,
    /// Cursor: every wheel event's tick is strictly greater; the ready
    /// run holds exactly the events at this tick.
    cur_tick: u64,
    next_seq: u64,
    now: SimTime,
    tag: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            slab: Slab::new(),
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [[0; WORDS]; LEVELS],
            ready: Vec::new(),
            cur_tick: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            tag: QUEUE_TAGS.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) events still pending. Exact: the
    /// slab holds precisely the scheduled-but-neither-fired-nor-cancelled
    /// entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots ever allocated: the queue's high-water mark of simultaneously
    /// live events. Cancellation frees its slot eagerly, so churn (endless
    /// schedule/cancel) does not grow this — the churn regression test
    /// pins that down.
    pub fn capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — an event in the past is
    /// always a simulation bug, and catching it here localises the error.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.slab.insert(Entry {
            time: at,
            seq,
            bucket: LOC_READY,
            pos: 0,
            payload,
        });
        let tick = at.nanos() >> TICK_SHIFT;
        if tick == self.cur_tick {
            self.ready_insert(at, seq, key);
        } else {
            self.place(key, tick);
        }
        EventId {
            queue: self.tag,
            key,
        }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling an already-fired id, a stale id, or an id
    /// minted by a different queue instance is a no-op returning `false`.
    ///
    /// Eager: the slot is freed and the entry leaves its bucket here, so
    /// cancelled events occupy nothing until the clock reaches them.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.queue != self.tag {
            // Foreign queue's handle: its key could coincidentally name a
            // live slot here (twin queues hand out identical key
            // sequences), so reject before touching the slab.
            return false;
        }
        let Some(entry) = self.slab.remove(id.key) else {
            return false; // already fired or already cancelled
        };
        if entry.bucket == LOC_READY {
            let pos = self
                .ready
                .partition_point(|&(t, s, _)| (t, s) > (entry.time, entry.seq));
            crate::strict_assert!(
                self.ready.get(pos).is_some_and(|&(_, _, k)| k == id.key),
                "cancelled entry missing from its ready slot"
            );
            self.ready.remove(pos);
        } else {
            let b = entry.bucket as usize;
            let pos = entry.pos as usize;
            crate::strict_assert!(
                self.buckets[b].get(pos).copied() == Some(id.key),
                "cancelled entry missing from its bucket slot"
            );
            self.buckets[b].swap_remove(pos);
            if let Some(&moved) = self.buckets[b].get(pos) {
                let Some(m) = self.slab.get_mut(moved) else {
                    unreachable!("bucket holds only live keys")
                };
                m.pos = entry.pos;
            }
            if self.buckets[b].is_empty() {
                let (level, slot) = (b / SLOTS, b % SLOTS);
                self.occupancy[level][slot / 64] &= !(1u64 << (slot % 64));
            }
        }
        true
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        let (t, _seq, key) = self.ready.pop()?;
        let Some(entry) = self.slab.remove(key) else {
            unreachable!("ready run holds only live keys")
        };
        debug_assert!(t >= self.now, "event queue time inversion");
        self.now = t;
        Some((t, entry.payload))
    }

    /// Timestamp of the next live event without popping it. Does not move
    /// the wheel cursor: a later `schedule` may target any time `>= now`,
    /// which can still precede the next queued event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if let Some(&(t, _, _)) = self.ready.last() {
            return Some(t);
        }
        let (level, slot) = self.first_bucket()?;
        // The first bucket in cursor order covers the earliest occupied
        // tick range, so the global minimum timestamp is its minimum.
        self.buckets[level * SLOTS + slot]
            .iter()
            .filter_map(|&k| self.slab.get(k))
            .map(|e| e.time)
            .min()
    }

    /// Insert into the ready run, keeping it sorted descending by
    /// `(time, seq)`.
    fn ready_insert(&mut self, t: SimTime, seq: u64, key: SlabKey) {
        let pos = self.ready.partition_point(|&(rt, rs, _)| (rt, rs) > (t, seq));
        self.ready.insert(pos, (t, seq, key));
    }

    /// File `key` into the wheel bucket for `tick`. The level is the
    /// highest bit-block where `tick` differs from the cursor; the slot is
    /// that block's value in `tick`.
    fn place(&mut self, key: SlabKey, tick: u64) {
        debug_assert!(tick > self.cur_tick, "wheel placement behind the cursor");
        let diff = tick ^ self.cur_tick;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((tick >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        let b = level * SLOTS + slot;
        let pos = self.buckets[b].len() as u32;
        self.buckets[b].push(key);
        self.occupancy[level][slot / 64] |= 1u64 << (slot % 64);
        let Some(e) = self.slab.get_mut(key) else {
            unreachable!("placing a key that was just inserted")
        };
        e.bucket = b as u16;
        e.pos = pos;
    }

    /// First non-empty bucket in cursor order — the one holding the
    /// globally earliest events — or `None` if the wheel is empty. Scan
    /// order is level 0 upward; within a level only slots strictly after
    /// the cursor's position can be occupied (same-tick events live in the
    /// ready run, never the wheel).
    fn first_bucket(&self) -> Option<(usize, usize)> {
        for (level, words) in self.occupancy.iter().enumerate() {
            let p = ((self.cur_tick >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
            if let Some(slot) = first_set_after(words, p) {
                return Some((level, slot));
            }
        }
        None
    }

    /// Advance the cursor to the earliest occupied tick, cascading
    /// higher-level buckets down until that tick's events sit sorted in
    /// `ready`. Returns `false` when no events remain anywhere.
    fn refill(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        loop {
            let Some((level, slot)) = self.first_bucket() else {
                return false;
            };
            let shift = LEVEL_BITS as usize * level;
            // Jump to the bucket's base tick: blocks above `level` keep the
            // cursor's values, block `level` becomes `slot`, lower blocks
            // zero. Every event in the bucket has a tick >= this base, so
            // the cursor never overtakes an event.
            let low_mask = (1u64 << (shift + LEVEL_BITS as usize)) - 1;
            self.cur_tick = (self.cur_tick & !low_mask) | ((slot as u64) << shift);
            let b = level * SLOTS + slot;
            self.occupancy[level][slot / 64] &= !(1u64 << (slot % 64));
            while let Some(key) = self.buckets[b].pop() {
                let Some(e) = self.slab.get_mut(key) else {
                    unreachable!("bucket holds only live keys")
                };
                let (t, seq) = (e.time, e.seq);
                let tick = t.nanos() >> TICK_SHIFT;
                if tick == self.cur_tick {
                    e.bucket = LOC_READY;
                    self.ready.push((t, seq, key));
                } else {
                    self.place(key, tick);
                }
            }
            if !self.ready.is_empty() {
                // Descending (time, seq): pop takes the minimum from the
                // back. One sort per drained tick replaces per-pop sifts.
                self.ready
                    .sort_unstable_by_key(|&(t, s, _)| std::cmp::Reverse((t, s)));
                return true;
            }
        }
    }

    /// Test hook: total keys parked in wheel buckets (excludes the ready
    /// run). With eager cancellation this tracks live far events only.
    #[cfg(test)]
    fn bucket_entries(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

/// Lowest set bit at an index strictly greater than `p`, if any.
#[inline]
fn first_set_after(bits: &[u64; WORDS], p: usize) -> Option<usize> {
    let start = p + 1;
    if start >= SLOTS {
        return None;
    }
    let mut w = start / 64;
    let mut word = bits[w] & (!0u64 << (start % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == WORDS {
            return None;
        }
        word = bits[w];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HeapEventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_after_fire_is_noop_and_len_stays_consistent() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert_eq!(q.len(), 2);
        let _ = q.pop(); // "a" fires
        assert!(!q.cancel(id), "cancelling a fired event must be a no-op");
        assert_eq!(q.len(), 1);
        let id2 = q.schedule(SimTime(3), "c");
        assert!(q.cancel(id2));
        assert!(!q.cancel(id2), "double cancel must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(42), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, SimTime(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_fired_event_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        // Already fired; cancel is accepted but has no effect on future pops.
        q.cancel(a);
        q.schedule(SimTime(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
    }

    #[test]
    fn cancellation_has_one_source_of_truth() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        let b = q.schedule(SimTime(2), "b");
        let c = q.schedule(SimTime(3), "c");
        assert!(q.cancel(b));
        // Cancel, then cancel again: second is a no-op and len is exact.
        assert!(!q.cancel(b));
        assert_eq!(q.len(), 2);
        // Peek must skip the cancelled entry without resurrecting it.
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
        // Cancelling fired ids after drain stays a no-op.
        assert!(!q.cancel(a));
        assert!(!q.cancel(c));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn rescheduling_at_same_time_preserves_order_across_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 0);
        q.pop();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(1), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn events_across_tick_and_level_boundaries_pop_in_order() {
        // Straddle level-0/level-1/far boundaries: ns deltas from sub-tick
        // to hours, interleaved, must still pop in global (time, seq) order.
        let mut q = EventQueue::new();
        let times: Vec<u64> = vec![
            1,
            1023,
            1024, // next tick
            1 << 18,
            (1 << 18) + 1,
            1 << 26, // level-2 territory
            3_600_000_000_000, // one hour
            7_200_000_000_000,
            5,
            1 << 30,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.nanos(), e)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn foreign_and_stale_ids_cancel_nothing() {
        // Regression (the EventId-aliasing bug): the old queue's bare
        // per-queue seq meant q2.cancel(q1's id) could kill an unrelated
        // pending event. Twin queues now hand out identical slab keys but
        // distinct instance tags, so the foreign id must bounce.
        let mut q1 = EventQueue::new();
        let mut q2 = EventQueue::new();
        let id1 = q1.schedule(SimTime(10), "q1-event");
        let _id2 = q2.schedule(SimTime(10), "q2-event");
        assert!(!q2.cancel(id1), "foreign id must be rejected");
        assert_eq!(q2.len(), 1, "foreign cancel must not touch q2's event");
        assert_eq!(q2.pop().map(|(_, e)| e), Some("q2-event"));
        // Stale id: fired on its own queue, then its slot gets reused.
        assert_eq!(q1.pop().map(|(_, e)| e), Some("q1-event"));
        let id3 = q1.schedule(SimTime(20), "reuses-slot");
        assert!(!q1.cancel(id1), "stale id must miss the reused slot");
        assert_eq!(q1.len(), 1);
        assert!(q1.cancel(id3));
    }

    #[test]
    fn churn_stays_bounded_by_live_events() {
        // Regression (the lazy-deletion leak): schedule/cancel churn over
        // simulated hours used to leave every cancelled entry in the heap
        // and the cancelled-set until the clock reached it. With eager
        // cancellation, slab capacity and bucket occupancy stay bounded by
        // peak liveness (2 here), however long the churn runs.
        let mut q = EventQueue::new();
        let hour = 3_600_000_000_000u64;
        let mut keep = q.schedule(SimTime(hour), 0u64);
        for i in 1..10_000u64 {
            let id = q.schedule(SimTime(i.saturating_mul(hour)), i);
            assert!(q.cancel(keep));
            keep = id;
            assert_eq!(q.len(), 1);
        }
        assert!(
            q.capacity() <= 2,
            "slab grew to {} slots under churn with 1 live event",
            q.capacity()
        );
        assert!(
            q.bucket_entries() <= 1,
            "cancelled entries lingering in buckets: {}",
            q.bucket_entries()
        );
        // Interleave pops so the wheel also advances across hours.
        let mut last = SimTime::ZERO;
        q.schedule(SimTime(2 * hour), 100);
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.bucket_entries(), 0);
    }

    /// One scripted operation over both queues.
    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule at `now + delta`.
        Schedule(u64),
        /// Cancel the id issued `k` schedules ago (mod issued), if any.
        Cancel(usize),
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Deltas spanning same-tick, near-horizon, and far-overflow.
            (0u64..5_000_000_000).prop_map(Op::Schedule),
            (0usize..64).prop_map(Op::Cancel),
            Just(Op::Pop),
            Just(Op::Pop),
            Just(Op::Peek),
        ]
    }

    proptest! {
        /// The wheel is observationally equivalent to the old binary-heap
        /// queue across arbitrary schedule/cancel/pop/peek interleavings:
        /// identical pop sequences (same-time FIFO included), identical
        /// cancel verdicts, identical peeks, exact `len()` at every step.
        #[test]
        fn fel_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut fel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut ids = Vec::new();
            for op in ops {
                match op {
                    Op::Schedule(delta) => {
                        let at = fel.now().saturating_add(crate::SimDuration(delta));
                        let fid = fel.schedule(at, ids.len());
                        let hid = heap.schedule(at, ids.len());
                        ids.push((fid, hid));
                    }
                    Op::Cancel(k) => {
                        if !ids.is_empty() {
                            let (fid, hid) = ids[k % ids.len()];
                            prop_assert_eq!(fel.cancel(fid), heap.cancel(hid));
                        }
                    }
                    Op::Pop => {
                        prop_assert_eq!(fel.pop(), heap.pop());
                        prop_assert_eq!(fel.now(), heap.now());
                    }
                    Op::Peek => {
                        prop_assert_eq!(fel.peek_time(), heap.peek_time());
                    }
                }
                prop_assert_eq!(fel.len(), heap.len());
            }
            // Drain both: the tails must agree event-for-event.
            loop {
                let (f, h) = (fel.pop(), heap.pop());
                prop_assert_eq!(f, h);
                if f.is_none() {
                    break;
                }
            }
        }
    }
}
