//! # dualpar-sim
//!
//! Deterministic discrete-event simulation engine underpinning the DualPar
//! reproduction. Provides:
//!
//! * [`time`] — integer-nanosecond simulated clock types;
//! * [`fel`] — a stable-FIFO future-event list with O(1) generational
//!   cancellation (hierarchical timing wheel over a slab);
//! * [`rng`] — labelled deterministic random streams;
//! * [`stats`] — online statistics, time series, exact percentiles;
//! * [`resource`] — FIFO resources and latency/bandwidth links;
//! * [`slab`] — generational slab storage with stale-handle detection;
//! * [`pool`] — order-preserving scoped worker pool (determinism-safe
//!   parallel maps shared by the suite runner and the lint scanner);
//! * [`shard`] — conservative-parallel window runtime (per-shard event
//!   windows between barrier exchanges, deterministic batch merge).
//!
//! Everything is single-threaded and allocation-conscious; determinism is a
//! hard guarantee (same seed ⇒ bit-identical run), which the property tests
//! in `tests/` enforce.

#[cfg(test)]
pub(crate) mod event;
pub mod fel;
pub mod hash;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod time;

/// Assert a simulation invariant in the *expanding* crate's hot path.
///
/// Expands to a real `assert!` when the expanding crate is compiled with its
/// `strict-invariants` cargo feature or under `cfg(test)`; otherwise the
/// whole check is a constant-false branch the optimiser removes, so
/// instrumented release paths stay zero-cost. Crates using this macro must
/// declare a `strict-invariants` feature (the `cfg!` is evaluated at the
/// expansion site, not here).
#[macro_export]
macro_rules! strict_assert {
    ($($arg:tt)*) => {
        if cfg!(any(test, feature = "strict-invariants")) {
            assert!($($arg)*);
        }
    };
}

/// Equality-asserting companion of [`strict_assert!`] — same gating rules.
#[macro_export]
macro_rules! strict_assert_eq {
    ($($arg:tt)*) => {
        if cfg!(any(test, feature = "strict-invariants")) {
            assert_eq!($($arg)*);
        }
    };
}

pub use fel::{EventId, EventQueue};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use pool::{parallel_map, parallel_map_prioritized, run_with_deadline, DeadlineError};
pub use resource::{FifoResource, Link};
pub use rng::DetRng;
pub use shard::{merge_batches, ShardPool, WindowCell};
pub use slab::{Slab, SlabKey};
pub use stats::{OnlineStats, Samples, TimeSeries};
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
