//! # dualpar-sim
//!
//! Deterministic discrete-event simulation engine underpinning the DualPar
//! reproduction. Provides:
//!
//! * [`time`] — integer-nanosecond simulated clock types;
//! * [`event`] — a stable-FIFO future-event list with cancellation;
//! * [`rng`] — labelled deterministic random streams;
//! * [`stats`] — online statistics, time series, exact percentiles;
//! * [`resource`] — FIFO resources and latency/bandwidth links.
//!
//! Everything is single-threaded and allocation-conscious; determinism is a
//! hard guarantee (same seed ⇒ bit-identical run), which the property tests
//! in `tests/` enforce.

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use resource::{FifoResource, Link};
pub use rng::DetRng;
pub use stats::{OnlineStats, Samples, TimeSeries};
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
