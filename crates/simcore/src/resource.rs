//! Simple queueing resources shared by the network and server models.

use crate::time::{SimDuration, SimTime};

/// A work-conserving FIFO server: requests are serialised, each occupying the
/// resource for its service time. Models a NIC or any single-channel link.
///
/// The caller asks "if a job arrives at `now` needing `service` time, when
/// does it start and finish?"; the resource tracks its own backlog.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    /// Time the resource becomes free of all currently accepted work.
    free_at: SimTime,
    /// Total busy time accepted, for utilisation accounting.
    busy: SimDuration,
    accepted: u64,
}

impl FifoResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept a job arriving at `now` with the given service demand.
    /// Returns `(start, end)` of its service interval.
    pub fn accept(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let start = now.max_of(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.accepted += 1;
        (start, end)
    }

    /// When the current backlog drains.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Queueing delay a job arriving `now` would experience before service.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.since(now)
    }

    pub fn total_busy(&self) -> SimDuration {
        self.busy
    }

    pub fn jobs_accepted(&self) -> u64 {
        self.accepted
    }

    /// Fraction of `[0, horizon]` spent busy.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon.nanos() == 0 {
            return 0.0;
        }
        (self.busy.nanos() as f64 / horizon.nanos() as f64).min(1.0)
    }
}

/// A bandwidth-and-latency pipe: service time is `latency + size/bandwidth`,
/// serialised FIFO. This is the model used for every NIC in the cluster.
#[derive(Debug, Clone)]
pub struct Link {
    resource: FifoResource,
    pub latency: SimDuration,
    pub bytes_per_sec: u64,
}

impl Link {
    pub fn new(latency: SimDuration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        Link {
            resource: FifoResource::new(),
            latency,
            bytes_per_sec,
        }
    }

    /// Time to push `bytes` through an unloaded link (excluding queueing).
    pub fn unloaded_transfer(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::for_transfer(bytes, self.bytes_per_sec)
    }

    /// Send a message of `bytes` entering the link at `now`; returns delivery
    /// time at the far end. The wire occupancy (serialisation) queues behind
    /// earlier messages; the propagation latency is added after transmission.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let serialisation = SimDuration::for_transfer(bytes, self.bytes_per_sec);
        let (_, tx_done) = self.resource.accept(now, serialisation);
        tx_done + self.latency
    }

    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        self.resource.utilisation(horizon)
    }

    pub fn total_busy(&self) -> SimDuration {
        self.resource.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialises_jobs() {
        let mut r = FifoResource::new();
        let (s1, e1) = r.accept(SimTime(0), SimDuration(100));
        let (s2, e2) = r.accept(SimTime(10), SimDuration(50));
        assert_eq!((s1, e1), (SimTime(0), SimTime(100)));
        assert_eq!((s2, e2), (SimTime(100), SimTime(150)));
    }

    #[test]
    fn fifo_idle_gap_not_counted_busy() {
        let mut r = FifoResource::new();
        r.accept(SimTime(0), SimDuration(100));
        r.accept(SimTime(1000), SimDuration(100));
        assert_eq!(r.total_busy(), SimDuration(200));
        assert_eq!(r.free_at(), SimTime(1100));
        assert!((r.utilisation(SimTime(2000)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn backlog_reflects_queue() {
        let mut r = FifoResource::new();
        r.accept(SimTime(0), SimDuration(100));
        assert_eq!(r.backlog(SimTime(30)), SimDuration(70));
        assert_eq!(r.backlog(SimTime(200)), SimDuration::ZERO);
    }

    #[test]
    fn link_adds_latency_after_serialisation() {
        // 1000 B at 1000 B/s = 1 s serialisation, plus 10 ms latency.
        let mut l = Link::new(SimDuration::from_millis(10), 1000);
        let delivered = l.send(SimTime::ZERO, 1000);
        assert_eq!(delivered, SimTime(1_010_000_000));
        // Second message queues behind the first's serialisation only.
        let d2 = l.send(SimTime::ZERO, 1000);
        assert_eq!(d2, SimTime(2_010_000_000));
    }

    #[test]
    fn link_unloaded_estimate() {
        let l = Link::new(SimDuration::from_micros(50), 125_000_000);
        let d = l.unloaded_transfer(125_000); // 1 ms at 125 MB/s
        assert_eq!(d, SimDuration::from_micros(1050));
    }
}
