//! Online statistics and time-series recorders used by the metric collectors.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// Welford online mean/variance plus min/max.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time-binned counter, used to build throughput timelines (Fig. 7a) and
/// per-window averages such as seek distance per sampling slot (Fig. 7b).
#[derive(Debug, Clone, Serialize)]
pub struct TimeSeries {
    bin: SimDuration,
    /// Sum of values per bin.
    sums: Vec<f64>,
    /// Sample count per bin.
    counts: Vec<u64>,
}

impl TimeSeries {
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin.nanos() > 0, "bin width must be positive");
        TimeSeries {
            bin,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn bin_index(&self, at: SimTime) -> usize {
        (at.nanos() / self.bin.nanos()) as usize
    }

    /// Add `value` to the bin containing `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = self.bin_index(at);
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    pub fn num_bins(&self) -> usize {
        self.sums.len()
    }

    /// Per-bin sums (e.g. bytes per second for throughput timelines).
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Per-bin averages; bins with no samples yield 0.
    pub fn averages(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Sum of a bin expressed as a rate per second.
    pub fn rate_per_sec(&self, bin_idx: usize) -> f64 {
        let secs = self.bin.as_secs_f64();
        self.sums.get(bin_idx).copied().unwrap_or(0.0) / secs
    }

    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }
}

/// An exact-percentile reservoir: stores all samples. Experiments in this
/// repo produce at most a few million samples, so exactness is affordable and
/// avoids quantile-sketch approximation error in reproduced tables.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    pub fn new() -> Self {
        Samples::default()
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Exact percentile by nearest-rank; `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.values.len() - 1) as f64).round() as usize;
        self.values[rank.min(self.values.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn timeseries_bins_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_millis(100), 10.0);
        ts.record(SimTime::from_millis(900), 20.0);
        ts.record(SimTime::from_millis(1500), 5.0);
        assert_eq!(ts.num_bins(), 2);
        assert_eq!(ts.sums(), &[30.0, 5.0]);
        assert_eq!(ts.rate_per_sec(0), 30.0);
        assert_eq!(ts.averages(), vec![15.0, 5.0]);
        assert_eq!(ts.total(), 35.0);
    }

    #[test]
    fn timeseries_empty_bins_average_zero() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_secs(2), 6.0);
        assert_eq!(ts.averages(), vec![0.0, 0.0, 6.0]);
    }

    #[test]
    fn percentiles_exact() {
        let mut s = Samples::new();
        for v in (1..=100).rev() {
            s.push(v as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(50.0), 51.0); // nearest-rank on 0..=99 index
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }
}
