//! Order-preserving scoped worker pool.
//!
//! The shared work-queue pattern every parallel consumer in the workspace
//! uses (the suite runner, the source-lint file scanner): workers claim
//! items from an [`AtomicUsize`] cursor over a claim-order permutation and
//! deliver `(original_index, result)` over an [`mpsc`] channel, so no locks
//! are held anywhere (the workspace lint bans `std::sync::Mutex`, and the
//! claim/deliver pattern does not want one anyway). Results are re-ordered
//! by input index before returning, which is what makes the pool safe for
//! byte-identity guarantees: claim order changes *which worker* runs an
//! item and *when* — never the item's private computation or its slot in
//! the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Why [`run_with_deadline`] failed to produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineError {
    /// The closure was still running when the deadline expired. The worker
    /// thread is abandoned (detached), not killed — the caller must treat
    /// any state it shares with the closure as lost.
    TimedOut,
    /// The closure panicked before producing a result.
    Panicked,
}

/// Run `f` on a detached thread, waiting at most `timeout` for its result.
///
/// This is the pool's hung-work containment primitive: a simulation stuck
/// in an infinite loop cannot be interrupted cooperatively, so the only
/// portable containment is to run it on its own thread and abandon that
/// thread on expiry. The abandoned thread keeps running (and keeps its
/// memory) until the process exits — acceptable for a batch runner that
/// reports the failure and moves on, not for anything long-lived.
///
/// Timing uses [`mpsc::Receiver::recv_timeout`], so no wall-clock reads
/// happen here (the workspace lint bans `Instant::now` outside allowed
/// call sites).
pub fn run_with_deadline<R, F>(f: F, timeout: Duration) -> Result<R, DeadlineError>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send failure means the caller already gave up; nothing to do.
        let _ = tx.send(f());
    });
    rx.recv_timeout(timeout).map_err(|e| match e {
        mpsc::RecvTimeoutError::Timeout => DeadlineError::TimedOut,
        // The sender dropped without sending: the closure panicked.
        mpsc::RecvTimeoutError::Disconnected => DeadlineError::Panicked,
    })
}

/// Order-preserving parallel map over `items` with up to `jobs` worker
/// threads. `f(index, item)` runs exactly once per item; results come
/// back in input order. `jobs <= 1` degenerates to a plain serial map on
/// the calling thread (no pool, identical results by construction).
///
/// A panicking worker propagates its panic out of this call after the
/// scope joins — no result is silently dropped.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let order: Vec<usize> = (0..items.len()).collect();
    parallel_map_in_claim_order(items, jobs, &order, f)
}

/// Like [`parallel_map`], but with priorities: workers claim items in
/// descending `priority` order (ties break toward the earlier index).
/// Results still come back in *input* order — the priority only decides
/// when each item starts, which is what makes longest-first scheduling
/// safe for byte-identity guarantees.
pub fn parallel_map_prioritized<T, R, F>(items: &[T], jobs: usize, priority: &[u64], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_eq!(
        priority.len(),
        items.len(),
        "one priority per item required"
    );
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Stable sort: equal priorities keep their input order.
    order.sort_by_key(|&i| std::cmp::Reverse(priority[i]));
    parallel_map_in_claim_order(items, jobs, &order, f)
}

/// The shared work queue underneath both maps: `claim_order` is the queue
/// content (a permutation of the item indices); workers steal the next
/// unclaimed position with a single `fetch_add` on the cursor. `jobs <= 1`
/// degenerates to a plain serial map over `items` in input order (no pool,
/// identical results by construction — per-item work is independent, so
/// claim order cannot change any result).
///
/// A panicking worker propagates its panic out of this call after the
/// scope joins — no result is silently dropped.
fn parallel_map_in_claim_order<T, R, F>(
    items: &[T],
    jobs: usize,
    claim_order: &[usize],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    debug_assert_eq!(claim_order.len(), items.len());
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                if pos >= claim_order.len() {
                    break;
                }
                let i = claim_order[pos];
                // The receiver outlives the scope, so send only fails if
                // the parent already panicked; stopping is then correct.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in &rx {
            slots[i] = Some(r);
        }
    });
    // Reached only if every worker exited cleanly (a worker panic
    // re-raises when the scope joins, before this line).
    slots
        .into_iter()
        .map(|s| s.expect("every claimed index delivered a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_at_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map(&items, jobs, |i, &x| x * 2 + i as u64);
            let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 2 + i as u64).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn prioritized_results_ignore_claim_order() {
        let items: Vec<u64> = (0..50).collect();
        let priority: Vec<u64> = items.iter().map(|x| 1000 - x).collect();
        let serial = parallel_map(&items, 1, |_, &x| x + 1);
        let parallel = parallel_map_prioritized(&items, 8, &priority, |_, &x| x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u64> = Vec::new();
        assert!(parallel_map(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn deadline_returns_fast_results_and_flags_hangs() {
        let ok = run_with_deadline(|| 42u32, Duration::from_secs(10));
        assert_eq!(ok, Ok(42));
        // A worker that sleeps past the deadline is reported as timed out
        // (and abandoned; it exits on its own shortly after).
        let hung = run_with_deadline(
            || std::thread::sleep(Duration::from_millis(500)),
            Duration::from_millis(20),
        );
        assert_eq!(hung, Err(DeadlineError::TimedOut));
        let boom: Result<u32, _> =
            run_with_deadline(|| panic!("boom"), Duration::from_secs(10));
        assert_eq!(boom, Err(DeadlineError::Panicked));
    }
}
