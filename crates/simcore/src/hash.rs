//! Deterministic fast hashing for simulator-internal maps.
//!
//! `std::collections::HashMap`'s default `RandomState` re-seeds SipHash per
//! process, which is both slow for the small integer keys the engine uses
//! (group ids, request ids, `(FileId, chunk)` pairs) and a source of
//! run-to-run iteration-order jitter. [`FxHasher`] is the rustc compiler's
//! multiply-xor hash: a fixed-seed, one-multiply-per-word function that is
//! several times faster on short keys and makes hash-map behaviour a pure
//! function of the inserted keys — same simulation, same map, every run.
//!
//! Not DoS-resistant; keys here are simulator-generated, never adversarial.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc's FxHash: multiply-xor over machine words with a fixed seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / phi, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the fixed-seed [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the fixed-seed [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_equals_itself_and_spreads() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"dualpar"), h(b"dualpar"));
        assert_ne!(h(b"dualpar"), h(b"dualpas"));
        // Tail handling: lengths not divisible by 8 must still distinguish.
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"123456789"), h(b"123456780"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u32 % 7, i), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 10)), Some(&20));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }
}
