//! Simulated time.
//!
//! All simulation time is kept in integer nanoseconds. A `u64` of nanoseconds
//! covers ~584 years, far beyond any experiment in the paper (the longest runs
//! are a few hundred simulated seconds), while keeping arithmetic exact and
//! the event queue totally ordered without floating-point tie ambiguity.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative sim time");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating `self + d`, pinned at [`SimTime::MAX`] on overflow. Use
    /// for open-ended deadlines (idle windows, slice expiries) where a
    /// pathological duration must clamp rather than wrap the clock.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    #[inline]
    pub fn min_of(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative sim duration");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Duration to transfer `bytes` at `bytes_per_sec`, rounded up to 1 ns
    /// granularity so nonzero transfers always take nonzero time.
    #[inline]
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        if bytes == 0 || bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * NANOS_PER_SEC as u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating `self + other`, pinned at the maximum representable
    /// duration on overflow. Use for open-ended accumulators (per-program
    /// I/O-time sums) where a pathological run must clamp rather than wrap.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        // Saturate: a wrapped simulated timestamp would silently reorder
        // the whole event queue; pinning at the far future fails loudly
        // (monotone-time audit) instead.
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).nanos(), 5_250_000_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn transfer_time() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = SimDuration::for_transfer(1 << 20, 1 << 20);
        assert_eq!(d, SimDuration::from_secs(1));
        // zero bytes takes zero time
        assert_eq!(SimDuration::for_transfer(0, 1000), SimDuration::ZERO);
        // nonzero transfer at huge rate still rounds up to >= 1 ns
        assert!(SimDuration::for_transfer(1, u64::MAX / 2).nanos() >= 1);
    }

    #[test]
    fn transfer_no_overflow() {
        // 16 GiB at 100 MB/s: would overflow u64 in naive bytes * 1e9.
        let d = SimDuration::for_transfer(16 << 30, 100_000_000);
        let expect = (16u128 << 30) * 1_000_000_000 / 100_000_000;
        let rem = !((16u128 << 30) * 1_000_000_000).is_multiple_of(100_000_000) as u128;
        assert_eq!(d.nanos() as u128, expect + rem);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
