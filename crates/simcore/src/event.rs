//! The retired binary-heap event queue, kept as a test oracle.
//!
//! This was the production future-event list before the indexed timing
//! wheel in [`crate::fel`] replaced it: a `BinaryHeap` of `(time, seq)`
//! entries with lazy cancellation through a side `cancelled` set. It is
//! compiled only under `cfg(test)` and exists so the wheel's property
//! tests can assert *observational equivalence* against the exact
//! semantics the whole engine was validated on — pop order, same-time
//! FIFO, cancel verdicts, `len()` exactness, clock behaviour.
//!
//! Known (and deliberate) differences from the wheel, which the oracle
//! tests do not observe through the public API:
//! * `HeapEventId` is a bare per-queue seq — the aliasing-across-queues
//!   bug the wheel's tagged generational ids fix.
//! * Cancellation is lazy: cancelled entries stay in the heap until the
//!   clock reaches them — the unbounded-churn leak the wheel's eager
//!   slot removal fixes.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle for cancelling a scheduled event (oracle flavour: a bare
/// per-queue sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapEventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap-based deterministic future-event list (oracle).
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    cancelled: crate::hash::FxHashSet<u64>,
    /// Seqs scheduled but neither fired nor cancelled. Needed so `len` and
    /// `cancel` can tell a pending id from one that already fired (lazy
    /// deletion leaves fired/cancelled seqs indistinguishable otherwise).
    pending: crate::hash::FxHashSet<u64>,
}

impl<E> HeapEventQueue<E> {
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cancelled: crate::hash::FxHashSet::default(),
            pending: crate::hash::FxHashSet::default(),
        }
    }

    /// Current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> HeapEventId {
        assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        HeapEventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling an already-fired or unknown id is a no-op.
    pub fn cancel(&mut self, id: HeapEventId) -> bool {
        // Lazy deletion: mark and skip at pop time.
        if !self.pending.remove(&id.0) {
            return false; // already fired, already cancelled, or unknown
        }
        self.cancelled.insert(id.0)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue time inversion");
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top_seq = self.heap.peek().map(|e| e.seq)?;
            if self.cancelled.remove(&top_seq) {
                self.heap.pop();
                continue;
            }
            return self.heap.peek().map(|e| e.time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The oracle must itself stay trustworthy: pin its core semantics so a
    // drive-by edit cannot silently weaken the equivalence property.
    #[test]
    fn oracle_pops_in_time_order_with_fifo_ties() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime(30), 2);
        q.schedule(SimTime(10), 0);
        q.schedule(SimTime(10), 1);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn oracle_cancel_and_len_semantics() {
        let mut q = HeapEventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        let b = q.schedule(SimTime(2), "b");
        assert!(q.cancel(b));
        assert!(!q.cancel(b));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a));
        assert!(q.pop().is_none());
    }
}
