//! The discrete-event queue.
//!
//! A binary heap of `(time, seq)`-ordered events. The monotonically increasing
//! sequence number breaks ties so that events scheduled earlier at the same
//! instant are delivered first (stable FIFO among simultaneous events), which
//! keeps simulations deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle that identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    cancelled: crate::hash::FxHashSet<u64>,
    /// Seqs scheduled but neither fired nor cancelled. Needed so `len` and
    /// `cancel` can tell a pending id from one that already fired (lazy
    /// deletion leaves fired/cancelled seqs indistinguishable otherwise).
    pending: crate::hash::FxHashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cancelled: crate::hash::FxHashSet::default(),
            pending: crate::hash::FxHashSet::default(),
        }
    }

    /// Current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — an event in the past is
    /// always a simulation bug, and catching it here localises the error.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling an already-fired or unknown id is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: mark and skip at pop time.
        if !self.pending.remove(&id.0) {
            return false; // already fired, already cancelled, or unknown
        }
        self.cancelled.insert(id.0)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    ///
    /// Cancellation is lazy: the `cancelled` seq set is the single source
    /// of truth, consulted (and drained) here and in [`Self::peek_time`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue time inversion");
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top_seq = self.heap.peek().map(|e| e.seq)?;
            if self.cancelled.remove(&top_seq) {
                self.heap.pop();
                continue;
            }
            return self.heap.peek().map(|e| e.time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_after_fire_is_noop_and_len_stays_consistent() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert_eq!(q.len(), 2);
        let _ = q.pop(); // "a" fires
        assert!(!q.cancel(id), "cancelling a fired event must be a no-op");
        assert_eq!(q.len(), 1);
        let id2 = q.schedule(SimTime(3), "c");
        assert!(q.cancel(id2));
        assert!(!q.cancel(id2), "double cancel must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(42), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, SimTime(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_fired_event_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        // Already fired; cancel is accepted but has no effect on future pops.
        q.cancel(a);
        q.schedule(SimTime(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
    }

    #[test]
    fn cancellation_has_one_source_of_truth() {
        // Regression: `Entry` used to carry a dead `cancelled: bool` that
        // was pushed as false and never set, shadowing the real mechanism
        // (the queue-level cancelled-seq set). With the field gone, every
        // interleaving of cancel/schedule/pop must agree with the set.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        let b = q.schedule(SimTime(2), "b");
        let c = q.schedule(SimTime(3), "c");
        assert!(q.cancel(b));
        // Cancel, then cancel again: second is a no-op and len is exact.
        assert!(!q.cancel(b));
        assert_eq!(q.len(), 2);
        // Peek must skip the cancelled entry without resurrecting it.
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
        // Cancelling fired ids after drain stays a no-op.
        assert!(!q.cancel(a));
        assert!(!q.cancel(c));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn rescheduling_at_same_time_preserves_order_across_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 0);
        q.pop();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(1), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
