//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (workload jitter, network
//! jitter, placement randomisation) draws from its own `DetRng` stream,
//! derived from a master seed plus a component label. This way adding a new
//! consumer of randomness never perturbs the draws seen by existing
//! components, and a fixed master seed reproduces a bit-identical simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, cheaply-cloneable RNG stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

/// SplitMix64 step, used to mix the master seed with a stream label.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary label string into a 64-bit stream discriminator (FNV-1a).
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl DetRng {
    /// Create the stream identified by `(master_seed, label)`.
    pub fn for_stream(master_seed: u64, label: &str) -> Self {
        let mixed = splitmix64(master_seed ^ label_hash(label));
        DetRng {
            inner: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Create a sub-stream, e.g. per-rank streams from a workload stream.
    pub fn substream(&self, index: u64) -> Self {
        // Derive from the label-mixed state deterministically, not from the
        // current position, so substreams don't depend on draw order.
        let mut probe = self.inner.clone();
        let base: u64 = probe.gen();
        DetRng {
            inner: SmallRng::seed_from_u64(splitmix64(base ^ splitmix64(index))),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[lo, hi)`. `hi` must be > `lo`.
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Pick a uniformly random element index for a slice of length `n`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::for_stream(42, "disk");
        let mut b = DetRng::for_stream(42, "disk");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::for_stream(42, "disk");
        let mut b = DetRng::for_stream(42, "net");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn substreams_are_order_independent() {
        let root = DetRng::for_stream(7, "workload");
        let mut s3_first = root.substream(3);
        let root2 = DetRng::for_stream(7, "workload");
        let _ = root2.substream(1);
        let mut s3_second = root2.substream(3);
        assert_eq!(s3_first.next_u64(), s3_second.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::for_stream(1, "t");
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::for_stream(1, "t");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = DetRng::for_stream(9, "exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp_f64(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::for_stream(3, "shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
