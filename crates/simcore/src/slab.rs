//! Generational slab: dense, index-addressed storage with stale-handle
//! detection.
//!
//! The engine's hot path allocates short-lived bookkeeping records (request
//! completion groups, per-sub-request response info) at a very high rate.
//! Keying them by monotonically growing ids in an `FxHashMap` puts a hash
//! probe (and, amortised, a rehash) on every simulated I/O event. A slab
//! stores the records in a plain `Vec` and hands out [`SlabKey`] handles
//! packing the slot index with a per-slot *generation*: lookups are a
//! bounds-checked index plus one integer compare, and freed slots are
//! reused through a free list without ever aliasing an old handle.
//!
//! Stale handles are a real hazard here, not a theoretical one: with
//! write-back data servers a sub-request id is retired when the server
//! acknowledges the write, but the id lives on inside the buffered
//! [`DiskRequest`]'s merge list and surfaces again when the flush completes.
//! Under a naive reuse scheme that ghost id could alias a *new* request and
//! credit the wrong completion group. The generation check makes such a
//! lookup miss deterministically: [`Slab::get`]/[`Slab::remove`] on a stale
//! key return `None`, and a key whose generation is *ahead* of its slot —
//! impossible unless the key was forged or the slab corrupted — panics
//! under `strict-invariants` (and in tests) via [`strict_assert!`].
//!
//! Determinism: key assignment is a pure function of the insert/remove
//! sequence (LIFO free-list reuse), so identical runs hand out identical
//! keys — the engine's byte-identical-replay guarantee is preserved.
//!
//! [`strict_assert!`]: crate::strict_assert
//! [`DiskRequest`]: https://docs.rs/ (the disk crate's queued-request type)

use core::fmt;

/// Handle to a slab slot: slot index in the low 32 bits, the slot's
/// generation at insert time in the high 32 bits. `Copy`, order-preserving
/// only per generation — treat it as opaque outside the slab.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey(u64);

impl SlabKey {
    /// The raw packed representation (e.g. to thread through layers that
    /// speak `u64` ids). Round-trips through [`SlabKey::from_raw`].
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a key from its packed representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        SlabKey(raw)
    }

    #[inline]
    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    fn pack(index: usize, generation: u32) -> Self {
        debug_assert!(index <= u32::MAX as usize, "slab grew past 2^32 slots");
        SlabKey(((generation as u64) << 32) | index as u64)
    }
}

impl fmt::Debug for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SlabKey({}g{})", self.index(), self.generation())
    }
}

/// One slot: its current generation and the value, if occupied. A vacant
/// slot remembers the next free slot instead (intrusive free list).
#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied(T),
    Vacant { next_free: Option<u32> },
}

/// A generational slab. See the module docs for the design rationale.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    /// `(generation, slot)` pairs. A slot's generation is bumped when the
    /// value is removed, invalidating every key handed out for it before.
    slots: Vec<(u32, Slot<T>)>,
    /// Head of the intrusive free list (LIFO: most recently freed first).
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub const fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the slab empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots allocated (live + free-listed).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, returning its key. Reuses the most recently freed
    /// slot if one exists (its generation already differs from every key
    /// handed out before), otherwise appends a fresh slot at generation 0.
    pub fn insert(&mut self, value: T) -> SlabKey {
        match self.free_head {
            Some(idx) => {
                let i = idx as usize;
                let (generation, slot) = &mut self.slots[i];
                let next = match slot {
                    Slot::Vacant { next_free } => *next_free,
                    Slot::Occupied(_) => {
                        unreachable!("free list points at an occupied slab slot")
                    }
                };
                self.free_head = next;
                *slot = Slot::Occupied(value);
                self.len += 1;
                SlabKey::pack(i, *generation)
            }
            None => {
                let i = self.slots.len();
                self.slots.push((0, Slot::Occupied(value)));
                self.len += 1;
                SlabKey::pack(i, 0)
            }
        }
    }

    /// Does `key` refer to a live value?
    #[inline]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// The value behind `key`, or `None` if the key is stale (the slot was
    /// freed — and possibly reused — since the key was issued) or out of
    /// bounds.
    #[inline]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let (generation, slot) = self.slots.get(key.index())?;
        check_generation(key, *generation);
        match slot {
            Slot::Occupied(v) if *generation == key.generation() => Some(v),
            _ => None,
        }
    }

    /// Mutable access; same staleness semantics as [`Slab::get`].
    #[inline]
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let (generation, slot) = self.slots.get_mut(key.index())?;
        check_generation(key, *generation);
        match slot {
            Slot::Occupied(v) if *generation == key.generation() => Some(v),
            _ => None,
        }
    }

    /// Remove and return the value behind `key`, bumping the slot's
    /// generation so every outstanding copy of the key turns stale. `None`
    /// if the key already was.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let i = key.index();
        let (generation, slot) = self.slots.get_mut(i)?;
        check_generation(key, *generation);
        if *generation != key.generation() || matches!(slot, Slot::Vacant { .. }) {
            return None;
        }
        // Wrapping: after 2^32 reuses of one slot a key from 2^32
        // generations ago would false-positive. No simulation gets close
        // (that is 4 billion groups through a single slot), and wrapping
        // keeps remove branch-free.
        *generation = generation.wrapping_add(1);
        let old = core::mem::replace(
            slot,
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = Some(i as u32);
        self.len -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Iterate over live `(key, &value)` pairs in slot order. Intended for
    /// diagnostics and end-of-run sweeps, not hot paths.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, (generation, slot))| match slot {
                Slot::Occupied(v) => Some((SlabKey::pack(i, *generation), v)),
                Slot::Vacant { .. } => None,
            })
    }
}

/// A key "from the future" (generation ahead of its slot) cannot come from
/// this slab — it was forged, or memory was corrupted. Surface that loudly
/// in strict builds instead of returning a quiet `None`. Generation
/// wrapping makes an ahead-comparison heuristic, so compare only when
/// neither side has wrapped recently (the plain `<=` is exact for the
/// first 2^31 generations of a slot).
#[inline]
fn check_generation(key: SlabKey, slot_generation: u32) {
    crate::strict_assert!(
        key.generation() <= slot_generation
            || slot_generation > u32::MAX / 2
            || key.generation() > u32::MAX / 2,
        "slab key {key:?} is ahead of its slot (generation {slot_generation}): forged key or corrupted slab"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None, "double remove is a miss, not a panic");
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn reused_slot_invalidates_old_key() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // LIFO free list: b reuses a's slot under a new generation.
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        assert_ne!(a.raw(), b.raw());
        assert_eq!(s.get(a), None, "stale key must not alias the new value");
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn keys_round_trip_through_raw() {
        let mut s = Slab::new();
        let k = s.insert(7u64);
        let k2 = SlabKey::from_raw(k.raw());
        assert_eq!(k, k2);
        assert_eq!(s.get(k2), Some(&7));
    }

    #[test]
    fn key_assignment_is_deterministic() {
        let run = || {
            let mut s = Slab::new();
            let mut keys = Vec::new();
            let k0 = s.insert(0);
            let k1 = s.insert(1);
            keys.push(s.insert(2));
            s.remove(k1);
            keys.push(s.insert(3)); // reuses k1's slot
            s.remove(k0);
            keys.push(s.insert(4)); // reuses k0's slot
            keys.push(s.insert(5)); // fresh slot
            keys.iter().map(|k| k.raw()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn iter_sees_exactly_the_live_values() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        let c = s.insert(30);
        s.remove(b);
        let live: Vec<(SlabKey, i32)> = s.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(live, vec![(a, 10), (c, 30)]);
    }

    #[test]
    #[should_panic(expected = "forged key")]
    fn forged_future_key_panics_in_strict_builds() {
        let s: Slab<u8> = {
            let mut s = Slab::new();
            s.insert(1);
            s
        };
        // Slot 0 is at generation 0; a key claiming generation 1 cannot
        // have been issued by this slab.
        let forged = SlabKey::pack(0, 1);
        let _ = s.get(forged);
    }

    #[test]
    fn out_of_bounds_key_is_a_miss() {
        let mut s: Slab<u8> = Slab::new();
        assert_eq!(s.get(SlabKey::pack(3, 0)), None);
        assert_eq!(s.remove(SlabKey::pack(3, 0)), None);
    }
}
