//! Conservative-parallel shard runtime: a persistent worker pool that runs
//! per-shard event windows between barrier exchanges, plus the
//! deterministic cross-shard batch merge.
//!
//! The engine partitions a simulation into cells (one per data server plus
//! a client cell the coordinator drives itself), each owning a private
//! event queue. One *round* executes every cell's events up to a shared
//! horizon, then the coordinator exchanges the cells' outbound message
//! batches. Cells never share state: a cell is *moved* to a worker for the
//! duration of its window and moved back with its event count, so there is
//! no aliasing, no locking, and no `unsafe` — the only synchronization is
//! the two `mpsc` hops per cell per round (the window barrier this module
//! exists to make cheap; `hot_path`'s `shard_sync` group measures it).
//!
//! Determinism: the pool decides only *where* a window executes. Which
//! events a window contains is fixed by the horizon, and everything the
//! coordinator does afterwards consumes the cells in index order, so the
//! simulation's output is a pure function of its inputs at any worker
//! count — including zero workers, where the caller runs every cell inline.

use crate::time::SimTime;
use std::sync::mpsc;

/// One shard of a partitioned simulation: executes all of its pending
/// events with `t < horizon`, queuing outbound cross-shard messages for
/// the coordinator to exchange after the round's barrier.
pub trait WindowCell: Send + 'static {
    /// Run every pending event strictly before `horizon`; return how many
    /// events were executed.
    fn run_window(&mut self, horizon: SimTime) -> u64;
}

struct Job<C> {
    idx: usize,
    cell: C,
    horizon: SimTime,
}

type Done<C> = (usize, Option<(C, u64)>);

/// Persistent pool of window workers for one sharded run.
///
/// Workers live for the whole run (a round is ~microseconds of wall time,
/// so per-round thread spawning would dominate); each has a private job
/// channel, and all report on a shared done channel. [`ShardPool::run_round`]
/// moves the round's active cells out to the workers, runs the caller's
/// own (client) window on the current thread while they work, and moves
/// every cell back before returning — the barrier.
pub struct ShardPool<C: WindowCell> {
    txs: Vec<mpsc::Sender<Job<C>>>,
    done_rx: mpsc::Receiver<Done<C>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<C: WindowCell> ShardPool<C> {
    /// Spawn a pool of `workers` window threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (done_tx, done_rx) = mpsc::channel::<Done<C>>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<C>>();
            let done = done_tx.clone();
            txs.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(rx, done)));
        }
        ShardPool {
            txs,
            done_rx,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Run one barrier window: dispatch `cells[i]` for each `i` in `active`
    /// to the workers (round-robin), run `client` — the coordinator's own
    /// window — on the calling thread while they work, then wait for every
    /// dispatched cell to come home. Returns the total events the
    /// dispatched cells executed, plus `client`'s result.
    ///
    /// Panics if a worker's window panicked (the panic message will already
    /// have been printed by that thread's hook). Cells still in flight on
    /// other workers own their state outright, so unwinding here is safe;
    /// they exit when the done channel disconnects.
    pub fn run_round<R>(
        &self,
        cells: &mut [Option<C>],
        active: &[usize],
        horizon: SimTime,
        client: impl FnOnce() -> R,
    ) -> (u64, R) {
        for (k, &i) in active.iter().enumerate() {
            let cell = cells[i].take().expect("active cell present");
            let job = Job {
                idx: i,
                cell,
                horizon,
            };
            self.txs[k % self.txs.len()]
                .send(job)
                .expect("shard worker alive");
        }
        let client_result = client();
        let mut events = 0u64;
        for _ in 0..active.len() {
            let (idx, payload) = self
                .done_rx
                .recv()
                .expect("at least one shard worker alive");
            let Some((cell, n)) = payload else {
                panic!("shard worker panicked while running cell {idx}");
            };
            cells[idx] = Some(cell);
            events += n;
        }
        (events, client_result)
    }
}

impl<C: WindowCell> Drop for ShardPool<C> {
    fn drop(&mut self) {
        // Disconnect the job channels so the workers' recv loops end, then
        // join. A worker that panicked already reported through the done
        // channel (or we are unwinding anyway), so join errors are ignored.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<C: WindowCell>(rx: mpsc::Receiver<Job<C>>, done: mpsc::Sender<Done<C>>) {
    while let Ok(Job {
        idx,
        mut cell,
        horizon,
    }) = rx.recv()
    {
        // Catch panics so the coordinator gets a deterministic "cell idx
        // failed" report instead of a deadlocked barrier. The cell moves
        // into the closure and back out; on panic it is dropped here.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let n = cell.run_window(horizon);
            (cell, n)
        }));
        match result {
            Ok(pair) => {
                if done.send((idx, Some(pair))).is_err() {
                    return; // coordinator gone; shutting down
                }
            }
            Err(_) => {
                let _ = done.send((idx, None));
                return;
            }
        }
    }
}

/// Deterministically merge per-source message batches into one delivery
/// stream ordered by `(time, source)`.
///
/// Each batch must already be time-sorted (each source emits in its own
/// event order, which is time-monotone); ties across sources resolve to
/// the lower source index, and order within a source is preserved. This is
/// the exchange's canonical order: a pure function of the batches, never
/// of which thread produced them first.
pub fn merge_batches<T>(batches: Vec<Vec<(SimTime, T)>>) -> Vec<(SimTime, u32, T)> {
    let total: usize = batches.iter().map(Vec::len).sum();
    let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<(SimTime, T)>>> = batches
        .into_iter()
        .map(|b| {
            debug_assert!(
                b.windows(2).all(|w| w[0].0 <= w[1].0),
                "cross-shard batch not time-sorted"
            );
            b.into_iter().peekable()
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(SimTime, usize)> = None;
        for (src, head) in heads.iter_mut().enumerate() {
            if let Some(&(t, _)) = head.peek() {
                // Strictly-less keeps the lowest source on ties.
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, src));
                }
            }
        }
        let Some((_, src)) = best else {
            break;
        };
        let (t, msg) = heads[src].next().expect("peeked head nonempty");
        out.push((t, src as u32, msg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A cell that "executes" by draining a pre-seeded event list up to the
    /// horizon, summing payloads into its state.
    struct TestCell {
        pending: Vec<(SimTime, u64)>, // sorted ascending
        cursor: usize,
        acc: u64,
    }

    impl WindowCell for TestCell {
        fn run_window(&mut self, horizon: SimTime) -> u64 {
            let mut n = 0;
            while self.cursor < self.pending.len() && self.pending[self.cursor].0 < horizon {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(self.pending[self.cursor].1);
                self.cursor += 1;
                n += 1;
            }
            n
        }
    }

    fn seeded_cells(n: usize) -> Vec<Option<TestCell>> {
        (0..n)
            .map(|i| {
                let pending = (0..40u64)
                    .map(|k| (SimTime(k * 100 + i as u64), k))
                    .collect();
                Some(TestCell {
                    pending,
                    cursor: 0,
                    acc: 0,
                })
            })
            .collect()
    }

    #[test]
    fn rounds_match_inline_execution_at_any_worker_count() {
        let horizons = [SimTime(1000), SimTime(2500), SimTime(4100)];
        let mut expect = seeded_cells(5);
        for h in horizons {
            for cell in expect.iter_mut().flatten() {
                cell.run_window(h);
            }
        }
        let expect: Vec<u64> = expect.into_iter().map(|c| c.unwrap().acc).collect();

        for workers in [1, 2, 4] {
            let pool: ShardPool<TestCell> = ShardPool::new(workers);
            let mut cells = seeded_cells(5);
            let active = [0usize, 1, 2, 3, 4];
            let mut client_rounds = 0u32;
            for h in horizons {
                let (n, ()) = pool.run_round(&mut cells, &active, h, || {
                    client_rounds += 1;
                });
                assert!(n > 0);
            }
            assert_eq!(client_rounds, 3);
            let got: Vec<u64> = cells.into_iter().map(|c| c.unwrap().acc).collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn inactive_cells_stay_home() {
        let pool: ShardPool<TestCell> = ShardPool::new(2);
        let mut cells = seeded_cells(3);
        let (n, ()) = pool.run_round(&mut cells, &[1], SimTime(500), || {});
        assert_eq!(n, 5);
        assert_eq!(cells[0].as_ref().unwrap().cursor, 0);
        assert_eq!(cells[1].as_ref().unwrap().cursor, 5);
        assert_eq!(cells[2].as_ref().unwrap().cursor, 0);
    }

    struct PanicCell;
    impl WindowCell for PanicCell {
        fn run_window(&mut self, _horizon: SimTime) -> u64 {
            panic!("window exploded");
        }
    }

    #[test]
    fn worker_panic_propagates_to_coordinator() {
        let result = std::panic::catch_unwind(|| {
            let pool: ShardPool<PanicCell> = ShardPool::new(1);
            let mut cells = vec![Some(PanicCell)];
            pool.run_round(&mut cells, &[0], SimTime(1), || {});
        });
        assert!(result.is_err());
    }

    #[test]
    fn batch_merge_orders_by_time_then_source() {
        let t = |n: u64| SimTime::ZERO + SimDuration(n);
        let batches = vec![
            vec![(t(5), "a0"), (t(9), "a1")],
            vec![(t(5), "b0"), (t(6), "b1"), (t(9), "b2")],
            vec![],
            vec![(t(1), "d0")],
        ];
        let merged = merge_batches(batches);
        let flat: Vec<(u64, u32, &str)> = merged.into_iter().map(|(t, s, m)| (t.0, s, m)).collect();
        assert_eq!(
            flat,
            vec![
                (1, 3, "d0"),
                (5, 0, "a0"),
                (5, 1, "b0"),
                (6, 1, "b1"),
                (9, 0, "a1"),
                (9, 1, "b2"),
            ]
        );
    }
}
