//! Attribute-aware item extents over a token stream.
//!
//! The lint rules must not fire on test-only code, so for every token we
//! compute a *cfg mask*: is this token inside the extent of an item carrying
//! `#[cfg(test)]` (or, separately, `#[cfg(feature = …)]`)? The extent
//! computation works on the [`lexer`](crate::lexer) token stream, which makes
//! it immune to the failure modes of the old line-based tracker:
//!
//! - comments between the attribute and its item are tokens we skip, so a
//!   doc comment (or a block comment containing `{`) can no longer anchor
//!   the extent;
//! - stacked attributes (`#[cfg(test)]` + `#[allow(…)]` + `#[path = …]`)
//!   are folded together before the item is located, so a second attribute
//!   whose line happens to complete the item can no longer leave a
//!   "pending cfg" flag dangling over the *next* item.
//!
//! An item's extent runs from its first attribute to the first `;`, `,` or
//! matching close-brace at delimiter depth zero (commas terminate so that
//! field/variant attributes do not bleed onto their siblings). `cfg(not(…))`
//! groups are ignored when classifying an attribute, so `#[cfg(not(test))]`
//! production code is still linted. Masks nest: extents found *inside* a
//! masked extent OR their flags over the inner range.

use crate::lexer::{TokKind, Token};

/// Mask bit: token is inside a `#[cfg(test)]` extent (rules skip these).
pub const MASK_TEST: u8 = 1;
/// Mask bit: token is inside a `#[cfg(feature = …)]` extent (still linted,
/// recorded for diagnostics).
pub const MASK_FEATURE: u8 = 2;

/// Parsed outer attribute: cfg flags plus the index one past its `]`.
struct Attr {
    flags: u8,
    /// One past the closing `]`, or `toks.len()` if unterminated.
    end: usize,
    /// `#![…]` inner attribute — never anchors an item extent.
    inner: bool,
}

/// Parse the attribute starting at `toks[i]` (which must be `#`).
fn parse_attr(src: &str, toks: &[Token], i: usize) -> Option<Attr> {
    let mut j = i + 1;
    let inner = toks.get(j).and_then(|t| t.punct(src)) == Some('!');
    if inner {
        j += 1;
    }
    if toks.get(j).and_then(|t| t.punct(src)) != Some('[') {
        return None;
    }
    j += 1;
    // Attribute classification: the first ident must be `cfg`/`cfg_attr`,
    // then any `test`/`feature` ident *outside* `not(…)` groups sets a flag.
    let mut flags = 0u8;
    let mut is_cfg = false;
    let mut seen_first_ident = false;
    let mut depth = 1usize; // bracket+paren depth inside the attribute
    let mut not_depths: Vec<usize> = Vec::new();
    let mut pending_not = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Ident => {
                let text = t.text(src);
                if !seen_first_ident {
                    seen_first_ident = true;
                    is_cfg = text == "cfg" || text == "cfg_attr";
                }
                if is_cfg && not_depths.is_empty() {
                    match text {
                        "test" => flags |= MASK_TEST,
                        "feature" => flags |= MASK_FEATURE,
                        _ => {}
                    }
                }
                pending_not = text == "not";
            }
            TokKind::Punct => {
                match t.punct(src) {
                    Some('(') | Some('[') => {
                        depth += 1;
                        if pending_not {
                            not_depths.push(depth);
                            pending_not = false;
                        }
                    }
                    Some(')') | Some(']') => {
                        if not_depths.last() == Some(&depth) {
                            not_depths.pop();
                        }
                        depth -= 1;
                        if depth == 0 {
                            return Some(Attr { flags, end: j + 1, inner });
                        }
                    }
                    _ => {}
                }
                if t.punct(src) != Some('(') {
                    pending_not = false;
                }
            }
            _ => pending_not = false,
        }
        j += 1;
    }
    Some(Attr { flags, end: toks.len(), inner })
}

/// Find the index of the last token of the item anchored at `start`
/// (the first non-comment, non-attribute token after the attributes).
///
/// The item ends at the first `;` or `,` at delimiter depth zero, or at the
/// `}` matching the first brace opened at depth zero. If the enclosing
/// scope closes first (depth would go negative — e.g. an attribute on the
/// last variant of an enum), the extent ends just before that closer.
fn item_end(src: &str, toks: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut brace_item = false; // a `{` was opened at depth 0
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.punct(src) {
                Some('(') | Some('[') => depth += 1,
                Some('{') => {
                    if depth == 0 {
                        brace_item = true;
                    }
                    depth += 1;
                }
                Some(')') | Some(']') | Some('}') => {
                    if depth == 0 {
                        // Enclosing scope closed before the item did.
                        return k.saturating_sub(1).max(start);
                    }
                    depth -= 1;
                    if depth == 0 && brace_item {
                        return k;
                    }
                }
                Some(';') | Some(',') if depth == 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    toks.len() - 1
}

/// Compute the per-token cfg mask ([`MASK_TEST`] / [`MASK_FEATURE`] bits).
pub fn cfg_mask(src: &str, toks: &[Token]) -> Vec<u8> {
    let mut mask = vec![0u8; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct && t.punct(src) == Some('#') {
            if let Some(attr) = parse_attr(src, toks, i) {
                if !attr.inner && attr.flags != 0 {
                    // Fold in stacked attributes and skip interleaved
                    // comments to find the item this cfg applies to.
                    let mut flags = attr.flags;
                    let mut j = attr.end;
                    loop {
                        while j < toks.len() && toks[j].is_comment() {
                            j += 1;
                        }
                        if j < toks.len()
                            && toks[j].kind == TokKind::Punct
                            && toks[j].punct(src) == Some('#')
                        {
                            match parse_attr(src, toks, j) {
                                Some(a) if !a.inner => {
                                    flags |= a.flags;
                                    j = a.end;
                                    continue;
                                }
                                _ => break,
                            }
                        }
                        break;
                    }
                    if j < toks.len() {
                        let end = item_end(src, toks, j);
                        for m in &mut mask[i..=end] {
                            *m |= flags;
                        }
                    } else {
                        for m in &mut mask[i..] {
                            *m |= flags;
                        }
                    }
                }
                // Re-scan from just inside the attribute's extent so nested
                // cfg attributes (e.g. a mod within a masked mod) are found;
                // advancing past the attribute itself is enough.
                i = attr.end.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// For each named marker ident, whether it is test-masked.
    fn masked(src: &str, names: &[&str]) -> Vec<bool> {
        let toks = lex(src);
        let mask = cfg_mask(src, &toks);
        names
            .iter()
            .map(|n| {
                let (idx, _) = toks
                    .iter()
                    .enumerate()
                    .find(|(_, t)| t.kind == TokKind::Ident && t.text(src) == *n)
                    .unwrap_or_else(|| panic!("marker {n} not found"));
                mask[idx] & MASK_TEST != 0
            })
            .collect()
    }

    #[test]
    fn plain_test_mod_is_masked_following_item_is_not() {
        let src = "#[cfg(test)]\nmod tests { fn helper() { inside(); } }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["inside", "outside"]), vec![true, false]);
    }

    #[test]
    fn regression_stacked_attribute_one_liner_does_not_leak() {
        // Old tracker bug: a second `#[…]` line that completes the item on
        // the same line left the pending flag set, masking the NEXT item.
        let src = "#[cfg(test)]\n#[allow(dead_code)] fn helper() { inside(); }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["inside", "outside"]), vec![true, false]);
        let src = "#[cfg(test)]\n#[path = \"t.rs\"]\nmod tests;\nfn real() { outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
    }

    #[test]
    fn regression_comments_between_attr_and_item_do_not_anchor() {
        // Old tracker bug: `sanitize()` never stripped block comments, so a
        // `{` inside one anchored the extent on the comment.
        let src = "#[cfg(test)]\n/* stray { brace */\nfn helper() { inside(); }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["inside", "outside"]), vec![true, false]);
        let src = "#[cfg(test)]\n/// doc { comment }\nmod tests { fn f() { inside(); } }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["inside", "outside"]), vec![true, false]);
    }

    #[test]
    fn semicolon_items_end_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse helper_only::thing;\nfn real() { outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
    }

    #[test]
    fn inner_attributes_do_not_anchor_extents() {
        let src = "#![deny(missing_docs)]\nfn real() { outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn real() { outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
        // …but `any(test, …)` still masks.
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { inside(); }";
        assert_eq!(masked(src, &["inside"]), vec![true]);
    }

    #[test]
    fn feature_strings_are_not_test_idents() {
        let toks_src = "#[cfg(feature = \"test-utils\")]\nfn gated() { inside(); }";
        assert_eq!(masked(toks_src, &["inside"]), vec![false]);
        let toks = lex(toks_src);
        let mask = cfg_mask(toks_src, &toks);
        let idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text(toks_src) == "inside")
            .unwrap();
        assert_ne!(mask[idx] & MASK_FEATURE, 0);
    }

    #[test]
    fn variant_and_field_attributes_stop_at_commas() {
        let src = "enum E { #[cfg(test)] OnlyTests, Real }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["Real", "outside"]), vec![false, false]);
        let toks = lex(src);
        let mask = cfg_mask(src, &toks);
        let idx = toks
            .iter()
            .position(|t| t.text(src) == "OnlyTests")
            .unwrap();
        assert_ne!(mask[idx] & MASK_TEST, 0);
    }

    #[test]
    fn attribute_on_last_variant_does_not_escape_the_enum() {
        let src = "enum E { A, #[cfg(test)] Last }\nfn real() { outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
    }

    #[test]
    fn nested_extents_or_their_flags() {
        let src = "#[cfg(test)]\nmod tests {\n  #[cfg(feature = \"slow\")]\n  fn f() { inside(); }\n}";
        let toks = lex(src);
        let mask = cfg_mask(src, &toks);
        let idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text(src) == "inside")
            .unwrap();
        assert_eq!(mask[idx], MASK_TEST | MASK_FEATURE);
    }

    #[test]
    fn raw_string_hash_does_not_start_an_attribute() {
        let src = "fn real() { let s = r#\"[cfg(test)]\"#; outside(); }";
        assert_eq!(masked(src, &["outside"]), vec![false]);
    }
}
