//! `dualpar-audit` — trace auditor and source linter for the DualPar
//! workspace.
//!
//! ```text
//! dualpar-audit trace <trace.jsonl> [--json <out.json>] [--tolerate-truncation]
//! dualpar-audit trace --baseline <old-report.json> <new-report.json> \
//!     [--json <out.json>] [--max-regress-pct <pct>]
//! dualpar-audit lint [--root <dir>] [--allow <file>] [--format text|json] [--jobs <n>]
//! ```
//!
//! `--tolerate-truncation` accepts ring-buffer traces whose oldest events
//! were dropped (runs past `trace_capacity`): pairing errors explainable by
//! the missing prefix are counted as warnings instead of violations.
//!
//! `lint` scans `crates/*/src` with the token-aware rule engine (see
//! `docs/LINT.md`): `--jobs` sets the scanner thread count (default 1 —
//! finding order is identical at any count), `--format json` prints the
//! machine-readable report `scripts/check.sh` gates on. Exit is clean only
//! with zero deny findings and zero unused suppressions.
//!
//! `--baseline` switches from trace auditing to report diffing: both
//! arguments are `RunReport` JSON files (`dualpar profile <t> --json`),
//! and the exit code reflects whether any simulated-time metric regressed
//! past `--max-regress-pct` (default 5). When both arguments are instead
//! whole-suite summaries (`dualpar suite` artifacts, schema
//! `dualpar-bench-suite/v1`), the diff runs per suite entry: per-run
//! `sim_events` + report fingerprints must match and every run must have
//! completed, while events-per-second movement (machine-dependent) is
//! reported without gating. See [`dualpar_audit::baseline`].
//!
//! Exit status: 0 — clean; 1 — violations, regressions, or lint findings;
//! 2 — usage or I/O error.

use dualpar_audit::lint::{lint_workspace, AllowList};
use dualpar_audit::{audit_jsonl_str, baseline, AuditConfig};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dualpar-audit trace <trace.jsonl> [--json <out.json>] [--tolerate-truncation]\n       dualpar-audit trace --baseline <old-report.json> <new-report.json> [--json <out.json>] [--max-regress-pct <pct>]\n       dualpar-audit lint [--root <dir>] [--allow <file>] [--format text|json] [--jobs <n>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("trace") => cmd_trace(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("dualpar-audit: {msg}");
            ExitCode::from(2)
        }
    }
}

fn cmd_trace(args: &[String]) -> Result<bool, String> {
    let mut trace_path: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut max_regress_pct = 5.0;
    let mut cfg = AuditConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_out = Some(PathBuf::from(
                    it.next().ok_or("--json needs a path")?,
                ));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a path")?,
                ));
            }
            "--max-regress-pct" => {
                max_regress_pct = it
                    .next()
                    .ok_or("--max-regress-pct needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--max-regress-pct: {e}"))?;
                if !max_regress_pct.is_finite() || max_regress_pct < 0.0 {
                    return Err("--max-regress-pct must be a non-negative number".into());
                }
            }
            "--tolerate-truncation" => cfg.tolerate_truncation = true,
            _ if trace_path.is_none() => trace_path = Some(PathBuf::from(arg)),
            _ => return Err(USAGE.to_string()),
        }
    }
    let trace_path = trace_path.ok_or(USAGE)?;
    if let Some(old_path) = baseline_path {
        return cmd_baseline(&old_path, &trace_path, max_regress_pct, json_out.as_deref());
    }
    let text = fs::read_to_string(&trace_path)
        .map_err(|e| format!("reading {}: {e}", trace_path.display()))?;
    let report = audit_jsonl_str(&text, cfg)
        .map_err(|e| format!("{}: {e}", trace_path.display()))?;
    for v in &report.violations {
        println!(
            "violation at event {} (t={}): [{}] {}",
            v.index, v.t, v.check, v.message
        );
    }
    let json = report.to_json();
    match &json_out {
        Some(path) => fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display()))?,
        None => println!("{json}"),
    }
    eprintln!(
        "dualpar-audit: {} events, {} violation(s), {} truncation warning(s)",
        report.events,
        report.violations.len(),
        report.warnings
    );
    Ok(report.ok())
}

/// Diff a new report against a baseline; clean means no metric regressed
/// past the threshold. When both files are whole-suite summaries
/// (`BENCH_suite.json`), the diff switches to per-run mode: determinism
/// fields (`sim_events`, `report_fingerprint`, completion) gate the exit
/// code, event-rate movement is reported.
fn cmd_baseline(
    old_path: &std::path::Path,
    new_path: &std::path::Path,
    max_regress_pct: f64,
    json_out: Option<&std::path::Path>,
) -> Result<bool, String> {
    let old = fs::read_to_string(old_path)
        .map_err(|e| format!("reading {}: {e}", old_path.display()))?;
    let new = fs::read_to_string(new_path)
        .map_err(|e| format!("reading {}: {e}", new_path.display()))?;
    let diff = baseline::diff_strs_auto(&old, &new, max_regress_pct)?;
    print!("{}", diff.render_text());
    let json = diff.to_json();
    match json_out {
        Some(path) => fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display()))?,
        None => println!("{json}"),
    }
    Ok(diff.ok())
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut json = false;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--allow" => {
                allow_path = Some(PathBuf::from(it.next().ok_or("--allow needs a path")?));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => return Err("--format needs `text` or `json`".into()),
            },
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            _ => return Err(USAGE.to_string()),
        }
    }
    let mut allow = match &allow_path {
        Some(path) => AllowList::load(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?,
        None => AllowList::default(),
    };
    let report = lint_workspace(&root, &mut allow, jobs)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "dualpar-audit: {} file(s), {} deny, {} warn, {} unused suppression(s)",
            report.files_scanned,
            report.deny(),
            report.warn(),
            report.unused_suppressions()
        );
    }
    Ok(report.ok())
}
