//! Baseline comparison of run reports: the triage half of the auditor.
//!
//! `dualpar-audit trace --baseline <old.json> <new.json>` diffs two
//! `RunReport` JSON files (as printed by `dualpar <spec>` or
//! `dualpar profile <target> --json`) and fails — nonzero exit — when the
//! new run regresses past a configurable threshold. Compared metrics, all
//! in simulated time so the check is machine-independent:
//!
//! - **makespan**: `span_profile.makespan` when present, else `sim_end`;
//! - **per-stage latency**: `p50` and `p99` of every request-lifecycle
//!   stage both reports carry (`span_profile.stage_latency`);
//! - **time in state**: seconds per process state summed over processes
//!   (`span_profile.time_in_state`), excluding `proc.compute` — more
//!   compute is not a service regression, more blocked/suspended time is;
//! - **counters**: every counter present in either report is listed in the
//!   diff for context, but never gates the exit code (byte totals move
//!   with workload changes, which is not by itself a regression).
//!
//! A metric regresses when it grows by more than `max_regress_pct` percent
//! *and* by more than an absolute floor of 1 µs — percentage alone would
//! flag nanosecond jitter on near-zero baselines. Metrics appearing in
//! only one report are skipped (there is nothing to compare).

use serde::{find_field, Value};

/// Absolute growth (seconds) below which a metric never counts as a
/// regression, whatever the percentage says.
const ABS_FLOOR_SECS: f64 = 1e-6;

/// One compared metric that moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted metric path, e.g. `stage.server.queue.p99`.
    pub metric: String,
    /// Baseline value (seconds).
    pub old: f64,
    /// New value (seconds).
    pub new: f64,
    /// `(new - old) / old * 100`; infinite when the baseline was zero.
    pub delta_pct: f64,
}

/// One counter present in either report.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Baseline value (0 when absent).
    pub old: u64,
    /// New value (0 when absent).
    pub new: u64,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselineDiff {
    /// Threshold the regression gate used (percent).
    pub max_regress_pct: f64,
    /// Metrics that grew past the threshold, in metric order.
    pub regressions: Vec<MetricDelta>,
    /// Metrics that shrank past the same threshold (context only).
    pub improvements: Vec<MetricDelta>,
    /// Counters whose values differ between the reports.
    pub counters: Vec<CounterDelta>,
}

impl BaselineDiff {
    /// Did the new report avoid every regression?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Machine-readable summary (single JSON object).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"dualpar-audit-baseline/v1\",\"max_regress_pct\":");
        push_f64(&mut out, self.max_regress_pct);
        out.push_str(",\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        for (key, list) in [
            ("regressions", &self.regressions),
            ("improvements", &self.improvements),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, d) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"metric\":\"");
                out.push_str(&d.metric);
                out.push_str("\",\"old\":");
                push_f64(&mut out, d.old);
                out.push_str(",\"new\":");
                push_f64(&mut out, d.new);
                out.push_str(",\"delta_pct\":");
                push_f64(&mut out, d.delta_pct);
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(",\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&c.name);
            out.push_str("\",\"old\":");
            out.push_str(&c.old.to_string());
            out.push_str(",\"new\":");
            out.push_str(&c.new.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering, one metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {:<28} {:>12.6} -> {:>12.6}  (+{:.1}%)\n",
                d.metric, d.old, d.new, d.delta_pct
            ));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "improved   {:<28} {:>12.6} -> {:>12.6}  ({:.1}%)\n",
                d.metric, d.old, d.new, d.delta_pct
            ));
        }
        let changed = self.counters.iter().filter(|c| c.old != c.new).count();
        out.push_str(&format!(
            "baseline diff: {} regression(s), {} improvement(s), {} counter(s) changed (threshold {}%)\n",
            self.regressions.len(),
            self.improvements.len(),
            changed,
            self.max_regress_pct
        ));
        out
    }
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

/// Pull the map entries at a dotted path, or `None` anywhere along it.
fn map_at<'a>(root: &'a Value, path: &[&str]) -> Option<&'a Vec<(String, Value)>> {
    let mut cur = root;
    for key in path {
        cur = find_field(cur.as_map()?, key)?;
    }
    cur.as_map()
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(x) => Some(*x),
        Value::I64(x) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

/// The simulated-seconds metrics of one report, flattened to dotted names.
fn latency_metrics(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let profile = report
        .as_map()
        .and_then(|m| find_field(m, "span_profile"))
        .filter(|v| !matches!(v, Value::Null));
    let makespan = profile
        .and_then(|p| find_field(p.as_map()?, "makespan"))
        .and_then(as_f64)
        .or_else(|| {
            // `sim_end` is a raw nanosecond count; the profile's makespan
            // is in seconds. Normalise so thresholds mean the same thing.
            report
                .as_map()
                .and_then(|m| find_field(m, "sim_end"))
                .and_then(as_f64)
                .map(|ns| ns / 1e9)
        });
    if let Some(m) = makespan {
        out.push(("makespan".to_string(), m));
    }
    let Some(profile) = profile else { return out };
    if let Some(stages) = map_at(profile, &["stage_latency"]) {
        for (stage, summary) in stages {
            let Some(fields) = summary.as_map() else { continue };
            for q in ["p50", "p99"] {
                if let Some(v) = find_field(fields, q).and_then(as_f64) {
                    out.push((format!("stage.{stage}.{q}"), v));
                }
            }
        }
    }
    if let Some(rows) = profile.as_map().and_then(|m| find_field(m, "time_in_state")) {
        let mut by_state: Vec<(String, f64)> = Vec::new();
        for row in rows.as_seq().into_iter().flatten() {
            let Some(states) = map_at(row, &["seconds"]) else { continue };
            for (state, secs) in states {
                if state == "proc.compute" {
                    continue;
                }
                let Some(secs) = as_f64(secs) else { continue };
                match by_state.iter_mut().find(|(s, _)| s == state) {
                    Some((_, total)) => *total += secs,
                    None => by_state.push((state.clone(), secs)),
                }
            }
        }
        for (state, total) in by_state {
            out.push((format!("state.{state}.secs"), total));
        }
    }
    out
}

fn counters(report: &Value) -> Vec<(String, u64)> {
    map_at(report, &["telemetry", "counters"])
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), as_u64(v)?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diff two parsed `RunReport` JSON values. `max_regress_pct` is the growth
/// (percent) past which a simulated-time metric counts as a regression.
pub fn diff_reports(old: &Value, new: &Value, max_regress_pct: f64) -> BaselineDiff {
    let old_metrics = latency_metrics(old);
    let new_metrics = latency_metrics(new);
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (name, old_v) in &old_metrics {
        let Some((_, new_v)) = new_metrics.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let delta = new_v - old_v;
        let delta_pct = if *old_v > 0.0 {
            delta / old_v * 100.0
        } else if delta.abs() <= ABS_FLOOR_SECS {
            0.0
        } else {
            f64::INFINITY * delta.signum()
        };
        let d = MetricDelta {
            metric: name.clone(),
            old: *old_v,
            new: *new_v,
            delta_pct,
        };
        if delta > ABS_FLOOR_SECS && delta_pct > max_regress_pct {
            regressions.push(d);
        } else if delta < -ABS_FLOOR_SECS && delta_pct < -max_regress_pct {
            improvements.push(d);
        }
    }
    let old_counters = counters(old);
    let new_counters = counters(new);
    let mut names: Vec<&String> = old_counters
        .iter()
        .chain(&new_counters)
        .map(|(n, _)| n)
        .collect();
    names.sort_unstable();
    names.dedup();
    let counters = names
        .into_iter()
        .map(|name| CounterDelta {
            name: name.clone(),
            old: old_counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v),
            new: new_counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v),
        })
        .filter(|c| c.old != c.new)
        .collect();
    BaselineDiff {
        max_regress_pct,
        regressions,
        improvements,
        counters,
    }
}

/// Parse two report JSON strings and diff them.
pub fn diff_report_strs(
    old: &str,
    new: &str,
    max_regress_pct: f64,
) -> Result<BaselineDiff, String> {
    let old: Value = serde_json::from_str(old).map_err(|e| format!("baseline report: {e}"))?;
    let new: Value = serde_json::from_str(new).map_err(|e| format!("new report: {e}"))?;
    Ok(diff_reports(&old, &new, max_regress_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(queue_p99: f64, suspended: f64, bytes: u64) -> String {
        format!(
            "{{\"sim_end\":1.0,\"telemetry\":{{\"counters\":{{\"io.bytes_read\":{bytes}}}}},\
             \"span_profile\":{{\"makespan\":1.0,\
             \"stage_latency\":{{\"server.queue\":{{\"count\":4,\"p50\":0.01,\"p99\":{queue_p99}}}}},\
             \"time_in_state\":[{{\"key\":0,\"label\":\"p0/r0\",\"seconds\":{{\"proc.compute\":0.5,\"proc.suspended\":{suspended}}}}}]}}}}"
        )
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = report(0.02, 0.3, 100);
        let d = diff_report_strs(&a, &a, 5.0).unwrap();
        assert!(d.ok());
        assert!(d.improvements.is_empty());
        assert!(d.counters.is_empty());
        assert!(d.to_json().contains("\"ok\":true"));
    }

    #[test]
    fn regression_past_threshold_fails() {
        let old = report(0.02, 0.3, 100);
        let new = report(0.05, 0.3, 100);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert!(!d.ok());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "stage.server.queue.p99");
        assert!((d.regressions[0].delta_pct - 150.0).abs() < 1e-9);
        assert!(d.to_json().contains("\"ok\":false"));
    }

    #[test]
    fn small_moves_and_counters_do_not_fail() {
        // +2% queue p99 under a 5% gate; counters move freely.
        let old = report(0.0200, 0.3, 100);
        let new = report(0.0204, 0.3, 999);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert!(d.ok(), "{:?}", d.regressions);
        assert_eq!(d.counters.len(), 1);
        assert_eq!(d.counters[0].new, 999);
    }

    #[test]
    fn improvements_and_state_time_are_tracked() {
        let old = report(0.02, 0.4, 100);
        let new = report(0.01, 0.6, 100);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "state.proc.suspended.secs");
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].metric, "stage.server.queue.p99");
    }

    #[test]
    fn reports_without_profiles_compare_makespan_only() {
        // `sim_end` is nanoseconds: 1 s baseline doubling to 2 s.
        let old = "{\"sim_end\":1000000000,\"span_profile\":null}";
        let new = "{\"sim_end\":2000000000,\"span_profile\":null}";
        let d = diff_report_strs(old, new, 5.0).unwrap();
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "makespan");
    }
}
