//! Baseline comparison of run reports: the triage half of the auditor.
//!
//! `dualpar-audit trace --baseline <old.json> <new.json>` diffs two
//! `RunReport` JSON files (as printed by `dualpar <spec>` or
//! `dualpar profile <target> --json`) and fails — nonzero exit — when the
//! new run regresses past a configurable threshold. Compared metrics, all
//! in simulated time so the check is machine-independent:
//!
//! - **makespan**: `span_profile.makespan` when present, else `sim_end`;
//! - **per-stage latency**: `p50` and `p99` of every request-lifecycle
//!   stage both reports carry (`span_profile.stage_latency`);
//! - **time in state**: seconds per process state summed over processes
//!   (`span_profile.time_in_state`), excluding `proc.compute` — more
//!   compute is not a service regression, more blocked/suspended time is;
//! - **counters**: every counter present in either report is listed in the
//!   diff for context, but never gates the exit code (byte totals move
//!   with workload changes, which is not by itself a regression).
//!
//! A metric regresses when it grows by more than `max_regress_pct` percent
//! *and* by more than an absolute floor of 1 µs — percentage alone would
//! flag nanosecond jitter on near-zero baselines. Metrics appearing in
//! only one report are skipped (there is nothing to compare).

use serde::{find_field, Value};

/// Absolute growth (seconds) below which a metric never counts as a
/// regression, whatever the percentage says.
const ABS_FLOOR_SECS: f64 = 1e-6;

/// One compared metric that moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted metric path, e.g. `stage.server.queue.p99`.
    pub metric: String,
    /// Baseline value (seconds).
    pub old: f64,
    /// New value (seconds).
    pub new: f64,
    /// `(new - old) / old * 100`; infinite when the baseline was zero.
    pub delta_pct: f64,
}

/// One counter present in either report.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Baseline value (0 when absent).
    pub old: u64,
    /// New value (0 when absent).
    pub new: u64,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselineDiff {
    /// Threshold the regression gate used (percent).
    pub max_regress_pct: f64,
    /// Metrics that grew past the threshold, in metric order.
    pub regressions: Vec<MetricDelta>,
    /// Metrics that shrank past the same threshold (context only).
    pub improvements: Vec<MetricDelta>,
    /// Counters whose values differ between the reports.
    pub counters: Vec<CounterDelta>,
}

impl BaselineDiff {
    /// Did the new report avoid every regression?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Machine-readable summary (single JSON object).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"dualpar-audit-baseline/v1\",\"max_regress_pct\":");
        push_f64(&mut out, self.max_regress_pct);
        out.push_str(",\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        for (key, list) in [
            ("regressions", &self.regressions),
            ("improvements", &self.improvements),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, d) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"metric\":\"");
                out.push_str(&d.metric);
                out.push_str("\",\"old\":");
                push_f64(&mut out, d.old);
                out.push_str(",\"new\":");
                push_f64(&mut out, d.new);
                out.push_str(",\"delta_pct\":");
                push_f64(&mut out, d.delta_pct);
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(",\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&c.name);
            out.push_str("\",\"old\":");
            out.push_str(&c.old.to_string());
            out.push_str(",\"new\":");
            out.push_str(&c.new.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering, one metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {:<28} {:>12.6} -> {:>12.6}  (+{:.1}%)\n",
                d.metric, d.old, d.new, d.delta_pct
            ));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "improved   {:<28} {:>12.6} -> {:>12.6}  ({:.1}%)\n",
                d.metric, d.old, d.new, d.delta_pct
            ));
        }
        let changed = self.counters.iter().filter(|c| c.old != c.new).count();
        out.push_str(&format!(
            "baseline diff: {} regression(s), {} improvement(s), {} counter(s) changed (threshold {}%)\n",
            self.regressions.len(),
            self.improvements.len(),
            changed,
            self.max_regress_pct
        ));
        out
    }
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

/// Pull the map entries at a dotted path, or `None` anywhere along it.
fn map_at<'a>(root: &'a Value, path: &[&str]) -> Option<&'a Vec<(String, Value)>> {
    let mut cur = root;
    for key in path {
        cur = find_field(cur.as_map()?, key)?;
    }
    cur.as_map()
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(x) => Some(*x),
        Value::I64(x) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

/// The simulated-seconds metrics of one report, flattened to dotted names.
fn latency_metrics(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let profile = report
        .as_map()
        .and_then(|m| find_field(m, "span_profile"))
        .filter(|v| !matches!(v, Value::Null));
    let makespan = profile
        .and_then(|p| find_field(p.as_map()?, "makespan"))
        .and_then(as_f64)
        .or_else(|| {
            // `sim_end` is a raw nanosecond count; the profile's makespan
            // is in seconds. Normalise so thresholds mean the same thing.
            report
                .as_map()
                .and_then(|m| find_field(m, "sim_end"))
                .and_then(as_f64)
                .map(|ns| ns / 1e9)
        });
    if let Some(m) = makespan {
        out.push(("makespan".to_string(), m));
    }
    let Some(profile) = profile else { return out };
    if let Some(stages) = map_at(profile, &["stage_latency"]) {
        for (stage, summary) in stages {
            let Some(fields) = summary.as_map() else { continue };
            for q in ["p50", "p99"] {
                if let Some(v) = find_field(fields, q).and_then(as_f64) {
                    out.push((format!("stage.{stage}.{q}"), v));
                }
            }
        }
    }
    if let Some(rows) = profile.as_map().and_then(|m| find_field(m, "time_in_state")) {
        let mut by_state: Vec<(String, f64)> = Vec::new();
        for row in rows.as_seq().into_iter().flatten() {
            let Some(states) = map_at(row, &["seconds"]) else { continue };
            for (state, secs) in states {
                if state == "proc.compute" {
                    continue;
                }
                let Some(secs) = as_f64(secs) else { continue };
                match by_state.iter_mut().find(|(s, _)| s == state) {
                    Some((_, total)) => *total += secs,
                    None => by_state.push((state.clone(), secs)),
                }
            }
        }
        for (state, total) in by_state {
            out.push((format!("state.{state}.secs"), total));
        }
    }
    out
}

fn counters(report: &Value) -> Vec<(String, u64)> {
    map_at(report, &["telemetry", "counters"])
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), as_u64(v)?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diff two parsed `RunReport` JSON values. `max_regress_pct` is the growth
/// (percent) past which a simulated-time metric counts as a regression.
pub fn diff_reports(old: &Value, new: &Value, max_regress_pct: f64) -> BaselineDiff {
    let old_metrics = latency_metrics(old);
    let new_metrics = latency_metrics(new);
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (name, old_v) in &old_metrics {
        let Some((_, new_v)) = new_metrics.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let delta = new_v - old_v;
        let delta_pct = if *old_v > 0.0 {
            delta / old_v * 100.0
        } else if delta.abs() <= ABS_FLOOR_SECS {
            0.0
        } else {
            f64::INFINITY * delta.signum()
        };
        let d = MetricDelta {
            metric: name.clone(),
            old: *old_v,
            new: *new_v,
            delta_pct,
        };
        if delta > ABS_FLOOR_SECS && delta_pct > max_regress_pct {
            regressions.push(d);
        } else if delta < -ABS_FLOOR_SECS && delta_pct < -max_regress_pct {
            improvements.push(d);
        }
    }
    let old_counters = counters(old);
    let new_counters = counters(new);
    let mut names: Vec<&String> = old_counters
        .iter()
        .chain(&new_counters)
        .map(|(n, _)| n)
        .collect();
    names.sort_unstable();
    names.dedup();
    let counters = names
        .into_iter()
        .map(|name| CounterDelta {
            name: name.clone(),
            old: old_counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v),
            new: new_counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v),
        })
        .filter(|c| c.old != c.new)
        .collect();
    BaselineDiff {
        max_regress_pct,
        regressions,
        improvements,
        counters,
    }
}

/// Parse two report JSON strings and diff them.
pub fn diff_report_strs(
    old: &str,
    new: &str,
    max_regress_pct: f64,
) -> Result<BaselineDiff, String> {
    let old: Value = serde_json::from_str(old).map_err(|e| format!("baseline report: {e}"))?;
    let new: Value = serde_json::from_str(new).map_err(|e| format!("new report: {e}"))?;
    Ok(diff_reports(&old, &new, max_regress_pct))
}

/// Schema tag of `dualpar suite` summaries (`BENCH_suite.json`).
/// Duplicates `dualpar_bench::suite::SUITE_SCHEMA` (the two crates are
/// deliberately independent); drift is caught loudly by the check.sh
/// suite-gate stage, where a mismatched tag turns the suite/suite diff
/// into a mixed-document usage error.
pub const SUITE_SCHEMA: &str = "dualpar-bench-suite/v1";

/// Is this parsed JSON document a whole-suite summary rather than a single
/// `RunReport`?
pub fn is_suite_doc(v: &Value) -> bool {
    v.as_map()
        .and_then(|m| find_field(m, "schema"))
        .and_then(Value::as_str)
        == Some(SUITE_SCHEMA)
}

/// One suite entry compared across two `BENCH_suite.json` artifacts.
#[derive(Debug, Clone)]
pub struct SuiteRunDelta {
    /// Suite entry name (shared by both artifacts).
    pub name: String,
    /// Simulated events processed in the baseline run. Simulation-
    /// determined, so inequality with the new count gates the diff.
    pub old_events: u64,
    /// Simulated events processed in the new run.
    pub new_events: u64,
    /// Report fingerprints equal? Also gates — the fingerprint covers the
    /// whole serialized report, so a mismatch means the simulation itself
    /// diverged, not just the machine.
    pub fingerprint_match: bool,
    /// Baseline events per wall-clock second. Machine-dependent, so
    /// reported but never gated here.
    pub old_rate: f64,
    /// New events per wall-clock second.
    pub new_rate: f64,
    /// `(new_rate - old_rate) / old_rate * 100`; 0 when the old rate is 0.
    pub rate_delta_pct: f64,
    /// The baseline run's `error` field (absent before the field existed).
    pub old_error: Option<String>,
    /// The new run's `error` field; any value here gates the diff.
    pub new_error: Option<String>,
}

impl SuiteRunDelta {
    /// Did this entry preserve determinism (and complete) in the new run?
    pub fn ok(&self) -> bool {
        self.new_error.is_none()
            && self.old_events == self.new_events
            && self.fingerprint_match
    }
}

/// Outcome of diffing two whole-suite summaries.
#[derive(Debug, Clone)]
pub struct SuiteDiff {
    /// Entries present in both artifacts, in the baseline's order.
    pub runs: Vec<SuiteRunDelta>,
    /// Entry names only the baseline has (a dropped run gates the diff).
    pub missing_in_new: Vec<String>,
    /// Entry names only the new artifact has (reported, not gated).
    pub added_in_new: Vec<String>,
    /// Baseline aggregate throughput — total events over total wall
    /// seconds across the runs completed in both artifacts.
    pub old_agg_rate: f64,
    /// New aggregate throughput over the same run set.
    pub new_agg_rate: f64,
    /// `(new - old) / old * 100` of the aggregate rate; 0 on a 0 baseline.
    pub agg_rate_delta_pct: f64,
}

impl SuiteDiff {
    /// Clean when every shared entry is deterministic-equal and completed,
    /// and the new artifact dropped nothing.
    pub fn ok(&self) -> bool {
        self.missing_in_new.is_empty() && self.runs.iter().all(SuiteRunDelta::ok)
    }

    /// Machine-readable summary (single JSON object).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"dualpar-audit-suitediff/v1\",\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(",\"old_agg_events_per_sec\":");
        push_f64(&mut out, self.old_agg_rate);
        out.push_str(",\"new_agg_events_per_sec\":");
        push_f64(&mut out, self.new_agg_rate);
        out.push_str(",\"agg_rate_delta_pct\":");
        push_f64(&mut out, self.agg_rate_delta_pct);
        out.push_str(",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&r.name);
            out.push_str("\",\"ok\":");
            out.push_str(if r.ok() { "true" } else { "false" });
            out.push_str(",\"events_match\":");
            out.push_str(if r.old_events == r.new_events { "true" } else { "false" });
            out.push_str(",\"fingerprint_match\":");
            out.push_str(if r.fingerprint_match { "true" } else { "false" });
            out.push_str(",\"old_rate\":");
            push_f64(&mut out, r.old_rate);
            out.push_str(",\"new_rate\":");
            push_f64(&mut out, r.new_rate);
            out.push_str(",\"rate_delta_pct\":");
            push_f64(&mut out, r.rate_delta_pct);
            out.push('}');
        }
        out.push_str("],\"missing_in_new\":[");
        for (i, n) in self.missing_in_new.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(n);
            out.push('"');
        }
        out.push_str("],\"added_in_new\":[");
        for (i, n) in self.added_in_new.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(n);
            out.push('"');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering, one entry per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            let verdict = if let Some(err) = &r.new_error {
                format!("FAILED ({err})")
            } else if r.old_events != r.new_events {
                format!("EVENTS DIVERGED {} -> {}", r.old_events, r.new_events)
            } else if !r.fingerprint_match {
                "FINGERPRINT DIVERGED".to_string()
            } else {
                format!(
                    "{:>12.0} -> {:>12.0} ev/s ({:+.1}%)",
                    r.old_rate, r.new_rate, r.rate_delta_pct
                )
            };
            out.push_str(&format!("{:<20} {verdict}\n", r.name));
        }
        for n in &self.missing_in_new {
            out.push_str(&format!("{n:<20} MISSING from new artifact\n"));
        }
        for n in &self.added_in_new {
            out.push_str(&format!("{n:<20} new entry (no baseline)\n"));
        }
        out.push_str(&format!(
            "suite diff: aggregate {:.0} -> {:.0} ev/s ({:+.1}%), {} entries compared, determinism {}\n",
            self.old_agg_rate,
            self.new_agg_rate,
            self.agg_rate_delta_pct,
            self.runs.len(),
            if self.ok() { "ok" } else { "VIOLATED" }
        ));
        out
    }
}

/// The fields of one run summary this diff consumes.
struct SuiteRunFields {
    name: String,
    wall_secs: f64,
    sim_events: u64,
    fingerprint: String,
    error: Option<String>,
}

fn suite_runs(doc: &Value) -> Result<Vec<SuiteRunFields>, String> {
    let runs = doc
        .as_map()
        .and_then(|m| find_field(m, "runs"))
        .and_then(Value::as_seq)
        .ok_or("suite summary has no \"runs\" list")?;
    let mut out = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        let m = run
            .as_map()
            .ok_or_else(|| format!("runs[{i}]: expected an object"))?;
        let name = find_field(m, "name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("runs[{i}]: missing string field \"name\""))?
            .to_string();
        let wall_secs = find_field(m, "wall_secs")
            .and_then(as_f64)
            .ok_or_else(|| format!("runs[{i}] ({name}): missing \"wall_secs\""))?;
        let sim_events = find_field(m, "sim_events")
            .and_then(as_u64)
            .ok_or_else(|| format!("runs[{i}] ({name}): missing \"sim_events\""))?;
        let fingerprint = find_field(m, "report_fingerprint")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("runs[{i}] ({name}): missing \"report_fingerprint\""))?
            .to_string();
        // Absent before the field existed; null for a completed run.
        let error = find_field(m, "error")
            .and_then(Value::as_str)
            .map(str::to_string);
        out.push(SuiteRunFields {
            name,
            wall_secs,
            sim_events,
            fingerprint,
            error,
        });
    }
    Ok(out)
}

fn rate_of(events: u64, wall: f64) -> f64 {
    if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    }
}

fn pct_delta(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        (new - old) / old * 100.0
    } else {
        0.0
    }
}

/// Diff two parsed `BENCH_suite.json` documents: determinism fields
/// (`sim_events`, `report_fingerprint`, run completion) gate; event-rate
/// movement is reported.
pub fn diff_suites(old: &Value, new: &Value) -> Result<SuiteDiff, String> {
    let old_runs = suite_runs(old).map_err(|e| format!("baseline suite: {e}"))?;
    let new_runs = suite_runs(new).map_err(|e| format!("new suite: {e}"))?;
    let mut runs = Vec::new();
    let mut missing_in_new = Vec::new();
    let mut totals = (0u64, 0f64, 0u64, 0f64); // old ev, old wall, new ev, new wall
    for o in &old_runs {
        let Some(n) = new_runs.iter().find(|n| n.name == o.name) else {
            missing_in_new.push(o.name.clone());
            continue;
        };
        let old_rate = rate_of(o.sim_events, o.wall_secs);
        let new_rate = rate_of(n.sim_events, n.wall_secs);
        if o.error.is_none() && n.error.is_none() {
            totals.0 = totals.0.saturating_add(o.sim_events);
            totals.1 += o.wall_secs;
            totals.2 = totals.2.saturating_add(n.sim_events);
            totals.3 += n.wall_secs;
        }
        runs.push(SuiteRunDelta {
            name: o.name.clone(),
            old_events: o.sim_events,
            new_events: n.sim_events,
            fingerprint_match: o.fingerprint == n.fingerprint,
            old_rate,
            new_rate,
            rate_delta_pct: pct_delta(old_rate, new_rate),
            old_error: o.error.clone(),
            new_error: n.error.clone(),
        });
    }
    let added_in_new = new_runs
        .iter()
        .filter(|n| old_runs.iter().all(|o| o.name != n.name))
        .map(|n| n.name.clone())
        .collect();
    let old_agg_rate = rate_of(totals.0, totals.1);
    let new_agg_rate = rate_of(totals.2, totals.3);
    Ok(SuiteDiff {
        runs,
        missing_in_new,
        added_in_new,
        old_agg_rate,
        new_agg_rate,
        agg_rate_delta_pct: pct_delta(old_agg_rate, new_agg_rate),
    })
}

/// Either kind of baseline comparison, picked by document schema.
#[derive(Debug, Clone)]
pub enum AnyDiff {
    /// Two single `RunReport`s, diffed on simulated-time metrics.
    Report(BaselineDiff),
    /// Two whole-suite summaries, diffed per run.
    Suite(SuiteDiff),
}

impl AnyDiff {
    /// Did the comparison pass its gate (no regressions / no divergence)?
    pub fn ok(&self) -> bool {
        match self {
            AnyDiff::Report(d) => d.ok(),
            AnyDiff::Suite(d) => d.ok(),
        }
    }

    /// Machine-readable summary of whichever diff ran.
    pub fn to_json(&self) -> String {
        match self {
            AnyDiff::Report(d) => d.to_json(),
            AnyDiff::Suite(d) => d.to_json(),
        }
    }

    /// Human-readable rendering of whichever diff ran.
    pub fn render_text(&self) -> String {
        match self {
            AnyDiff::Report(d) => d.render_text(),
            AnyDiff::Suite(d) => d.render_text(),
        }
    }
}

/// Parse two JSON strings and diff them as whatever they are: two
/// `BENCH_suite.json` summaries get the per-run suite diff, two
/// `RunReport`s the metric diff, and a mixed pair is a usage error.
pub fn diff_strs_auto(old: &str, new: &str, max_regress_pct: f64) -> Result<AnyDiff, String> {
    let old: Value = serde_json::from_str(old).map_err(|e| format!("baseline report: {e}"))?;
    let new: Value = serde_json::from_str(new).map_err(|e| format!("new report: {e}"))?;
    match (is_suite_doc(&old), is_suite_doc(&new)) {
        (true, true) => Ok(AnyDiff::Suite(diff_suites(&old, &new)?)),
        (false, false) => Ok(AnyDiff::Report(diff_reports(&old, &new, max_regress_pct))),
        (true, false) => Err("baseline is a suite summary but the new file is not".into()),
        (false, true) => Err("new file is a suite summary but the baseline is not".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(queue_p99: f64, suspended: f64, bytes: u64) -> String {
        format!(
            "{{\"sim_end\":1.0,\"telemetry\":{{\"counters\":{{\"io.bytes_read\":{bytes}}}}},\
             \"span_profile\":{{\"makespan\":1.0,\
             \"stage_latency\":{{\"server.queue\":{{\"count\":4,\"p50\":0.01,\"p99\":{queue_p99}}}}},\
             \"time_in_state\":[{{\"key\":0,\"label\":\"p0/r0\",\"seconds\":{{\"proc.compute\":0.5,\"proc.suspended\":{suspended}}}}}]}}}}"
        )
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = report(0.02, 0.3, 100);
        let d = diff_report_strs(&a, &a, 5.0).unwrap();
        assert!(d.ok());
        assert!(d.improvements.is_empty());
        assert!(d.counters.is_empty());
        assert!(d.to_json().contains("\"ok\":true"));
    }

    #[test]
    fn regression_past_threshold_fails() {
        let old = report(0.02, 0.3, 100);
        let new = report(0.05, 0.3, 100);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert!(!d.ok());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "stage.server.queue.p99");
        assert!((d.regressions[0].delta_pct - 150.0).abs() < 1e-9);
        assert!(d.to_json().contains("\"ok\":false"));
    }

    #[test]
    fn small_moves_and_counters_do_not_fail() {
        // +2% queue p99 under a 5% gate; counters move freely.
        let old = report(0.0200, 0.3, 100);
        let new = report(0.0204, 0.3, 999);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert!(d.ok(), "{:?}", d.regressions);
        assert_eq!(d.counters.len(), 1);
        assert_eq!(d.counters[0].new, 999);
    }

    #[test]
    fn improvements_and_state_time_are_tracked() {
        let old = report(0.02, 0.4, 100);
        let new = report(0.01, 0.6, 100);
        let d = diff_report_strs(&old, &new, 5.0).unwrap();
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "state.proc.suspended.secs");
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].metric, "stage.server.queue.p99");
    }

    fn suite_doc(runs: &[(&str, f64, u64, &str, Option<&str>)]) -> String {
        let mut body = String::new();
        for (i, (name, wall, events, fp, err)) in runs.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let err = match err {
                Some(e) => format!("\"{e}\""),
                None => "null".to_string(),
            };
            body.push_str(&format!(
                "{{\"name\":\"{name}\",\"wall_secs\":{wall},\"sim_events\":{events},\
                 \"report_fingerprint\":\"{fp}\",\"error\":{err}}}"
            ));
        }
        format!(
            "{{\"schema\":\"{SUITE_SCHEMA}\",\"jobs\":4,\"total_wall_secs\":1.0,\"runs\":[{body}]}}"
        )
    }

    #[test]
    fn suite_diff_gates_determinism_and_reports_rates() {
        let old = suite_doc(&[
            ("a", 1.0, 1000, "aaaa", None),
            ("b", 2.0, 4000, "bbbb", None),
        ]);
        // Same events+fingerprints, faster walls: clean, rate reported up.
        let faster = suite_doc(&[
            ("a", 0.5, 1000, "aaaa", None),
            ("b", 1.0, 4000, "bbbb", None),
        ]);
        let d = match diff_strs_auto(&old, &faster, 5.0).unwrap() {
            AnyDiff::Suite(d) => d,
            other => panic!("expected suite diff, got {other:?}"),
        };
        assert!(d.ok());
        assert!((d.agg_rate_delta_pct - 100.0).abs() < 1e-9, "{d:?}");
        assert!(d.to_json().contains("\"ok\":true"));
        // A fingerprint flip, an event-count drift, or a failed run gates.
        let diverged = suite_doc(&[
            ("a", 1.0, 1000, "XXXX", None),
            ("b", 2.0, 4000, "bbbb", None),
        ]);
        assert!(!diff_strs_auto(&old, &diverged, 5.0).unwrap().ok());
        let drifted = suite_doc(&[
            ("a", 1.0, 1001, "aaaa", None),
            ("b", 2.0, 4000, "bbbb", None),
        ]);
        assert!(!diff_strs_auto(&old, &drifted, 5.0).unwrap().ok());
        let failed = suite_doc(&[
            ("a", 1.0, 1000, "aaaa", None),
            ("b", 0.0, 0, "", Some("timed out after 1.0s wall-clock")),
        ]);
        assert!(!diff_strs_auto(&old, &failed, 5.0).unwrap().ok());
        // A dropped entry gates; an added one does not.
        let dropped = suite_doc(&[("a", 1.0, 1000, "aaaa", None)]);
        let d = match diff_strs_auto(&old, &dropped, 5.0).unwrap() {
            AnyDiff::Suite(d) => d,
            other => panic!("expected suite diff, got {other:?}"),
        };
        assert!(!d.ok());
        assert_eq!(d.missing_in_new, vec!["b".to_string()]);
        let grown = suite_doc(&[
            ("a", 1.0, 1000, "aaaa", None),
            ("b", 2.0, 4000, "bbbb", None),
            ("c", 1.0, 500, "cccc", None),
        ]);
        let d = match diff_strs_auto(&old, &grown, 5.0).unwrap() {
            AnyDiff::Suite(d) => d,
            other => panic!("expected suite diff, got {other:?}"),
        };
        assert!(d.ok());
        assert_eq!(d.added_in_new, vec!["c".to_string()]);
    }

    #[test]
    fn suite_diff_accepts_legacy_summaries_without_error_field() {
        // Pre-timeout artifacts have no "error" key at all.
        let legacy = format!(
            "{{\"schema\":\"{SUITE_SCHEMA}\",\"runs\":[{{\"name\":\"a\",\"wall_secs\":1.0,\
             \"sim_events\":10,\"report_fingerprint\":\"ffff\"}}]}}"
        );
        let current = suite_doc(&[("a", 1.0, 10, "ffff", None)]);
        assert!(diff_strs_auto(&legacy, &current, 5.0).unwrap().ok());
    }

    #[test]
    fn mixed_document_kinds_are_a_usage_error() {
        let report = report(0.02, 0.3, 100);
        let suite = suite_doc(&[("a", 1.0, 10, "ffff", None)]);
        assert!(diff_strs_auto(&report, &suite, 5.0).is_err());
        assert!(diff_strs_auto(&suite, &report, 5.0).is_err());
        // And two plain reports still take the metric path.
        assert!(matches!(
            diff_strs_auto(&report, &report, 5.0).unwrap(),
            AnyDiff::Report(_)
        ));
    }

    #[test]
    fn reports_without_profiles_compare_makespan_only() {
        // `sim_end` is nanoseconds: 1 s baseline doubling to 2 s.
        let old = "{\"sim_end\":1000000000,\"span_profile\":null}";
        let new = "{\"sim_end\":2000000000,\"span_profile\":null}";
        let d = diff_report_strs(old, new, 5.0).unwrap();
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "makespan");
    }
}
