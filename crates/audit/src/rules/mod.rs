//! Lint rule registry: names, severities, scopes.
//!
//! Every finding the engine can produce references a rule in [`RULES`].
//! Rules come in two severities: **deny** rules fail the lint gate
//! (`scripts/check.sh` requires zero), **warn** rules are reported but do
//! not flip the exit code. Suppressions (file-level allow-list entries and
//! inline `audit:allow` comments) apply to both.

pub mod schema;
pub mod source;

use std::fmt;

/// How serious a rule violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the lint gate.
    Warn,
    /// Fails the lint gate; `check.sh` requires zero of these.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Where a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every `crates/*/src` file.
    Workspace,
    /// Only the disk/cache hot paths (`crates/disk/src`, `crates/cache/src`).
    HotPath,
}

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name, as used in findings and allow-list entries.
    pub name: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Which files the rule runs on.
    pub scope: Scope,
    /// One-line human summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, in stable report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unwrap",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: ".unwrap() in library code — use expect(...) or propagate",
    },
    RuleInfo {
        name: "panic",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "panic!(...) in library code — return an error instead",
    },
    RuleInfo {
        name: "std-mutex",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "std::sync::Mutex — the workspace standardizes on parking_lot",
    },
    RuleInfo {
        name: "narrowing-cast",
        severity: Severity::Deny,
        scope: Scope::HotPath,
        summary: "narrowing `as` cast in a hot path — truncated LBN/byte count",
    },
    RuleInfo {
        name: "overflow-arith",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "unguarded +/* on an overflow-sensitive quantity (time, deadline, lbn, ...)",
    },
    RuleInfo {
        name: "std-hash",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "std HashMap/HashSet — use dualpar_sim::hash::{FxHashMap, FxHashSet} for deterministic iteration",
    },
    RuleInfo {
        name: "wall-clock",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "Instant::now/SystemTime::now — wall-clock reads break replay determinism",
    },
    RuleInfo {
        name: "thread-id",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "thread::current() — thread identity is nondeterministic across runs",
    },
    RuleInfo {
        name: "raw-thread",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "thread::spawn/scope or raw mpsc channel — concurrency lives in simcore::pool and simcore::shard only",
    },
    RuleInfo {
        name: "env-read",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "env::var/vars — environment reads make runs machine-dependent",
    },
    RuleInfo {
        name: "float-accum",
        severity: Severity::Warn,
        scope: Scope::Workspace,
        summary: ".sum/.product::<f32|f64>() — float accumulation order sensitivity",
    },
    RuleInfo {
        name: "trace-schema",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "emitted (component, kind) pair out of sync with telemetry's TRACE_SCHEMA",
    },
    RuleInfo {
        name: "unused-suppression",
        severity: Severity::Deny,
        scope: Scope::Workspace,
        summary: "allow-list entry no longer matches any finding — delete it",
    },
];

/// Look up a rule by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Severity of a rule (engine-internal convenience; panics on unknown
/// names, which would be a bug in the rule implementations).
pub fn severity_of(name: &str) -> Severity {
    rule_info(name)
        .unwrap_or_else(|| unreachable!("unknown rule {name}"))
        .severity
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn lookup_and_severity() {
        assert_eq!(rule_info("unwrap").unwrap().severity, Severity::Deny);
        assert_eq!(severity_of("float-accum"), Severity::Warn);
        assert!(rule_info("no-such-rule").is_none());
        assert!(Severity::Deny > Severity::Warn);
    }
}
