//! Static trace-schema cross-check.
//!
//! The simulator's trace records are the contract between the engine and
//! the auditor: every emit site passes a `(component, kind)` string-literal
//! pair, and `dualpar_telemetry::schema::TRACE_SCHEMA` is the canonical
//! registry of pairs the auditor understands. This module closes the loop
//! *statically*: it extracts every literal pair passed to a trace
//! constructor anywhere in the workspace and diffs the set against the
//! registry, so that
//!
//! - an emit site using an unregistered pair (the auditor would silently
//!   ignore those records) is a deny finding at the emit site, and
//! - a registered pair with no non-test emit site (a dead audit check) is
//!   a deny finding anchored at the schema table.
//!
//! Extraction is deliberately conservative: a pair is recorded only when
//! the second and third arguments of a `TraceEvent::new(…)` or `.event(…)`
//! call are each exactly one string-literal token. Call sites that forward
//! non-literal component/kind values (e.g. `Telemetry::event`'s generic
//! pass-through inside the telemetry crate itself) are skipped rather than
//! guessed at.

use crate::itemtree::MASK_TEST;
use crate::lexer::{TokKind, Token};

/// One statically-extracted trace emit site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEmit {
    /// Component literal (`"disk"`, `"emc"`, ...).
    pub component: String,
    /// Kind literal (`"start"`, `"mode"`, ...).
    pub kind: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Extract every `(component, kind)` literal pair passed to
/// `TraceEvent::new(t, c, k, …)` or `….event(t, c, k, …)` in non-test
/// code.
pub fn extract_trace_emits(src: &str, toks: &[Token], mask: &[u8]) -> Vec<TraceEmit> {
    // Code view: comments and test-masked tokens stripped.
    let code: Vec<&Token> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| !t.is_comment() && mask[*i] & MASK_TEST == 0)
        .map(|(_, t)| t)
        .collect();
    let ident = |i: usize, text: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == text)
    };
    let punct = |i: usize, c: char| code.get(i).is_some_and(|t| t.punct(src) == Some(c));

    let mut emits = Vec::new();
    for i in 0..code.len() {
        // `TraceEvent::new(` — 5 tokens; `.event(` — 3 tokens.
        let (call_line, open) = if ident(i, "TraceEvent")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && ident(i + 3, "new")
            && punct(i + 4, '(')
        {
            (code[i].line, i + 4)
        } else if punct(i, '.') && ident(i + 1, "event") && punct(i + 2, '(') {
            (code[i + 1].line, i + 2)
        } else {
            continue;
        };
        // Split the argument list at top-level commas.
        let mut args: Vec<(usize, usize)> = Vec::new(); // [start, end) in code indices
        let mut depth = 1u32;
        let mut arg_start = open + 1;
        let mut j = open + 1;
        while j < code.len() && depth > 0 {
            match code[j].punct(src) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        args.push((arg_start, j));
                    }
                }
                Some(',') if depth == 1 => {
                    args.push((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        // component = arg 1, kind = arg 2; both must be a single string
        // literal, otherwise the site forwards non-literal values.
        let literal = |r: &(usize, usize)| -> Option<String> {
            if r.1 - r.0 != 1 {
                return None;
            }
            code[r.0].str_inner(src).map(str::to_string)
        };
        if let (Some(c_arg), Some(k_arg)) = (args.get(1), args.get(2)) {
            if let (Some(component), Some(kind)) = (literal(c_arg), literal(k_arg)) {
                emits.push(TraceEmit {
                    component,
                    kind,
                    line: call_line,
                });
            }
        }
    }
    emits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemtree::cfg_mask;
    use crate::lexer::lex;

    fn extract(src: &str) -> Vec<(String, String)> {
        let toks = lex(src);
        let mask = cfg_mask(src, &toks);
        extract_trace_emits(src, &toks, &mask)
            .into_iter()
            .map(|e| (e.component, e.kind))
            .collect()
    }

    #[test]
    fn extracts_literal_pairs_from_both_constructors() {
        let src = r#"
            fn f(tel: &mut Telemetry, t: SimTime) {
                tel.event(t, "disk", "start", |e| e.num("lbn", 4));
                let ev = TraceEvent::new(t, "emc", "mode");
                push(ev);
            }
        "#;
        assert_eq!(
            extract(src),
            vec![
                ("disk".to_string(), "start".to_string()),
                ("emc".to_string(), "mode".to_string()),
            ]
        );
    }

    #[test]
    fn skips_non_literal_pass_through_sites() {
        // Telemetry::event's generic forwarding — component/kind are
        // parameters, not literals: must not be recorded.
        let src = r#"
            pub fn event(&mut self, t: SimTime, component: &'static str, kind: &'static str) {
                self.push(TraceEvent::new(t, component, kind));
            }
        "#;
        assert!(extract(src).is_empty());
    }

    #[test]
    fn skips_test_masked_emits() {
        let src = r#"
            fn real(tel: &mut Telemetry, t: SimTime) {
                tel.event(t, "span", "open", |e| e);
            }
            #[cfg(test)]
            mod tests {
                fn t(tel: &mut Telemetry, tt: SimTime) {
                    tel.event(tt, "x", "k", |e| e);
                }
            }
        "#;
        assert_eq!(extract(src), vec![("span".to_string(), "open".to_string())]);
    }

    #[test]
    fn nested_call_arguments_do_not_split_the_pair() {
        let src = r#"
            fn f(tel: &mut Telemetry) {
                tel.event(clock.at(now(), 3), "crm", "phase", |e| e.num("p", phase(a, b)));
            }
        "#;
        assert_eq!(extract(src), vec![("crm".to_string(), "phase".to_string())]);
    }

    #[test]
    fn raw_string_kinds_are_unwrapped() {
        let src = r##"fn f(tel: &mut Telemetry, t: SimTime) { tel.event(t, r"cache", r#"conservation"#, |e| e); }"##;
        assert_eq!(
            extract(src),
            vec![("cache".to_string(), "conservation".to_string())]
        );
    }
}
