//! Token-level source rules.
//!
//! All rules operate on the *code view* of a file: the lexer's token
//! stream with comments and `#[cfg(test)]`-masked tokens removed. That
//! makes them immune to the classic regex-lint false positives — a
//! `.unwrap()` inside a raw string, a `panic!` in a doc comment, a `'a'`
//! char literal derailing quote tracking — while staying fast enough to
//! scan the whole workspace in milliseconds.
//!
//! Each hit is reported as `(line, rule-name)`; the engine attaches file
//! paths, severities, and source text. A rule fires at most once per
//! (rule, line) pair, which keeps findings stable under mechanical
//! reformatting and matches the granularity of the suppression syntax.

use crate::itemtree::MASK_TEST;
use crate::lexer::{TokKind, Token};

/// Identifier fragments marking a quantity whose overflow corrupts
/// scheduling decisions rather than merely panicking.
const OVERFLOW_NOUNS: [&str; 9] = [
    "now", "time", "deadline", "arrival", "slice", "expire", "window", "lbn", "sector",
];

/// Identifier fragments marking a line as deliberately overflow-aware.
const OVERFLOW_GUARDS: [&str; 5] = ["checked_", "saturating_", "wrapping_", "abs_diff", "u128"];

/// Narrowing cast targets banned in hot paths (`as usize`/`as u64` are not
/// narrowing on the supported targets).
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// A view of one file's tokens with comments and test-masked tokens
/// stripped: what the rules treat as "code".
struct CodeView<'s> {
    src: &'s str,
    /// Indices into the original token slice, in order.
    idx: Vec<usize>,
    toks: &'s [Token],
}

impl<'s> CodeView<'s> {
    fn new(src: &'s str, toks: &'s [Token], mask: &[u8]) -> CodeView<'s> {
        let idx = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.is_comment() && mask[*i] & MASK_TEST == 0)
            .map(|(i, _)| i)
            .collect();
        CodeView { src, idx, toks }
    }

    fn len(&self) -> usize {
        self.idx.len()
    }

    fn tok(&self, i: usize) -> &Token {
        &self.toks[self.idx[i]]
    }

    /// Is code token `i` the identifier `text`?
    fn is_ident(&self, i: usize, text: &str) -> bool {
        i < self.len() && {
            let t = self.tok(i);
            t.kind == TokKind::Ident && t.text(self.src) == text
        }
    }

    /// Is code token `i` the punctuation `c`?
    fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.len() && self.tok(i).punct(self.src) == Some(c)
    }

    /// Does the path separator `::` start at code token `i`?
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// Does the ident sequence `a::b::…` start at code token `i`?
    fn is_path(&self, i: usize, segs: &[&str]) -> bool {
        let mut j = i;
        for (n, seg) in segs.iter().enumerate() {
            if n > 0 {
                if !self.is_path_sep(j) {
                    return false;
                }
                j += 2;
            }
            if !self.is_ident(j, seg) {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// Can a `+` / `*` with this token on its left be a binary operator?
/// (An ident, literal, or closing delimiter ends an operand; after
/// anything else — including statement keywords like `if` or `return` —
/// the `+`/`*` is unary, a deref, or part of `::*`.)
fn ends_operand(src: &str, t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(
            t.text(src),
            "if" | "else"
                | "match"
                | "return"
                | "while"
                | "in"
                | "let"
                | "mut"
                | "ref"
                | "move"
                | "break"
                | "continue"
                | "loop"
                | "unsafe"
                | "yield"
        ),
        TokKind::Num | TokKind::Char | TokKind::Str | TokKind::RawStr => true,
        TokKind::Punct => matches!(t.punct(src), Some(')') | Some(']') | Some('}')),
        _ => false,
    }
}

/// Scan one file's tokens and report `(line, rule)` hits.
///
/// `hot` enables the hot-path-only rules (narrowing-cast). Findings are
/// deduplicated per (rule, line) and returned in source order.
pub fn scan_tokens(src: &str, toks: &[Token], mask: &[u8], hot: bool) -> Vec<(u32, &'static str)> {
    let code = CodeView::new(src, toks, mask);
    let mut hits: Vec<(u32, &'static str)> = Vec::new();
    let hit = |line: u32, rule: &'static str, hits: &mut Vec<(u32, &'static str)>| {
        if !hits.contains(&(line, rule)) {
            hits.push((line, rule));
        }
    };

    for i in 0..code.len() {
        let t = code.tok(i);
        let line = t.line;
        match t.kind {
            TokKind::Punct if code.is_punct(i, '.') => {
                // `.unwrap(` — expect()/propagation is required in library code.
                if code.is_ident(i + 1, "unwrap") && code.is_punct(i + 2, '(') {
                    hit(code.tok(i + 1).line, "unwrap", &mut hits);
                }
                // `.sum::<f32|f64>(` / `.product::<f32|f64>(` — order-sensitive
                // float accumulation.
                if (code.is_ident(i + 1, "sum") || code.is_ident(i + 1, "product"))
                    && code.is_path_sep(i + 2)
                    && code.is_punct(i + 4, '<')
                    && (code.is_ident(i + 5, "f32") || code.is_ident(i + 5, "f64"))
                {
                    hit(code.tok(i + 1).line, "float-accum", &mut hits);
                }
            }
            TokKind::Ident => {
                let text = t.text(src);
                match text {
                    "panic" if code.is_punct(i + 1, '!') && code.is_punct(i + 2, '(') => {
                        hit(line, "panic", &mut hits);
                    }
                    "std" if code.is_path(i, &["std", "sync", "Mutex"]) => {
                        hit(line, "std-mutex", &mut hits);
                    }
                    "std" if code.is_path(i, &["std", "collections"])
                        // `std::collections::HashMap` (or a `{...}` use-group
                        // containing HashMap/HashSet). VecDeque/BTreeMap are
                        // fine — only the RandomState-seeded types are banned.
                        && code.is_path_sep(i + 4) => {
                            let j = i + 6;
                            if code.is_ident(j, "HashMap") || code.is_ident(j, "HashSet") {
                                hit(code.tok(j).line, "std-hash", &mut hits);
                            } else if code.is_punct(j, '{') {
                                let mut k = j + 1;
                                let mut depth = 1u32;
                                while k < code.len() && depth > 0 {
                                    if code.is_punct(k, '{') {
                                        depth += 1;
                                    } else if code.is_punct(k, '}') {
                                        depth -= 1;
                                    } else if code.is_ident(k, "HashMap")
                                        || code.is_ident(k, "HashSet")
                                    {
                                        hit(code.tok(k).line, "std-hash", &mut hits);
                                    }
                                    k += 1;
                                }
                            }
                        }
                    "Instant" | "SystemTime"
                        if code.is_path_sep(i + 1) && code.is_ident(i + 3, "now") =>
                    {
                        hit(line, "wall-clock", &mut hits);
                    }
                    "thread" if code.is_path_sep(i + 1) && code.is_ident(i + 3, "current") => {
                        hit(line, "thread-id", &mut hits);
                    }
                    // Raw concurrency construction: worker threads and the
                    // channels between them live in simcore::pool and
                    // simcore::shard (allow-listed), so every other crate
                    // inherits their determinism arguments instead of
                    // hand-rolling its own.
                    "thread"
                        if code.is_path_sep(i + 1)
                            && (code.is_ident(i + 3, "spawn") || code.is_ident(i + 3, "scope")) =>
                    {
                        hit(line, "raw-thread", &mut hits);
                    }
                    "mpsc"
                        if code.is_path_sep(i + 1)
                            && (code.is_ident(i + 3, "channel")
                                || code.is_ident(i + 3, "sync_channel")) =>
                    {
                        hit(line, "raw-thread", &mut hits);
                    }
                    "env"
                        if code.is_path_sep(i + 1)
                            && (code.is_ident(i + 3, "var")
                                || code.is_ident(i + 3, "var_os")
                                || code.is_ident(i + 3, "vars")) =>
                    {
                        hit(line, "env-read", &mut hits);
                    }
                    "as" if hot
                        && NARROW_TARGETS.iter().any(|n| code.is_ident(i + 1, n)) => {
                            hit(line, "narrowing-cast", &mut hits);
                        }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    overflow_arith(&code, &mut hits);
    hits.sort_by_key(|&(line, rule)| (line, rule));
    hits
}

/// The overflow-arith rule: per line, a binary `+`/`*` (including `+=` /
/// `*=`) on a line that names an overflow-sensitive quantity and carries
/// no guard (`checked_*`, `saturating_*`, `wrapping_*`, `abs_diff`,
/// widening through `u128`).
fn overflow_arith(code: &CodeView<'_>, hits: &mut Vec<(u32, &'static str)>) {
    let mut i = 0;
    while i < code.len() {
        let line = code.tok(i).line;
        // The extent of this source line in the code view.
        let mut end = i;
        while end < code.len() && code.tok(end).line == line {
            end += 1;
        }
        let mut has_op = false;
        for j in i..end {
            let t = code.tok(j);
            if matches!(t.punct(code.src), Some('+') | Some('*'))
                && j > 0
                && ends_operand(code.src, code.tok(j - 1))
            {
                // `x + y`, `x += y`, `x * y`, `x *= y` — but not `x++`-less
                // unary forms, derefs, or glob imports (those never follow
                // an operand-ending token).
                has_op = true;
                break;
            }
        }
        if has_op {
            let mut noun = false;
            let mut guard = false;
            for j in i..end {
                let t = code.tok(j);
                if t.kind == TokKind::Ident {
                    let text = t.text(code.src);
                    noun |= OVERFLOW_NOUNS.iter().any(|n| text.contains(n));
                    guard |= OVERFLOW_GUARDS.iter().any(|g| text.contains(g));
                }
            }
            if noun && !guard && !hits.contains(&(line, "overflow-arith")) {
                hits.push((line, "overflow-arith"));
            }
        }
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemtree::cfg_mask;
    use crate::lexer::lex;

    fn scan(src: &str, hot: bool) -> Vec<&'static str> {
        let toks = lex(src);
        let mask = cfg_mask(src, &toks);
        scan_tokens(src, &toks, &mask, hot)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_panic_in_library_code() {
        let src = "fn f() {\n    let x = opt.unwrap();\n    panic!(\"boom\");\n}\n";
        assert_eq!(scan(src, false), vec!["unwrap", "panic"]);
    }

    #[test]
    fn skips_cfg_test_comments_and_strings() {
        let src = "fn f() {}\n\
                   // opt.unwrap() in a comment is fine\n\
                   /* panic!(\"nested\") in /* block */ comments too */\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { opt.unwrap(); panic!(\"ok in tests\"); }\n\
                   }\n";
        assert!(scan(src, false).is_empty());
        let src = "fn f() { let s = \".unwrap() panic!( std::sync::Mutex\"; use_(s); }\n";
        assert!(scan(src, false).is_empty());
        let src = "fn f() { let s = r#\"x.unwrap() 'a' Instant::now()\"#; use_(s); }\n";
        assert!(scan(src, false).is_empty());
    }

    #[test]
    fn char_literals_do_not_derail_the_scan() {
        let src = "fn f(c: char) { match c { '\"' => opt.unwrap(), _ => {} } }\n";
        assert_eq!(scan(src, false), vec!["unwrap"]);
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim().unwrap() }\n";
        assert_eq!(scan(src, false), vec!["unwrap"]);
    }

    #[test]
    fn std_mutex_and_std_hash_paths() {
        assert_eq!(
            scan("use std::sync::Mutex;\n", false),
            vec!["std-mutex"]
        );
        assert_eq!(
            scan("use std::collections::HashMap;\n", false),
            vec!["std-hash"]
        );
        assert_eq!(
            scan("fn f() -> std::collections::HashSet<u32> { todo_() }\n", false),
            vec!["std-hash"]
        );
        // Grouped imports: each banned type inside the braces is one hit
        // (dedup per line collapses them).
        assert_eq!(
            scan("use std::collections::{BTreeMap, HashMap, HashSet};\n", false),
            vec!["std-hash"]
        );
        // Deterministic collections pass.
        assert!(scan("use std::collections::{BTreeMap, VecDeque};\n", false).is_empty());
        // FxHash types pass.
        assert!(scan("use dualpar_sim::hash::{FxHashMap, FxHashSet};\n", false).is_empty());
    }

    #[test]
    fn determinism_hazards() {
        assert_eq!(
            scan("fn f() { let t0 = std::time::Instant::now(); use_(t0); }\n", false),
            vec!["wall-clock"]
        );
        assert_eq!(
            scan("fn f() { let t = SystemTime::now(); use_(t); }\n", false),
            vec!["wall-clock"]
        );
        assert_eq!(
            scan("fn f() { let id = std::thread::current().id(); use_(id); }\n", false),
            vec!["thread-id"]
        );
        assert_eq!(
            scan("fn f() { let v = std::env::var(\"HOME\"); use_(v); }\n", false),
            vec!["env-read"]
        );
        // `Instant::elapsed`, `env::args` style calls that are not on the
        // ban list pass.
        assert!(scan("fn f() { let t = t0.elapsed(); use_(t); }\n", false).is_empty());
        assert!(scan("fn f() { let a = std::env::args(); use_(a); }\n", false).is_empty());
    }

    #[test]
    fn raw_thread_construction_is_flagged() {
        assert_eq!(
            scan("fn f() { std::thread::spawn(|| {}); }\n", false),
            vec!["raw-thread"]
        );
        assert_eq!(
            scan("fn f() { std::thread::scope(|s| {}); }\n", false),
            vec!["raw-thread"]
        );
        assert_eq!(
            scan("fn f() { let (tx, rx) = mpsc::channel::<u64>(); use_(tx, rx); }\n", false),
            vec!["raw-thread"]
        );
        assert_eq!(
            scan("fn f() { let p = std::sync::mpsc::sync_channel(4); use_(p); }\n", false),
            vec!["raw-thread"]
        );
        // Using channel halves or joining threads is fine — only
        // *construction* is fenced into the two runtime modules.
        assert!(scan("fn f(rx: &mpsc::Receiver<u64>) { rx.recv().ok(); }\n", false).is_empty());
        assert!(scan("fn f() { std::thread::sleep(d); }\n", false).is_empty());
    }

    #[test]
    fn float_accum_is_flagged_for_f32_and_f64_only() {
        assert_eq!(
            scan("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n", false),
            vec!["float-accum"]
        );
        assert_eq!(
            scan("fn f(v: &[f32]) -> f32 { v.iter().product::<f32>() }\n", false),
            vec!["float-accum"]
        );
        assert!(scan("fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }\n", false).is_empty());
    }

    #[test]
    fn narrowing_casts_only_in_hot_paths() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(scan(src, true), vec!["narrowing-cast"]);
        assert!(scan(src, false).is_empty());
        assert!(scan("fn f(x: u32) -> usize { x as usize }\n", true).is_empty());
        assert!(scan("fn f(x: u32) -> u64 { x as u64 }\n", true).is_empty());
    }

    #[test]
    fn overflow_arith_fires_without_spaces_and_respects_guards() {
        // The old regex rule needed rustfmt spacing; tokens do not.
        assert_eq!(
            scan("fn f() { let deadline = req.arrival+expire; use_(deadline); }\n", false),
            vec!["overflow-arith"]
        );
        assert_eq!(
            scan("fn f() { let b = req.sectors * bytes_each; use_(b); }\n", false),
            vec!["overflow-arith"]
        );
        assert!(scan("fn f() { let d = now.saturating_add(slice); }\n", false).is_empty());
        assert!(scan("fn f() { let d = arrival.checked_add(expire); }\n", false).is_empty());
        assert!(scan("fn f() { let d = a.lbn.abs_diff(b.lbn); }\n", false).is_empty());
        assert!(
            scan("fn f() { let ns = (now as u128) * (scale as u128); use_(ns); }\n", false)
                .is_empty()
        );
        // Arithmetic on overflow-neutral quantities passes.
        assert!(scan("fn f(i: usize) { let j = i + 1; use_(j); }\n", false).is_empty());
        // Unary and deref uses of + / * are not binary operators.
        assert!(scan("fn f(p: *const u64) { let now = unsafe { *p }; use_(now); }\n", false)
            .is_empty());
        assert!(scan("use sched::*; fn f(now: u64) { use_(now); }\n", false).is_empty());
        // Deref after a statement keyword (`if *times == 0`) is not a multiply.
        assert!(scan("fn f(times: &u64) { if *times == 0 { done(); } }\n", false).is_empty());
    }

    #[test]
    fn one_finding_per_rule_per_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); }\n";
        assert_eq!(scan(src, false), vec!["unwrap"]);
    }
}
