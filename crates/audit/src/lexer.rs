//! Hand-rolled Rust lexer for the source-lint pass.
//!
//! The lint engine needs to reason about *tokens*, not lines: a
//! `.unwrap()` inside a raw string or a nested block comment is not code,
//! `'a` is a lifetime while `'a'` is a char literal, and a `#[cfg(test)]`
//! attribute's extent can only be tracked reliably over a token stream.
//! This lexer covers the lexical surface the rules need — it is not a
//! full Rust lexer (no float-suffix pedantry, no shebang handling) but it
//! is exact on the hard cases:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** … */`, `/*! … */`);
//! - string literals: regular (`"…"` with escapes), raw (`r"…"`,
//!   `r##"…"##` at any hash depth), byte (`b"…"`), and raw byte
//!   (`br#"…"#`);
//! - char vs. lifetime disambiguation (`'a'` / `b'\n'` vs. `'a` /
//!   `'static` / `'_`);
//! - raw identifiers (`r#match`) vs. raw strings (`r#"…"#`).
//!
//! Every token carries its byte span and 1-based start line. The spans
//! tile the source: tokens are strictly ordered, never overlap, and the
//! gaps between them are pure whitespace — a property the test-suite
//! round-trip proptest enforces.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Character or byte literal (`'x'`, `'\n'`, `b'a'`).
    Char,
    /// Regular or byte string literal (`"…"`, `b"…"`).
    Str,
    /// Raw or raw-byte string literal (`r"…"`, `r##"…"##`, `br#"…"#`).
    RawStr,
    /// Numeric literal.
    Num,
    /// `// …` to end of line (plain or doc).
    LineComment,
    /// `/* … */`, nested (plain or doc). Unterminated comments run to EOF.
    BlockComment,
    /// Any other single character: operators, delimiters, `#`, `;`, ….
    Punct,
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Is this token a comment (line or block)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// For [`TokKind::Punct`], the punctuation character.
    pub fn punct(&self, src: &str) -> Option<char> {
        (self.kind == TokKind::Punct).then(|| src[self.start..].chars().next().unwrap_or('\0'))
    }

    /// For string-literal tokens, the literal's *inner* text (between the
    /// quotes, prefix and hashes stripped; escapes are not decoded —
    /// schema kind strings never use them).
    pub fn str_inner<'s>(&self, src: &'s str) -> Option<&'s str> {
        let t = self.text(src);
        match self.kind {
            TokKind::Str => {
                let t = t.strip_prefix('b').unwrap_or(t);
                t.strip_prefix('"').and_then(|t| t.strip_suffix('"'))
            }
            TokKind::RawStr => {
                let t = t.strip_prefix('b').unwrap_or(t);
                let t = t.strip_prefix('r')?;
                let hashes = t.len() - t.trim_start_matches('#').len();
                let t = &t[hashes..];
                let t = t.strip_prefix('"')?;
                let t = t.strip_suffix(&"#".repeat(hashes))?;
                t.strip_suffix('"')
            }
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    i: usize,
    line: u32,
    toks: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.i + off).copied()
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.i..].chars().next()
    }

    /// Advance one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    /// Advance one full char.
    fn bump_char(&mut self) {
        if let Some(c) = self.peek_char() {
            if c == '\n' {
                self.line += 1;
            }
            self.i += c.len_utf8();
        }
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.toks.push(Token {
            kind,
            start,
            end: self.i,
            line,
        });
    }

    /// `// …` to (but excluding) the newline.
    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump_char();
        }
        self.push(TokKind::LineComment, start, line);
    }

    /// `/* … */` with nesting; an unterminated comment runs to EOF.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump_char(),
                (None, _) => break,
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    /// The body of a `"…"` literal, cursor on the opening quote.
    /// Unterminated strings run to EOF.
    fn quoted_string(&mut self, start: usize, line: u32) {
        self.bump(); // opening '"'
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump_char(); // the escaped char (may be a quote)
                }
                Some(_) => self.bump_char(),
                None => break,
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// A raw string, cursor on the `r`. Consumes `r#*"…"#*` (closing
    /// needs the same number of hashes). Unterminated raw strings run to
    /// EOF.
    fn raw_string(&mut self, start: usize, line: u32) {
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump(); // opening '"'
        'scan: loop {
            match self.peek() {
                Some(b'"') => {
                    // A quote closes only if followed by `hashes` hashes.
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek_at(1 + k) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break 'scan;
                    }
                }
                Some(_) => self.bump_char(),
                None => break 'scan,
            }
        }
        self.push(TokKind::RawStr, start, line);
    }

    /// `'…` — char literal or lifetime, cursor on the quote.
    fn quote(&mut self, start: usize, line: u32) {
        self.bump(); // '\''
        match self.peek_char() {
            Some('\\') => {
                // Escaped char literal: scan to the closing quote.
                self.bump(); // backslash
                self.bump_char(); // escaped char
                while let Some(b) = self.peek() {
                    if b == b'\'' {
                        self.bump();
                        break;
                    }
                    // Inside \u{…}; also covers malformed tails.
                    self.bump_char();
                }
                self.push(TokKind::Char, start, line);
            }
            Some(c) if is_ident_start(c) => {
                // One ident-class char then a quote → char literal
                // (`'a'`); otherwise a lifetime (`'a`, `'static`, `'_`).
                let c_len = c.len_utf8();
                if self.bytes.get(self.i + c_len) == Some(&b'\'') {
                    self.bump_char();
                    self.bump();
                    self.push(TokKind::Char, start, line);
                } else {
                    self.bump_char();
                    while self.peek_char().is_some_and(is_ident_continue) {
                        self.bump_char();
                    }
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            Some(c) if c != '\'' => {
                // Non-ident char literal: `'+'`, `'"'`, `'é'`.
                self.bump_char();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, start, line);
            }
            _ => {
                // `''` or a lone quote at EOF — emit as punct, make
                // progress either way.
                self.push(TokKind::Punct, start, line);
            }
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.peek_char().is_some_and(is_ident_continue) {
            self.bump_char();
        }
        self.push(TokKind::Ident, start, line);
    }

    /// Numeric literal: digits/letters/underscores, `.` only when
    /// followed by a digit (so `0..n` and `1.max(2)` stop at the dot),
    /// exponent signs (`1e-3`) when sandwiched between `e`/`E` and a
    /// digit.
    fn number(&mut self, start: usize, line: u32) {
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.bump(),
                b'.' if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => self.bump(),
                b'+' | b'-'
                    if matches!(self.bytes.get(self.i - 1), Some(b'e') | Some(b'E'))
                        && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    self.bump()
                }
                _ => break,
            }
        }
        self.push(TokKind::Num, start, line);
    }
}

/// Lex `src` into a token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    };
    while let Some(b) = lx.peek() {
        let start = lx.i;
        let line = lx.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => lx.bump(),
            b'/' if lx.peek_at(1) == Some(b'/') => lx.line_comment(start, line),
            b'/' if lx.peek_at(1) == Some(b'*') => lx.block_comment(start, line),
            b'"' => lx.quoted_string(start, line),
            b'\'' => lx.quote(start, line),
            b'r' => {
                // r"…" / r#…"…"#… raw string, r#ident raw identifier, or a
                // plain ident starting with r.
                let mut k = 1;
                while lx.peek_at(k) == Some(b'#') {
                    k += 1;
                }
                if lx.peek_at(k) == Some(b'"') {
                    lx.raw_string(start, line);
                } else if k > 1 {
                    // r#ident — skip prefix, lex the rest as an ident.
                    lx.bump();
                    lx.bump();
                    lx.ident(start, line);
                } else {
                    lx.ident(start, line);
                }
            }
            b'b' => {
                // b"…", b'…', br"…", br#"…"# — or a plain ident.
                match (lx.peek_at(1), lx.peek_at(2)) {
                    (Some(b'"'), _) => {
                        lx.bump(); // 'b'
                        lx.quoted_string(start, line);
                    }
                    (Some(b'\''), _) => {
                        lx.bump(); // 'b'
                        lx.quote(start, line);
                        // Force byte-char class (quote() says Char already
                        // unless it degraded to a lifetime-looking form).
                        if let Some(last) = lx.toks.last_mut() {
                            if last.kind == TokKind::Lifetime {
                                last.kind = TokKind::Char;
                            }
                        }
                    }
                    (Some(b'r'), _) => {
                        let mut k = 2;
                        while lx.peek_at(k) == Some(b'#') {
                            k += 1;
                        }
                        if lx.peek_at(k) == Some(b'"') {
                            lx.bump(); // 'b'
                            lx.raw_string(start, line);
                        } else {
                            lx.ident(start, line);
                        }
                    }
                    _ => lx.ident(start, line),
                }
            }
            b'0'..=b'9' => lx.number(start, line),
            _ => {
                let c = lx.peek_char().unwrap_or('\0');
                if is_ident_start(c) {
                    lx.ident(start, line);
                } else {
                    lx.bump_char();
                    lx.push(TokKind::Punct, start, line);
                }
            }
        }
    }
    lx.toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let ks = kinds("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert!(ks.iter().any(|k| k == &(TokKind::Ident, "u32".into())));
        let ks = kinds("let r = 0..n; let f = 1.5e-3; let m = 1.max(2);");
        assert!(ks.contains(&(TokKind::Num, "0".into())));
        assert!(ks.contains(&(TokKind::Num, "1.5e-3".into())));
        assert!(ks.contains(&(TokKind::Num, "1".into())));
        assert!(ks.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* outer /* inner */ still-outer */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokKind::BlockComment);
        assert_eq!(ks[1].1, "/* outer /* inner */ still-outer */");
    }

    #[test]
    fn raw_strings_at_any_hash_depth() {
        let src = r####"let s = r#"contains "quotes" and .unwrap()"#;"####;
        let ks = kinds(src);
        let raw = ks.iter().find(|k| k.0 == TokKind::RawStr).unwrap();
        assert!(raw.1.contains(".unwrap()"));
        // Hash-mismatched quote does not close early.
        let src = "r##\"a\"# b\"##";
        let ks = kinds(src);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].0, TokKind::RawStr);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"let a = b"bytes"; let c = b'\n'; let r = br#"raw"#;"##);
        assert!(ks.iter().any(|k| k.0 == TokKind::Str && k.1 == "b\"bytes\""));
        assert!(ks.iter().any(|k| k.0 == TokKind::Char && k.1 == "b'\\n'"));
        assert!(ks.iter().any(|k| k.0 == TokKind::RawStr && k.1 == "br#\"raw\"#"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str, c: char) { if c == 'a' {} let s: &'static str = \"\"; let u = '_'; }");
        let lifetimes: Vec<_> = ks.iter().filter(|k| k.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = ks.iter().filter(|k| k.0 == TokKind::Char).collect();
        assert_eq!(
            lifetimes.iter().map(|k| k.1.as_str()).collect::<Vec<_>>(),
            vec!["'a", "'a", "'static"]
        );
        assert_eq!(
            chars.iter().map(|k| k.1.as_str()).collect::<Vec<_>>(),
            vec!["'a'", "'_'"]
        );
    }

    #[test]
    fn escaped_and_exotic_char_literals() {
        let ks = kinds(r#"let q = '"'; let e = '\''; let u = '\u{1F600}'; let p = '+';"#);
        let chars: Vec<_> = ks.iter().filter(|k| k.0 == TokKind::Char).collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0].1, "'\"'");
        assert_eq!(chars[1].1, r"'\''");
        assert_eq!(chars[2].1, r"'\u{1F600}'");
    }

    #[test]
    fn raw_idents_are_idents_not_strings() {
        let ks = kinds("let r#match = 1; r#fn();");
        assert!(ks.iter().any(|k| k.0 == TokKind::Ident && k.1 == "r#match"));
        assert!(ks.iter().any(|k| k.0 == TokKind::Ident && k.1 == "r#fn"));
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let src = r#""a\"b" tail"#;
        let ks = kinds(src);
        assert_eq!(ks[0], (TokKind::Str, r#""a\"b""#.into()));
        assert_eq!(ks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // string starts line 2
        assert_eq!(toks[2].line, 4); // comment starts line 4
        assert_eq!(toks[3].line, 6); // b after multi-line comment
    }

    #[test]
    fn spans_tile_the_source() {
        let src = "fn f<'a>() { let s = r#\"x\"#; /* c */ s.len() } // t\n";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert!(t.start >= pos, "overlap at {t:?}");
            assert!(
                src[pos..t.start].chars().all(char::is_whitespace),
                "non-whitespace gap before {t:?}"
            );
            assert!(t.end > t.start, "empty token {t:?}");
            pos = t.end;
        }
        assert!(src[pos..].chars().all(char::is_whitespace));
    }

    #[test]
    fn str_inner_strips_quotes_prefixes_and_hashes() {
        let src = r####"("kind", b"bk", r"rk", r##"hk"##, br#"bh"#)"####;
        let inners: Vec<_> = lex(src)
            .into_iter()
            .filter_map(|t| t.str_inner(src).map(str::to_string))
            .collect();
        assert_eq!(inners, vec!["kind", "bk", "rk", "hk", "bh"]);
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panicking() {
        for src in ["\"open", "r#\"open", "/* open /* deeper", "'", "b\"x"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().unwrap().end, src.len(), "{src:?}");
        }
    }
}
