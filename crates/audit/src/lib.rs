//! `dualpar-audit`: offline invariant checking for DualPar simulation
//! traces, plus a source-lint pass for the workspace (see [`lint`]).
//!
//! The simulator (PR 1's telemetry subsystem) emits a structured JSONL
//! event trace. This crate replays such a trace — from a file or straight
//! from an in-process [`TraceBuffer`] — and checks the invariants the
//! paper's design implies:
//!
//! - **monotone time**: event timestamps never go backwards;
//! - **EMC legality**: a program enters the data-driven mode only when the
//!   same-tick observation shows `io_ratio` above the threshold and
//!   `aveSeekDist/aveReqDist` above `T_improvement`, and never after the
//!   mis-prefetch veto fired (the veto is sticky);
//! - **disk exclusivity**: each data server services at most one request at
//!   a time (`disk/start` / `disk/done` pairing by request id);
//! - **PEC pairing**: process suspends and resumes alternate, and no
//!   process is left suspended at the end of the trace;
//! - **CRM ordering**: per-program phase sequence numbers strictly
//!   increase;
//! - **cache conservation**: the end-of-run prefetch ledger balances
//!   (`inserted == consumed + overwritten + evicted + misprefetched +
//!   unused_now`);
//! - **span pairing**: every `span/open` has exactly one `span/close`
//!   (no double close, no close without open, nothing open at EOF) and
//!   durations are non-negative;
//! - **span nesting**: a child span opens while its parent is open, no
//!   earlier than the parent's own open, and closes no later than the
//!   parent closes;
//! - **span stage order**: the request-lifecycle stages recorded for a
//!   sub-request key appear in pipeline order (`req.life`, `req.issue`,
//!   `server.queue`, `disk.service`, `req.ack`); stages may be skipped
//!   (the write-back ack path has no queue/service leg) but never repeat
//!   or run backwards.
//!
//! Violations are reported with the 0-based index of the offending event
//! and rendered as a machine-readable JSON summary
//! ([`AuditReport::to_json`]).
//!
//! A trace captured by a saturated ring buffer (dropped events) loses its
//! prefix, which can produce spurious pairing violations; audit complete
//! traces (`trace_dropped == 0` in the snapshot).

#![deny(missing_docs)]

pub mod baseline;
pub mod itemtree;
pub mod lexer;
pub mod lint;
pub mod rules;

/// Every `(component, kind)` pair the auditor's dispatch understands, in
/// sorted order. Mirrors the `match` in [`Auditor::push`]; a parity test
/// (and the `trace-schema` lint cross-check) keeps it in lock-step with
/// `dualpar_telemetry::schema::TRACE_SCHEMA`.
pub fn audited_kinds() -> Vec<(&'static str, &'static str)> {
    vec![
        ("cache", "conservation"),
        ("crm", "phase"),
        ("disk", "done"),
        ("disk", "start"),
        ("emc", "config"),
        ("emc", "mode"),
        ("emc", "tick"),
        ("pec", "resume"),
        ("pec", "suspend"),
        ("span", "close"),
        ("span", "open"),
    ]
}

use dualpar_telemetry::{FieldValue, TraceBuffer};
use dualpar_sim::{FxHashMap as HashMap, FxHashSet as HashSet};
use std::fmt;

/// One dynamically-typed field of a parsed trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// JSON `null` — the telemetry writer emits it for non-finite floats,
    /// so a `null` improvement ratio means "infinite".
    Null,
}

impl Field {
    /// Numeric view (integers widen; `Null` and strings are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Field::U64(v) => Some(*v as f64),
            Field::I64(v) => Some(*v as f64),
            Field::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned view (only for non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Field::U64(v) => Some(*v),
            Field::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parsed trace event: timestamp, component, kind, and payload fields in
/// file order.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// Simulated time in seconds.
    pub t: f64,
    /// Emitting component (`"emc"`, `"disk"`, ...).
    pub component: String,
    /// Event kind within the component.
    pub kind: String,
    /// Remaining payload fields.
    pub fields: Vec<(String, Field)>,
}

impl AuditEvent {
    /// Look up a payload field by key.
    pub fn field(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric payload field.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Field::as_f64)
    }

    /// Unsigned payload field.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Field::as_u64)
    }

    /// String payload field.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Field::as_str)
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Minimal parser for the flat JSON objects the telemetry exporter writes
/// (one per line; values are numbers, strings, booleans, or `null`). The
/// vendored serde stubs cannot deserialize into dynamic values, so the
/// auditor carries its own.
struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser { s: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.i
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                // The input is valid UTF-8 (it came from a &str); copy the
                // remaining bytes of a multi-byte scalar through verbatim.
                _ => {
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.s.len() && self.s[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Field, String> {
        self.ws();
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Field::Str(self.string()?)),
            b't' => self.literal("true", Field::Bool(true)),
            b'f' => self.literal("false", Field::Bool(false)),
            b'n' => self.literal("null", Field::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, f: Field) -> Result<Field, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(f)
        } else {
            Err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Field, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        if text.is_empty() {
            return Err(format!("expected a value at byte {start}"));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Field::F64)
                .map_err(|e| format!("bad float '{text}': {e}"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|_| ())
                .map_err(|e| format!("bad integer '{text}': {e}"))?;
            text.parse::<i64>()
                .map(Field::I64)
                .map_err(|e| format!("bad integer '{text}': {e}"))
        } else {
            text.parse::<u64>()
                .map(Field::U64)
                .map_err(|e| format!("bad integer '{text}': {e}"))
        }
    }
}

/// Parse one JSONL trace line.
fn parse_line(line: &str) -> Result<AuditEvent, String> {
    let mut p = JsonParser::new(line);
    p.eat(b'{')?;
    let mut t: Option<f64> = None;
    let mut component: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut fields = Vec::new();
    loop {
        p.ws();
        if p.peek() == Some(b'}') {
            break;
        }
        let key = p.string()?;
        p.eat(b':')?;
        let value = p.value()?;
        match key.as_str() {
            "t" => {
                t = Some(
                    value
                        .as_f64()
                        .ok_or_else(|| format!("non-numeric 't': {value:?}"))?,
                );
            }
            "component" => match value {
                Field::Str(s) => component = Some(s),
                other => return Err(format!("non-string 'component': {other:?}")),
            },
            "kind" => match value {
                Field::Str(s) => kind = Some(s),
                other => return Err(format!("non-string 'kind': {other:?}")),
            },
            _ => fields.push((key, value)),
        }
        p.ws();
        match p.peek() {
            Some(b',') => p.i += 1,
            Some(b'}') => break,
            _ => return Err("expected ',' or '}'".to_string()),
        }
    }
    Ok(AuditEvent {
        t: t.ok_or("missing 't'")?,
        component: component.ok_or("missing 'component'")?,
        kind: kind.ok_or("missing 'kind'")?,
        fields,
    })
}

/// Parse a whole JSONL trace (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<AuditEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|msg| ParseError { line: i + 1, msg })?);
    }
    Ok(out)
}

/// Convert an in-process [`TraceBuffer`] into auditable events, bypassing
/// the JSONL round-trip. Non-finite floats become [`Field::Null`] exactly
/// as the exporter would write them, so both paths audit identically.
pub fn events_from_buffer(buf: &TraceBuffer) -> Vec<AuditEvent> {
    buf.iter()
        .map(|ev| AuditEvent {
            t: ev.t,
            component: ev.component.to_string(),
            kind: ev.kind.to_string(),
            fields: ev
                .fields
                .iter()
                .map(|(k, v)| {
                    let f = match v {
                        FieldValue::U64(v) => Field::U64(*v),
                        FieldValue::I64(v) => Field::I64(*v),
                        FieldValue::F64(v) if v.is_finite() => Field::F64(*v),
                        FieldValue::F64(_) => Field::Null,
                        FieldValue::Str(s) => Field::Str(s.clone()),
                    };
                    (k.to_string(), f)
                })
                .collect(),
        })
        .collect()
}

/// Thresholds the EMC-legality check validates against. Defaults match
/// `DualParConfig`; an `emc/config` event in the trace overrides them, so
/// tuned runs audit against their own thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Programs may enter the data-driven mode only above this I/O ratio.
    pub io_ratio_threshold: f64,
    /// ... and only when `aveSeekDist/aveReqDist` exceeds this.
    pub t_improvement: f64,
    /// Mis-prefetch ratio above which the veto fires (reported for
    /// context; the veto itself is audited via the tick's `vetoed` flag).
    pub misprefetch_threshold: f64,
    /// Tolerate a truncated trace prefix: a saturated ring buffer drops the
    /// oldest events, so the first `disk/done` per server and the first
    /// `pec/resume` per process may have lost their opening half. With this
    /// set, such "missing start" pairing errors — only while the server /
    /// process has not yet shown a `disk/start` / `pec/suspend` of its own —
    /// are counted as warnings ([`AuditReport::warnings`]) instead of
    /// violations. Mismatched pairings (the opening half *was* seen) are
    /// always violations.
    pub tolerate_truncation: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            io_ratio_threshold: 0.8,
            t_improvement: 3.0,
            misprefetch_threshold: 0.2,
            tolerate_truncation: false,
        }
    }
}

/// One invariant violation, anchored to the offending event.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// 0-based index of the event in the audited stream.
    pub index: usize,
    /// Simulated time of that event.
    pub t: f64,
    /// Which check fired.
    pub check: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// The auditor's verdict over one trace.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events examined.
    pub events: usize,
    /// Pairing errors downgraded under
    /// [`AuditConfig::tolerate_truncation`] (dropped-prefix artifacts).
    /// Zero unless that option is set.
    pub warnings: usize,
    /// Violations found, in stream order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Did the trace pass every check? (Truncation warnings don't fail it.)
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable summary.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"events\":");
        out.push_str(&self.events.to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.warnings.to_string());
        out.push_str(",\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"index\":");
            out.push_str(&v.index.to_string());
            out.push_str(",\"t\":");
            if v.t.is_finite() {
                out.push_str(&format!("{:?}", v.t));
            } else {
                out.push_str("null");
            }
            out.push_str(",\"check\":");
            push_json_str(&mut out, v.check);
            out.push_str(",\"message\":");
            push_json_str(&mut out, &v.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Rank of a request-lifecycle stage span in pipeline order, `None` for
/// non-stage spans (process-state spans carry no ordering constraint).
fn stage_rank(name: &str) -> Option<u32> {
    match name {
        "req.life" => Some(0),
        "req.issue" => Some(1),
        "server.queue" => Some(2),
        "disk.service" => Some(3),
        "req.ack" => Some(4),
        _ => None,
    }
}

/// A span seen open but not yet closed.
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    key: u64,
    /// Logical open time (the event's `at` payload, not its stamp).
    at: f64,
    parent: Option<u64>,
    /// Index of the `span/open` event, for EOF diagnostics.
    opened_at: usize,
}

/// The last EMC tick observation seen for a program.
#[derive(Debug, Clone)]
struct TickObs {
    t: f64,
    io_ratio: f64,
    /// `None` — no improvement sample this slot; `Some(f64::INFINITY)` —
    /// the writer serialized a non-finite ratio as `null`.
    improvement: Option<f64>,
    vetoed: bool,
    mode: String,
}

/// Streaming auditor state. Feed events in order with [`Auditor::push`],
/// then [`Auditor::finish`].
pub struct Auditor {
    cfg: AuditConfig,
    index: usize,
    last_t: f64,
    violations: Vec<Violation>,
    /// Per data server: id of the in-flight request and its start index.
    in_flight: HashMap<u64, (u64, usize)>,
    /// Per PEC-suspended process: index of the suspend event.
    suspended: HashMap<u64, usize>,
    /// Per program: current execution mode label.
    modes: HashMap<u64, String>,
    /// Programs whose mis-prefetch veto has fired (sticky).
    vetoed: HashSet<u64>,
    /// Per program: most recent tick observation.
    last_tick: HashMap<u64, TickObs>,
    /// Per program: last CRM phase sequence number.
    crm_seq: HashMap<u64, u64>,
    /// Pairing errors downgraded to warnings (truncated-prefix window).
    warnings: usize,
    /// Servers that have shown a `disk/start` — a done-without-start on one
    /// of these is a real pairing error even under truncation tolerance.
    seen_disk_start: HashSet<u64>,
    /// Processes that have shown a `pec/suspend` — same reasoning.
    seen_pec_suspend: HashSet<u64>,
    /// Spans currently open, by span id.
    open_spans: HashMap<u64, OpenSpan>,
    /// Spans already closed: id → close time (`at` payload). Used to catch
    /// double closes and children outliving their parent.
    closed_spans: HashMap<u64, f64>,
    /// Per sub-request key: rank of the last lifecycle stage opened.
    span_stage: HashMap<u64, u32>,
}

impl Auditor {
    /// A fresh auditor with the given thresholds.
    pub fn new(cfg: AuditConfig) -> Self {
        Auditor {
            cfg,
            index: 0,
            last_t: f64::NEG_INFINITY,
            violations: Vec::new(),
            in_flight: HashMap::default(),
            suspended: HashMap::default(),
            modes: HashMap::default(),
            vetoed: HashSet::default(),
            last_tick: HashMap::default(),
            crm_seq: HashMap::default(),
            warnings: 0,
            seen_disk_start: HashSet::default(),
            seen_pec_suspend: HashSet::default(),
            open_spans: HashMap::default(),
            closed_spans: HashMap::default(),
            span_stage: HashMap::default(),
        }
    }

    fn flag(&mut self, t: f64, check: &'static str, message: String) {
        self.violations.push(Violation {
            index: self.index,
            t,
            check,
            message,
        });
    }

    /// Examine the next event of the stream.
    pub fn push(&mut self, ev: &AuditEvent) {
        if !ev.t.is_finite() {
            self.flag(ev.t, "monotone-time", "non-finite timestamp".to_string());
        } else if ev.t < self.last_t {
            self.flag(
                ev.t,
                "monotone-time",
                format!("timestamp {} precedes previous event at {}", ev.t, self.last_t),
            );
        } else {
            self.last_t = ev.t;
        }
        match (ev.component.as_str(), ev.kind.as_str()) {
            ("emc", "config") => self.on_emc_config(ev),
            ("emc", "tick") => self.on_emc_tick(ev),
            ("emc", "mode") => self.on_emc_mode(ev),
            ("crm", "phase") => self.on_crm_phase(ev),
            ("disk", "start") => self.on_disk_start(ev),
            ("disk", "done") => self.on_disk_done(ev),
            ("pec", "suspend") => self.on_pec_suspend(ev),
            ("pec", "resume") => self.on_pec_resume(ev),
            ("cache", "conservation") => self.on_cache_conservation(ev),
            ("span", "open") => self.on_span_open(ev),
            ("span", "close") => self.on_span_close(ev),
            _ => {}
        }
        self.index += 1;
    }

    fn on_emc_config(&mut self, ev: &AuditEvent) {
        if let Some(v) = ev.num("io_ratio_threshold") {
            self.cfg.io_ratio_threshold = v;
        }
        if let Some(v) = ev.num("t_improvement") {
            self.cfg.t_improvement = v;
        }
        if let Some(v) = ev.num("misprefetch_threshold") {
            self.cfg.misprefetch_threshold = v;
        }
    }

    fn on_emc_tick(&mut self, ev: &AuditEvent) {
        let (Some(program), Some(io_ratio), Some(vetoed), Some(mode)) = (
            ev.u64("program"),
            ev.num("io_ratio"),
            ev.u64("vetoed"),
            ev.str("mode"),
        ) else {
            self.flag(ev.t, "malformed", "emc/tick missing fields".to_string());
            return;
        };
        let improvement = match ev.field("improvement") {
            None => None,
            Some(Field::Null) => Some(f64::INFINITY),
            Some(f) => f.as_f64(),
        };
        let vetoed = vetoed != 0;
        if vetoed {
            self.vetoed.insert(program);
        } else if self.vetoed.contains(&program) {
            self.flag(
                ev.t,
                "emc-veto-sticky",
                format!("program {program} tick reports vetoed=0 after the veto fired"),
            );
        }
        self.last_tick.insert(
            program,
            TickObs {
                t: ev.t,
                io_ratio,
                improvement,
                vetoed,
                mode: mode.to_string(),
            },
        );
    }

    fn on_emc_mode(&mut self, ev: &AuditEvent) {
        let (Some(program), Some(mode), Some(reason)) =
            (ev.u64("program"), ev.str("mode"), ev.str("reason"))
        else {
            self.flag(ev.t, "malformed", "emc/mode missing fields".to_string());
            return;
        };
        let prev = self
            .modes
            .get(&program)
            .map(String::as_str)
            .unwrap_or("computation_driven");
        if prev == mode {
            self.flag(
                ev.t,
                "emc-duplicate-mode",
                format!("program {program} re-enters '{mode}' (reason {reason})"),
            );
        }
        if reason == "emc" {
            match self.last_tick.get(&program).cloned() {
                None => self.flag(
                    ev.t,
                    "emc-legality",
                    format!("program {program} mode change without any EMC tick"),
                ),
                Some(obs) => {
                    if obs.t != ev.t {
                        self.flag(
                            ev.t,
                            "emc-legality",
                            format!(
                                "program {program} mode change at t={} but last tick was t={}",
                                ev.t, obs.t
                            ),
                        );
                    } else if mode == "data_driven" {
                        if obs.vetoed || self.vetoed.contains(&program) {
                            self.flag(
                                ev.t,
                                "emc-legality",
                                format!(
                                    "program {program} enters data_driven despite mis-prefetch veto"
                                ),
                            );
                        }
                        if obs.io_ratio <= self.cfg.io_ratio_threshold {
                            self.flag(
                                ev.t,
                                "emc-legality",
                                format!(
                                    "program {program} enters data_driven with io_ratio {} <= threshold {}",
                                    obs.io_ratio, self.cfg.io_ratio_threshold
                                ),
                            );
                        }
                        match obs.improvement {
                            Some(imp) if imp > self.cfg.t_improvement => {}
                            Some(imp) => self.flag(
                                ev.t,
                                "emc-legality",
                                format!(
                                    "program {program} enters data_driven with improvement {} <= T_improvement {}",
                                    imp, self.cfg.t_improvement
                                ),
                            ),
                            None => self.flag(
                                ev.t,
                                "emc-legality",
                                format!(
                                    "program {program} enters data_driven without an improvement sample"
                                ),
                            ),
                        }
                    }
                    if obs.t == ev.t && obs.mode != mode {
                        self.flag(
                            ev.t,
                            "emc-legality",
                            format!(
                                "program {program} mode event '{mode}' disagrees with same-tick observation '{}'",
                                obs.mode
                            ),
                        );
                    }
                }
            }
        }
        self.modes.insert(program, mode.to_string());
    }

    fn on_crm_phase(&mut self, ev: &AuditEvent) {
        let (Some(program), Some(seq)) = (ev.u64("program"), ev.u64("seq")) else {
            self.flag(ev.t, "malformed", "crm/phase missing fields".to_string());
            return;
        };
        if let Some(&prev) = self.crm_seq.get(&program) {
            if seq <= prev {
                self.flag(
                    ev.t,
                    "crm-sequence",
                    format!("program {program} phase seq {seq} after {prev} (must increase)"),
                );
            }
        }
        self.crm_seq.insert(program, seq);
    }

    fn on_disk_start(&mut self, ev: &AuditEvent) {
        let (Some(server), Some(id)) = (ev.u64("server"), ev.u64("id")) else {
            self.flag(ev.t, "malformed", "disk/start missing fields".to_string());
            return;
        };
        if ev.u64("sectors") == Some(0) {
            self.flag(
                ev.t,
                "disk-exclusivity",
                format!("server {server} starts zero-sector request {id}"),
            );
        }
        if let Some(&(other, at)) = self.in_flight.get(&server) {
            self.flag(
                ev.t,
                "disk-exclusivity",
                format!(
                    "server {server} starts request {id} while request {other} (event {at}) is in flight"
                ),
            );
        }
        self.in_flight.insert(server, (id, self.index));
        self.seen_disk_start.insert(server);
    }

    fn on_disk_done(&mut self, ev: &AuditEvent) {
        let (Some(server), Some(id)) = (ev.u64("server"), ev.u64("id")) else {
            self.flag(ev.t, "malformed", "disk/done missing fields".to_string());
            return;
        };
        match self.in_flight.remove(&server) {
            // Before a server's first observed start, a lone done is the
            // signature of a dropped trace prefix (its start fell off the
            // ring); count it as a warning when tolerance is on.
            None if self.cfg.tolerate_truncation && !self.seen_disk_start.contains(&server) => {
                self.warnings += 1;
            }
            None => self.flag(
                ev.t,
                "disk-pairing",
                format!("server {server} completes request {id} with nothing in flight"),
            ),
            Some((other, _)) if other != id => self.flag(
                ev.t,
                "disk-pairing",
                format!("server {server} completes request {id} but {other} was in flight"),
            ),
            Some(_) => {}
        }
    }

    fn on_pec_suspend(&mut self, ev: &AuditEvent) {
        let Some(proc) = ev.u64("proc") else {
            self.flag(ev.t, "malformed", "pec/suspend missing 'proc'".to_string());
            return;
        };
        if let Some(&at) = self.suspended.get(&proc) {
            self.flag(
                ev.t,
                "pec-pairing",
                format!("proc {proc} suspended twice (previous suspend at event {at})"),
            );
        }
        self.suspended.insert(proc, self.index);
        self.seen_pec_suspend.insert(proc);
    }

    fn on_pec_resume(&mut self, ev: &AuditEvent) {
        let Some(proc) = ev.u64("proc") else {
            self.flag(ev.t, "malformed", "pec/resume missing 'proc'".to_string());
            return;
        };
        if self.suspended.remove(&proc).is_none() {
            // Mirror of the disk case: before this process's first observed
            // suspend, the matching suspend may be in the dropped prefix.
            if self.cfg.tolerate_truncation && !self.seen_pec_suspend.contains(&proc) {
                self.warnings += 1;
            } else {
                self.flag(
                    ev.t,
                    "pec-pairing",
                    format!("proc {proc} resumed without a matching suspend"),
                );
            }
        }
    }

    fn on_span_open(&mut self, ev: &AuditEvent) {
        let (Some(id), Some(name), Some(key), Some(at)) = (
            ev.u64("id"),
            ev.str("name"),
            ev.u64("key"),
            ev.num("at"),
        ) else {
            self.flag(ev.t, "malformed", "span/open missing fields".to_string());
            return;
        };
        let name = name.to_string();
        if self.open_spans.contains_key(&id) || self.closed_spans.contains_key(&id) {
            self.flag(
                ev.t,
                "span-pairing",
                format!("span id {id} ('{name}') opened twice"),
            );
            return;
        }
        let parent = ev.u64("parent");
        if let Some(p) = parent {
            match self.open_spans.get(&p) {
                Some(ps) => {
                    if at < ps.at {
                        self.flag(
                            ev.t,
                            "span-nesting",
                            format!(
                                "span {id} ('{name}') opens at {at} before its parent {p} ('{}') opened at {}",
                                ps.name, ps.at
                            ),
                        );
                    }
                }
                None if self.closed_spans.contains_key(&p) => self.flag(
                    ev.t,
                    "span-nesting",
                    format!("span {id} ('{name}') opens under already-closed parent {p}"),
                ),
                // The parent's open may sit in a dropped ring-buffer prefix.
                None if self.cfg.tolerate_truncation => self.warnings += 1,
                None => self.flag(
                    ev.t,
                    "span-nesting",
                    format!("span {id} ('{name}') opens under unknown parent {p}"),
                ),
            }
        }
        if let Some(rank) = stage_rank(&name) {
            if let Some(&prev) = self.span_stage.get(&key) {
                if rank <= prev {
                    self.flag(
                        ev.t,
                        "span-stage-order",
                        format!(
                            "request key {key} stage '{name}' (rank {rank}) after a rank-{prev} stage; stages must advance"
                        ),
                    );
                }
            }
            self.span_stage.insert(key, rank);
        }
        self.open_spans.insert(
            id,
            OpenSpan {
                name,
                key,
                at,
                parent,
                opened_at: self.index,
            },
        );
    }

    fn on_span_close(&mut self, ev: &AuditEvent) {
        let (Some(id), Some(at)) = (ev.u64("id"), ev.num("at")) else {
            self.flag(ev.t, "malformed", "span/close missing fields".to_string());
            return;
        };
        let Some(span) = self.open_spans.remove(&id) else {
            if self.closed_spans.contains_key(&id) {
                self.flag(
                    ev.t,
                    "span-pairing",
                    format!("span id {id} closed twice"),
                );
            } else if self.cfg.tolerate_truncation {
                // Its open may be in the dropped prefix.
                self.warnings += 1;
            } else {
                self.flag(
                    ev.t,
                    "span-pairing",
                    format!("span id {id} closed without a matching open"),
                );
            }
            return;
        };
        if at < span.at {
            self.flag(
                ev.t,
                "span-pairing",
                format!(
                    "span {id} ('{}', key {}) closes at {at} before it opened at {}",
                    span.name, span.key, span.at
                ),
            );
        }
        if let Some(p) = span.parent {
            if let Some(&pc) = self.closed_spans.get(&p) {
                if at > pc {
                    self.flag(
                        ev.t,
                        "span-nesting",
                        format!(
                            "span {id} ('{}') closes at {at} after its parent {p} closed at {pc}",
                            span.name
                        ),
                    );
                }
            }
        }
        self.closed_spans.insert(id, at);
    }

    fn on_cache_conservation(&mut self, ev: &AuditEvent) {
        let keys = [
            "inserted",
            "consumed",
            "overwritten",
            "evicted",
            "misprefetched",
            "unused_now",
        ];
        let mut vals = [0u64; 6];
        for (slot, key) in vals.iter_mut().zip(keys) {
            match ev.u64(key) {
                Some(v) => *slot = v,
                None => {
                    self.flag(
                        ev.t,
                        "malformed",
                        format!("cache/conservation missing '{key}'"),
                    );
                    return;
                }
            }
        }
        let [inserted, consumed, overwritten, evicted, misprefetched, unused_now] = vals;
        let accounted = consumed + overwritten + evicted + misprefetched + unused_now;
        if inserted != accounted {
            self.flag(
                ev.t,
                "cache-conservation",
                format!(
                    "prefetched bytes not conserved: inserted {inserted} != consumed {consumed} + overwritten {overwritten} + evicted {evicted} + misprefetched {misprefetched} + unused {unused_now} (= {accounted})"
                ),
            );
        }
    }

    /// End of stream: check terminal conditions and produce the report.
    ///
    /// A request still in flight on a data server is *legal* — the engine
    /// stops as soon as the last program finishes, abandoning queued disk
    /// events — but a process still suspended is not: PEC always resumes
    /// its processes before their program can finish.
    pub fn finish(mut self) -> AuditReport {
        let mut leftover: Vec<(u64, usize)> =
            self.suspended.iter().map(|(&p, &i)| (p, i)).collect();
        leftover.sort_unstable();
        for (proc, at) in leftover {
            self.violations.push(Violation {
                index: at,
                t: self.last_t,
                check: "pec-pairing",
                message: format!("proc {proc} still suspended at end of trace (suspend at event {at})"),
            });
        }
        let mut open: Vec<(u64, OpenSpan)> = self.open_spans.drain().collect();
        open.sort_unstable_by_key(|(id, _)| *id);
        for (id, span) in open {
            self.violations.push(Violation {
                index: span.opened_at,
                t: self.last_t,
                check: "span-pairing",
                message: format!(
                    "span {id} ('{}', key {}) still open at end of trace (opened at event {})",
                    span.name, span.key, span.opened_at
                ),
            });
        }
        AuditReport {
            events: self.index,
            warnings: self.warnings,
            violations: self.violations,
        }
    }
}

/// Audit a pre-parsed event stream.
pub fn audit_events(events: &[AuditEvent], cfg: AuditConfig) -> AuditReport {
    let mut a = Auditor::new(cfg);
    for ev in events {
        a.push(ev);
    }
    a.finish()
}

/// Parse and audit a JSONL trace.
pub fn audit_jsonl_str(text: &str, cfg: AuditConfig) -> Result<AuditReport, ParseError> {
    Ok(audit_events(&parse_jsonl(text)?, cfg))
}

/// Audit an in-process trace buffer.
pub fn audit_buffer(buf: &TraceBuffer, cfg: AuditConfig) -> AuditReport {
    audit_events(&events_from_buffer(buf), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(lines: &str) -> AuditReport {
        audit_jsonl_str(lines, AuditConfig::default()).unwrap()
    }

    #[test]
    fn parses_writer_shapes() {
        let evs = parse_jsonl(
            "{\"t\":1.5,\"component\":\"emc\",\"kind\":\"tick\",\"program\":3,\"io_ratio\":0.9,\"improvement\":null,\"mode\":\"data_driven\",\"vetoed\":0}\n\
             {\"t\":2.0,\"component\":\"x\",\"kind\":\"y\",\"label\":\"a\\\"b\\\\c\\nd\",\"delta\":-4}\n",
        )
        .unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t, 1.5);
        assert_eq!(evs[0].u64("program"), Some(3));
        assert_eq!(evs[0].field("improvement"), Some(&Field::Null));
        assert_eq!(evs[1].str("label"), Some("a\"b\\c\nd"));
        assert_eq!(evs[1].field("delta"), Some(&Field::I64(-4)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("{\"t\":1.0,\"component\":\"a\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"t\":\"late\",\"component\":\"a\",\"kind\":\"b\"}").is_err());
    }

    #[test]
    fn clean_trace_passes() {
        let r = audit(
            "{\"t\":0.0,\"component\":\"emc\",\"kind\":\"config\",\"io_ratio_threshold\":0.8,\"t_improvement\":3.0,\"misprefetch_threshold\":0.2}\n\
             {\"t\":1.0,\"component\":\"emc\",\"kind\":\"tick\",\"program\":0,\"io_ratio\":0.95,\"improvement\":4.5,\"mode\":\"data_driven\",\"vetoed\":0}\n\
             {\"t\":1.0,\"component\":\"emc\",\"kind\":\"mode\",\"program\":0,\"mode\":\"data_driven\",\"reason\":\"emc\"}\n\
             {\"t\":1.5,\"component\":\"pec\",\"kind\":\"suspend\",\"proc\":7,\"program\":0}\n\
             {\"t\":1.6,\"component\":\"disk\",\"kind\":\"start\",\"server\":0,\"id\":1,\"lbn\":10,\"sectors\":8,\"kind_io\":\"read\"}\n\
             {\"t\":1.7,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":1}\n\
             {\"t\":1.8,\"component\":\"crm\",\"kind\":\"phase\",\"program\":0,\"seq\":1}\n\
             {\"t\":2.0,\"component\":\"pec\",\"kind\":\"resume\",\"proc\":7,\"program\":0}\n\
             {\"t\":2.5,\"component\":\"cache\",\"kind\":\"conservation\",\"inserted\":100,\"consumed\":60,\"overwritten\":10,\"evicted\":5,\"misprefetched\":25,\"unused_now\":0}\n",
        );
        assert!(r.ok(), "unexpected violations: {:?}", r.violations);
        assert_eq!(r.events, 9);
    }

    #[test]
    fn well_formed_spans_pass() {
        // A request lifecycle (life > issue, queue, service, ack) plus a
        // process-state span; skipping stages (write-back ack) is fine.
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"req.life\",\"key\":7,\"at\":0.0}\n\
             {\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":1,\"name\":\"req.issue\",\"key\":7,\"at\":0.0,\"parent\":0}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"close\",\"id\":1,\"at\":0.1}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"open\",\"id\":2,\"name\":\"server.queue\",\"key\":7,\"at\":0.1,\"parent\":0}\n\
             {\"t\":0.2,\"component\":\"span\",\"kind\":\"close\",\"id\":2,\"at\":0.2}\n\
             {\"t\":0.2,\"component\":\"span\",\"kind\":\"open\",\"id\":3,\"name\":\"disk.service\",\"key\":7,\"at\":0.2,\"parent\":0}\n\
             {\"t\":0.3,\"component\":\"span\",\"kind\":\"close\",\"id\":3,\"at\":0.3}\n\
             {\"t\":0.3,\"component\":\"span\",\"kind\":\"open\",\"id\":4,\"name\":\"req.ack\",\"key\":7,\"at\":0.3,\"parent\":0}\n\
             {\"t\":0.4,\"component\":\"span\",\"kind\":\"close\",\"id\":4,\"at\":0.4}\n\
             {\"t\":0.4,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.4}\n\
             {\"t\":0.5,\"component\":\"span\",\"kind\":\"open\",\"id\":5,\"name\":\"req.life\",\"key\":8,\"at\":0.5}\n\
             {\"t\":0.5,\"component\":\"span\",\"kind\":\"open\",\"id\":6,\"name\":\"req.issue\",\"key\":8,\"at\":0.5,\"parent\":5}\n\
             {\"t\":0.6,\"component\":\"span\",\"kind\":\"close\",\"id\":6,\"at\":0.6}\n\
             {\"t\":0.6,\"component\":\"span\",\"kind\":\"open\",\"id\":7,\"name\":\"req.ack\",\"key\":8,\"at\":0.6,\"parent\":5}\n\
             {\"t\":0.7,\"component\":\"span\",\"kind\":\"close\",\"id\":7,\"at\":0.7}\n\
             {\"t\":0.7,\"component\":\"span\",\"kind\":\"close\",\"id\":5,\"at\":0.7}\n\
             {\"t\":0.7,\"component\":\"span\",\"kind\":\"open\",\"id\":8,\"name\":\"proc.compute\",\"key\":1,\"at\":0.7}\n\
             {\"t\":0.8,\"component\":\"span\",\"kind\":\"close\",\"id\":8,\"at\":0.8}\n",
        );
        assert!(r.ok(), "unexpected violations: {:?}", r.violations);
    }

    #[test]
    fn flags_span_open_at_eof() {
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"proc.compute\",\"key\":1,\"at\":0.0}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "span-pairing");
        assert!(r.violations[0].message.contains("still open"));
    }

    #[test]
    fn flags_span_pairing_and_order_errors() {
        // Close without open.
        let r = audit("{\"t\":0.1,\"component\":\"span\",\"kind\":\"close\",\"id\":9,\"at\":0.1}\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "span-pairing");
        // …downgraded to a warning under truncation tolerance.
        let tol = AuditConfig {
            tolerate_truncation: true,
            ..AuditConfig::default()
        };
        let r = audit_jsonl_str(
            "{\"t\":0.1,\"component\":\"span\",\"kind\":\"close\",\"id\":9,\"at\":0.1}\n",
            tol,
        )
        .unwrap();
        assert!(r.ok());
        assert_eq!(r.warnings, 1);
        // Double close.
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"req.life\",\"key\":1,\"at\":0.0}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.1}\n\
             {\"t\":0.2,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.2}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("closed twice"));
        // Stage order regression: service after ack on the same key.
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"req.ack\",\"key\":3,\"at\":0.0}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.1}\n\
             {\"t\":0.2,\"component\":\"span\",\"kind\":\"open\",\"id\":1,\"name\":\"disk.service\",\"key\":3,\"at\":0.2}\n\
             {\"t\":0.3,\"component\":\"span\",\"kind\":\"close\",\"id\":1,\"at\":0.3}\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].check, "span-stage-order");
    }

    #[test]
    fn flags_span_nesting_errors() {
        // Child closing after its parent closed.
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"proc.suspended\",\"key\":1,\"at\":0.0}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"open\",\"id\":1,\"name\":\"proc.ghost\",\"key\":1,\"at\":0.1,\"parent\":0}\n\
             {\"t\":0.2,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.2}\n\
             {\"t\":0.3,\"component\":\"span\",\"kind\":\"close\",\"id\":1,\"at\":0.3}\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].check, "span-nesting");
        // Child opening before the parent did.
        let r = audit(
            "{\"t\":0.0,\"component\":\"span\",\"kind\":\"open\",\"id\":0,\"name\":\"req.life\",\"key\":1,\"at\":0.5}\n\
             {\"t\":0.1,\"component\":\"span\",\"kind\":\"open\",\"id\":1,\"name\":\"req.issue\",\"key\":1,\"at\":0.2,\"parent\":0}\n\
             {\"t\":0.6,\"component\":\"span\",\"kind\":\"close\",\"id\":1,\"at\":0.6}\n\
             {\"t\":0.6,\"component\":\"span\",\"kind\":\"close\",\"id\":0,\"at\":0.6}\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].check, "span-nesting");
        assert!(r.violations[0].message.contains("before its parent"));
    }

    #[test]
    fn flags_time_regression() {
        let r = audit(
            "{\"t\":2.0,\"component\":\"a\",\"kind\":\"b\"}\n\
             {\"t\":1.0,\"component\":\"a\",\"kind\":\"b\"}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "monotone-time");
        assert_eq!(r.violations[0].index, 1);
    }

    #[test]
    fn flags_overlapping_disk_requests() {
        let r = audit(
            "{\"t\":1.0,\"component\":\"disk\",\"kind\":\"start\",\"server\":2,\"id\":1,\"sectors\":8}\n\
             {\"t\":1.1,\"component\":\"disk\",\"kind\":\"start\",\"server\":2,\"id\":2,\"sectors\":8}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "disk-exclusivity");
    }

    #[test]
    fn in_flight_at_eof_is_legal_but_done_mismatch_is_not() {
        let ok = audit(
            "{\"t\":1.0,\"component\":\"disk\",\"kind\":\"start\",\"server\":0,\"id\":1,\"sectors\":8}\n",
        );
        assert!(ok.ok());
        let bad = audit(
            "{\"t\":1.0,\"component\":\"disk\",\"kind\":\"start\",\"server\":0,\"id\":1,\"sectors\":8}\n\
             {\"t\":1.1,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":9}\n",
        );
        assert_eq!(bad.violations.len(), 1);
        assert_eq!(bad.violations[0].check, "disk-pairing");
    }

    #[test]
    fn flags_unbalanced_pec_pairs() {
        let r = audit(
            "{\"t\":1.0,\"component\":\"pec\",\"kind\":\"suspend\",\"proc\":1}\n\
             {\"t\":1.5,\"component\":\"pec\",\"kind\":\"resume\",\"proc\":2}\n",
        );
        let checks: Vec<_> = r.violations.iter().map(|v| v.check).collect();
        // resume without suspend + proc 1 left suspended at EOF.
        assert_eq!(checks, vec!["pec-pairing", "pec-pairing"]);
    }

    #[test]
    fn truncation_tolerance_downgrades_prefix_orphans() {
        // A ring trace whose prefix fell off: the first done/resume per
        // server/proc arrive with their opening halves missing.
        let lines = "{\"t\":1.0,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":7}\n\
             {\"t\":1.1,\"component\":\"pec\",\"kind\":\"resume\",\"proc\":3,\"program\":0}\n\
             {\"t\":1.2,\"component\":\"disk\",\"kind\":\"start\",\"server\":0,\"id\":8,\"sectors\":8}\n\
             {\"t\":1.3,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":8}\n";
        // Default: both orphans are violations.
        let strict = audit(lines);
        assert_eq!(strict.violations.len(), 2);
        assert_eq!(strict.warnings, 0);
        // Tolerant: downgraded to counted warnings; the paired tail is clean.
        let cfg = AuditConfig {
            tolerate_truncation: true,
            ..AuditConfig::default()
        };
        let tolerant = audit_jsonl_str(lines, cfg).unwrap();
        assert!(tolerant.ok(), "unexpected: {:?}", tolerant.violations);
        assert_eq!(tolerant.warnings, 2);
        assert!(tolerant.to_json().contains("\"warnings\":2"));
    }

    #[test]
    fn truncation_tolerance_keeps_post_prefix_pairing_errors() {
        // Once a server/proc has shown its opening half, a later orphan can
        // no longer be blamed on the dropped prefix — still a violation.
        let lines = "{\"t\":1.0,\"component\":\"disk\",\"kind\":\"start\",\"server\":0,\"id\":1,\"sectors\":8}\n\
             {\"t\":1.1,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":1}\n\
             {\"t\":1.2,\"component\":\"disk\",\"kind\":\"done\",\"server\":0,\"id\":2}\n\
             {\"t\":1.3,\"component\":\"pec\",\"kind\":\"suspend\",\"proc\":5,\"program\":0}\n\
             {\"t\":1.4,\"component\":\"pec\",\"kind\":\"resume\",\"proc\":5,\"program\":0}\n\
             {\"t\":1.5,\"component\":\"pec\",\"kind\":\"resume\",\"proc\":5,\"program\":0}\n";
        let cfg = AuditConfig {
            tolerate_truncation: true,
            ..AuditConfig::default()
        };
        let r = audit_jsonl_str(lines, cfg).unwrap();
        assert_eq!(r.warnings, 0);
        let checks: Vec<_> = r.violations.iter().map(|v| v.check).collect();
        assert_eq!(checks, vec!["disk-pairing", "pec-pairing"]);
    }

    #[test]
    fn flags_illegal_mode_entry() {
        // io_ratio below threshold: entering data_driven is illegal.
        let r = audit(
            "{\"t\":1.0,\"component\":\"emc\",\"kind\":\"tick\",\"program\":0,\"io_ratio\":0.5,\"improvement\":4.5,\"mode\":\"data_driven\",\"vetoed\":0}\n\
             {\"t\":1.0,\"component\":\"emc\",\"kind\":\"mode\",\"program\":0,\"mode\":\"data_driven\",\"reason\":\"emc\"}\n",
        );
        assert!(r.violations.iter().any(|v| v.check == "emc-legality"));
    }

    #[test]
    fn null_improvement_means_infinite_and_is_legal() {
        let r = audit(
            "{\"t\":1.0,\"component\":\"emc\",\"kind\":\"tick\",\"program\":0,\"io_ratio\":0.95,\"improvement\":null,\"mode\":\"data_driven\",\"vetoed\":0}\n\
             {\"t\":1.0,\"component\":\"emc\",\"kind\":\"mode\",\"program\":0,\"mode\":\"data_driven\",\"reason\":\"emc\"}\n",
        );
        assert!(r.ok(), "unexpected: {:?}", r.violations);
    }

    #[test]
    fn forced_mode_skips_threshold_checks() {
        let r = audit(
            "{\"t\":0.0,\"component\":\"emc\",\"kind\":\"mode\",\"program\":1,\"mode\":\"data_driven\",\"reason\":\"forced\"}\n",
        );
        assert!(r.ok(), "unexpected: {:?}", r.violations);
    }

    #[test]
    fn flags_conservation_imbalance_and_crm_regression() {
        let r = audit(
            "{\"t\":1.0,\"component\":\"crm\",\"kind\":\"phase\",\"program\":0,\"seq\":2}\n\
             {\"t\":2.0,\"component\":\"crm\",\"kind\":\"phase\",\"program\":0,\"seq\":2}\n\
             {\"t\":3.0,\"component\":\"cache\",\"kind\":\"conservation\",\"inserted\":100,\"consumed\":10,\"overwritten\":0,\"evicted\":0,\"misprefetched\":0,\"unused_now\":0}\n",
        );
        let checks: Vec<_> = r.violations.iter().map(|v| v.check).collect();
        assert_eq!(checks, vec!["crm-sequence", "cache-conservation"]);
    }

    #[test]
    fn report_json_is_machine_readable() {
        let r = audit(
            "{\"t\":2.0,\"component\":\"a\",\"kind\":\"b\"}\n\
             {\"t\":1.0,\"component\":\"a\",\"kind\":\"b\"}\n",
        );
        let json = r.to_json();
        assert!(
            json.starts_with("{\"events\":2,\"warnings\":0,\"ok\":false,\"violations\":[{\"index\":1,")
        );
        // The summary itself must parse with our own parser (it is flat
        // except for the violations array, so check the key bits).
        assert!(json.contains("\"check\":\"monotone-time\""));
    }

    #[test]
    fn audited_kinds_mirror_telemetry_schema() {
        // The auditor's dispatch table and telemetry's canonical
        // TRACE_SCHEMA must name exactly the same pairs — a drifted entry
        // means records are silently ignored (or an audit check is dead).
        let schema: Vec<(&str, &str)> = dualpar_telemetry::schema::TRACE_SCHEMA
            .iter()
            .map(|s| (s.component, s.kind))
            .collect();
        assert_eq!(crate::audited_kinds(), schema);
    }
}
