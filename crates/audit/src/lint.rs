//! Source-lint pass for the DualPar workspace.
//!
//! Walks `crates/*/src` and flags patterns the project bans in library
//! code:
//!
//! - `.unwrap()` and `panic!(` — library code must carry a message
//!   (`expect`) or propagate an error; test modules are exempt;
//! - `std::sync::Mutex` — the workspace standardizes on `parking_lot`;
//! - narrowing `as` casts (`as u8/u16/u32/i8/i16/i32/f32`) in the disk and
//!   cache hot paths, where silently truncating an LBN or byte count is a
//!   correctness bug;
//! - unguarded `+`/`*` arithmetic on overflow-sensitive quantities (times,
//!   deadlines, slices, LBNs, sector counts) in the disk schedulers and
//!   the cluster engine, where a wrapped deadline silently reorders the
//!   whole dispatch queue (or event loop). Lines using
//!   `checked_*`/`saturating_*`/`wrapping_*`/`abs_diff` or widening
//!   through `u128` are considered guarded.
//!
//! `#[cfg(test)]` items are skipped (the pass tracks the brace extent of
//! the annotated item), as are comments and string-literal contents.
//! Deliberate exceptions live in an allow-list file
//! (`scripts/lint-allow.txt`), one entry per line:
//!
//! ```text
//! rule  path-suffix  substring-of-the-offending-line
//! ```
//!
//! or inline, by putting `audit:allow` in a comment on the flagged line.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Names of the lint rules, as used in findings and allow-list entries.
pub const RULES: [&str; 5] = [
    "unwrap",
    "panic",
    "std-mutex",
    "narrowing-cast",
    "overflow-arith",
];

/// One lint hit.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// File the pattern was found in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
}

impl LintFinding {
    /// `path:line: [rule] text` — the shape editors can jump to.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.text
        )
    }
}

/// Deliberate exceptions to the lint rules.
#[derive(Debug, Clone, Default)]
pub struct AllowList {
    entries: Vec<(String, String, String)>,
}

impl AllowList {
    /// Parse allow-list text: `rule path-suffix substring` per line, `#`
    /// comments and blank lines ignored. The substring is the rest of the
    /// line (it may contain spaces).
    pub fn parse(text: &str) -> AllowList {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                let substr = parts.next().unwrap_or("").trim().to_string();
                entries.push((rule.to_string(), path.to_string(), substr));
            }
        }
        AllowList { entries }
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<AllowList> {
        Ok(AllowList::parse(&fs::read_to_string(path)?))
    }

    /// Does some entry cover this finding? Matching is by rule name, path
    /// suffix, and (if the entry gives one) a substring of the source
    /// line — robust to line-number drift.
    pub fn permits(&self, f: &LintFinding) -> bool {
        let path = slash_path(&f.path);
        self.entries.iter().any(|(rule, suffix, substr)| {
            rule == f.rule
                && path.ends_with(suffix.as_str())
                && (substr.is_empty() || f.text.contains(substr.as_str()))
        })
    }
}

fn slash_path(p: &Path) -> String {
    p.to_string_lossy().replace('\\', "/")
}

/// Strip string-literal contents, char literals, and `//` comments from a
/// source line so the rules match only real code. Multi-line literals are
/// not tracked; the allow-list is the escape hatch for those rare cases.
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break,
            b'"' => {
                // Skip to the closing quote, honouring escapes.
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{..}') vs. lifetime ('a).
                let rest = &bytes[i + 1..];
                let lit_len = if rest.first() == Some(&b'\\') {
                    rest.iter().position(|&b| b == b'\'').map(|p| p + 2)
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    Some(3)
                } else {
                    None
                };
                match lit_len {
                    Some(n) => {
                        out.push_str("''");
                        i += n;
                    }
                    None => {
                        out.push('\'');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

fn brace_delta(sanitized: &str) -> i32 {
    let mut d = 0;
    for c in sanitized.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Is the narrowing-cast token at `pos` a whole word (`x as u32;` yes,
/// `x as u32x` no)?
fn word_boundary_after(s: &str, end: usize) -> bool {
    s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

const NARROW_CASTS: [&str; 7] = [
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32", " as f32",
];

/// Identifier fragments marking a quantity whose overflow corrupts
/// scheduling decisions rather than merely panicking.
const OVERFLOW_NOUNS: [&str; 9] = [
    "now", "time", "deadline", "arrival", "slice", "expire", "window", "lbn", "sector",
];

/// Substrings that mark a line as deliberately overflow-aware.
const OVERFLOW_GUARDS: [&str; 5] = [
    "checked_",
    "saturating_",
    "wrapping_",
    "abs_diff",
    "u128",
];

/// Does this (sanitized, trimmed) line do raw `+`/`*` arithmetic on an
/// overflow-sensitive quantity? Matches rustfmt's spaced binary operators;
/// unary/ref uses (`&'a`, `*ptr`) never carry surrounding spaces.
fn overflow_prone(code: &str) -> bool {
    let has_op = [" + ", " += ", " * ", " *= "]
        .iter()
        .any(|op| code.contains(op));
    if !has_op || OVERFLOW_GUARDS.iter().any(|g| code.contains(g)) {
        return false;
    }
    OVERFLOW_NOUNS.iter().any(|n| code.contains(n))
}

/// Lint one file's source text. `in_hot_path` turns on the narrowing-cast
/// rule (disk and cache crates); `in_sched` turns on the overflow-arith
/// rule (disk scheduler sources).
pub fn lint_source(path: &Path, src: &str, in_hot_path: bool, in_sched: bool) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    // Brace depth of a `#[cfg(test)]` item we are currently skipping.
    let mut skip_depth: Option<i32> = None;
    let mut pending_cfg_test = false;
    for (lineno, raw) in src.lines().enumerate() {
        let sanitized = sanitize(raw);
        let code = sanitized.trim();
        if let Some(depth) = skip_depth.as_mut() {
            *depth += brace_delta(&sanitized);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            // The attribute applies to this item; skip its brace extent.
            let d = brace_delta(&sanitized);
            if d > 0 {
                skip_depth = Some(d);
                pending_cfg_test = false;
            } else if !code.is_empty() && !code.starts_with("#[") {
                // One-line item (e.g. `mod tests;`).
                pending_cfg_test = false;
            }
            continue;
        }
        if raw.contains("audit:allow") {
            continue;
        }
        let mut hit = |rule: &'static str| {
            findings.push(LintFinding {
                path: path.to_path_buf(),
                line: lineno + 1,
                rule,
                text: raw.trim().to_string(),
            });
        };
        if code.contains(".unwrap()") {
            hit("unwrap");
        }
        if code.contains("panic!(") {
            hit("panic");
        }
        if code.contains("std::sync::Mutex") {
            hit("std-mutex");
        }
        if in_hot_path {
            for pat in NARROW_CASTS {
                if let Some(pos) = code.find(pat) {
                    if word_boundary_after(code, pos + pat.len()) {
                        hit("narrowing-cast");
                        break;
                    }
                }
            }
        }
        if in_sched && overflow_prone(code) {
            hit("overflow-arith");
        }
    }
    findings
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `root`, dropping findings the
/// allow-list covers. Results are sorted by path and line.
pub fn lint_workspace(root: &Path, allow: &AllowList) -> io::Result<Vec<LintFinding>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let slashed = slash_path(&path);
        let hot = slashed.contains("/disk/src/") || slashed.contains("/cache/src/");
        let overflow = slashed.contains("/disk/src/sched/") || slashed.contains("/cluster/src/");
        findings.extend(
            lint_source(&path, &text, hot, overflow)
                .into_iter()
                .filter(|f| !allow.permits(f)),
        );
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str, hot: bool) -> Vec<&'static str> {
        lint_source(Path::new("crates/x/src/lib.rs"), src, hot, false)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    fn lint_sched(src: &str) -> Vec<&'static str> {
        lint_source(Path::new("crates/disk/src/sched/x.rs"), src, true, true)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_panic_in_library_code() {
        let src = "fn f() {\n    let x = opt.unwrap();\n    panic!(\"boom\");\n}\n";
        assert_eq!(lint_str(src, false), vec!["unwrap", "panic"]);
    }

    #[test]
    fn skips_cfg_test_modules_and_comments() {
        let src = "fn f() {}\n\
                   // opt.unwrap() in a comment is fine\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { opt.unwrap(); panic!(\"ok in tests\"); }\n\
                   }\n";
        assert!(lint_str(src, false).is_empty());
    }

    #[test]
    fn string_contents_do_not_match() {
        let src = "fn f() { let s = \".unwrap() panic!( std::sync::Mutex\"; use_(s); }\n";
        assert!(lint_str(src, false).is_empty());
    }

    #[test]
    fn char_literal_quote_does_not_derail_sanitizer() {
        let src = "fn f(c: char) { match c { '\"' => opt.unwrap(), _ => {} } }\n";
        assert_eq!(lint_str(src, false), vec!["unwrap"]);
    }

    #[test]
    fn narrowing_casts_only_flagged_in_hot_paths() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(lint_str(src, true), vec!["narrowing-cast"]);
        assert!(lint_str(src, false).is_empty());
        // `as usize` is not narrowing on the supported targets.
        assert!(lint_str("fn f(x: u32) -> usize { x as usize }\n", true).is_empty());
    }

    #[test]
    fn overflow_arith_only_fires_in_sched_sources() {
        let src = "fn f() { let deadline = req.arrival + expire; use_(deadline); }\n";
        assert_eq!(lint_sched(src), vec!["overflow-arith"]);
        assert!(lint_str(src, true).is_empty());
    }

    #[test]
    fn overflow_arith_respects_guards_and_plain_arithmetic() {
        // Guarded forms pass.
        assert!(lint_sched("fn f() { let d = now.saturating_add(self.cfg.slice); }\n").is_empty());
        assert!(lint_sched("fn f() { let d = arrival.checked_add(expire); }\n").is_empty());
        assert!(lint_sched("fn f() { let d = a.lbn.abs_diff(b.lbn); }\n").is_empty());
        // Arithmetic on quantities with no overflow-sensitive noun passes.
        assert!(lint_sched("fn f(i: usize) { let j = i + 1; use_(j); }\n").is_empty());
        // Raw multiplication of sector counts is flagged.
        assert_eq!(
            lint_sched("fn f() { let b = req.sectors * bytes_each; use_(b); }\n"),
            vec!["overflow-arith"]
        );
    }

    #[test]
    fn inline_marker_and_allow_list_suppress() {
        let src = "fn f() { opt.unwrap(); } // audit:allow — startup only\n";
        assert!(lint_str(src, false).is_empty());
        let f = LintFinding {
            path: PathBuf::from("crates/bench/src/lib.rs"),
            line: 10,
            rule: "unwrap",
            text: "let name = dat.file_name().unwrap();".to_string(),
        };
        let allow = AllowList::parse(
            "# comment\n\
             unwrap crates/bench/src/lib.rs file_name()\n",
        );
        assert!(allow.permits(&f));
        let other = LintFinding {
            path: PathBuf::from("crates/core/src/emc.rs"),
            ..f.clone()
        };
        assert!(!allow.permits(&other));
    }
}
