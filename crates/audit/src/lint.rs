//! Source-lint engine for the DualPar workspace.
//!
//! The engine ties together the [`lexer`](crate::lexer), the
//! [`itemtree`](crate::itemtree) cfg-extent mask, and the
//! [`rules`](crate::rules): it walks `crates/*/src/**/*.rs`, scans files in
//! parallel over [`dualpar_sim::parallel_map`] (deterministic finding order
//! — results come back in input order regardless of job count), applies
//! suppressions, and cross-checks every statically-extracted trace
//! `(component, kind)` pair against `dualpar_telemetry::schema`.
//!
//! Suppressions come in two forms:
//!
//! - **inline** — a comment containing `audit:allow` suppresses all
//!   findings on the comment's starting line;
//! - **allow-list** — `scripts/lint-allow.txt` entries of the form
//!   `rule path-suffix substring-of-the-offending-line`.
//!
//! Every allow-list entry must still match something: stale entries are
//! reported as `unused-suppression` deny findings anchored at the entry's
//! line in the allow file, so the list can only shrink toward the truth.
//!
//! See `docs/LINT.md` for the rule catalogue, the JSON report schema, and
//! the trace-schema cross-check contract.

use crate::itemtree::cfg_mask;
use crate::lexer::lex;
use crate::rules::schema::{extract_trace_emits, TraceEmit};
use crate::rules::source::scan_tokens;
use crate::rules::{severity_of, Severity};
use dualpar_sim::parallel_map;
use dualpar_telemetry::schema::TRACE_SCHEMA;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// File the pattern was found in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// Which rule fired (a name from [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// The offending source line (or a synthesized message for
    /// cross-file findings), trimmed.
    pub text: String,
}

impl LintFinding {
    /// `path:line: [severity rule] text` — the shape editors can jump to.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{} {}] {}",
            self.path.display(),
            self.line,
            self.severity,
            self.rule,
            self.text
        )
    }
}

/// Deliberate exceptions to the lint rules, loaded from an allow file.
#[derive(Debug, Clone, Default)]
pub struct AllowList {
    /// Path the list was loaded from (anchors unused-suppression findings).
    source: Option<PathBuf>,
    entries: Vec<AllowEntry>,
}

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    suffix: String,
    substr: String,
    /// 1-based line in the allow file.
    file_line: u32,
    used: bool,
}

impl AllowList {
    /// Parse allow-list text: `rule path-suffix substring` per line, `#`
    /// comments and blank lines ignored. The substring is the rest of the
    /// line (it may contain spaces).
    pub fn parse(text: &str) -> AllowList {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    suffix: path.to_string(),
                    substr: parts.next().unwrap_or("").trim().to_string(),
                    file_line: (lineno + 1) as u32,
                    used: false,
                });
            }
        }
        AllowList {
            source: None,
            entries,
        }
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<AllowList> {
        let mut list = AllowList::parse(&fs::read_to_string(path)?);
        list.source = Some(path.to_path_buf());
        Ok(list)
    }

    /// Does some entry cover this finding? Matching entries are marked
    /// used; matching is by rule name, path suffix, and (if the entry
    /// gives one) a substring of the source line — robust to line-number
    /// drift.
    pub fn permits(&mut self, f: &LintFinding) -> bool {
        let path = slash_path(&f.path);
        let mut permitted = false;
        for e in &mut self.entries {
            if e.rule == f.rule
                && path.ends_with(e.suffix.as_str())
                && (e.substr.is_empty() || f.text.contains(e.substr.as_str()))
            {
                e.used = true;
                permitted = true;
            }
        }
        permitted
    }

    /// Findings for every entry that never matched: stale suppressions
    /// must be deleted, not accumulated.
    pub fn unused_findings(&self) -> Vec<LintFinding> {
        let source = self
            .source
            .clone()
            .unwrap_or_else(|| PathBuf::from("<allow-list>"));
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| LintFinding {
                path: source.clone(),
                line: e.file_line,
                rule: "unused-suppression",
                severity: Severity::Deny,
                text: format!(
                    "allow entry `{} {} {}` matches no finding — delete it",
                    e.rule, e.suffix, e.substr
                ),
            })
            .collect()
    }
}

fn slash_path(p: &Path) -> String {
    p.to_string_lossy().replace('\\', "/")
}

/// Result of scanning one file: rule findings (inline suppressions already
/// applied, allow-list not yet) plus the statically-extracted trace emits.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// Rule findings, in source order.
    pub findings: Vec<LintFinding>,
    /// `(component, kind)` literal pairs passed to trace constructors.
    pub emits: Vec<TraceEmit>,
}

/// Scan one file's source text. `hot` enables the hot-path-only rules
/// (narrowing-cast); the deterministic workspace walk sets it for
/// `crates/disk/src` and `crates/cache/src`.
pub fn scan_file(path: &Path, src: &str, hot: bool) -> FileScan {
    let toks = lex(src);
    let mask = cfg_mask(src, &toks);
    // Inline suppressions: a comment containing `audit:allow` covers its
    // starting line.
    let allowed_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.is_comment() && t.text(src).contains("audit:allow"))
        .map(|t| t.line)
        .collect();
    let lines: Vec<&str> = src.lines().collect();
    let findings = scan_tokens(src, &toks, &mask, hot)
        .into_iter()
        .filter(|(line, _)| !allowed_lines.contains(line))
        .map(|(line, rule)| LintFinding {
            path: path.to_path_buf(),
            line,
            rule,
            severity: severity_of(rule),
            text: lines
                .get(line as usize - 1)
                .map_or(String::new(), |l| l.trim().to_string()),
        })
        .collect();
    FileScan {
        findings,
        emits: extract_trace_emits(src, &toks, &mask),
    }
}

/// A workspace lint run: findings (allow-filtered, sorted by path, line,
/// rule) plus the counts the gate checks.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Surviving findings, sorted by (path, line, rule).
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Number of deny-severity findings (includes unused suppressions).
    pub fn deny(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Number of stale allow-list entries.
    pub fn unused_suppressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule == "unused-suppression")
            .count()
    }

    /// The gate: clean means zero deny findings (warns are advisory).
    pub fn ok(&self) -> bool {
        self.deny() == 0
    }

    /// Machine-readable JSON report (see `docs/LINT.md` for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"deny\":");
        out.push_str(&self.deny().to_string());
        out.push_str(",\"warn\":");
        out.push_str(&self.warn().to_string());
        out.push_str(",\"unused_suppressions\":");
        out.push_str(&self.unused_suppressions().to_string());
        out.push_str(",\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            crate::push_json_str(&mut out, &slash_path(&f.path));
            out.push_str(",\"line\":");
            out.push_str(&f.line.to_string());
            out.push_str(",\"rule\":");
            crate::push_json_str(&mut out, f.rule);
            out.push_str(",\"severity\":");
            crate::push_json_str(&mut out, &f.severity.to_string());
            out.push_str(",\"text\":");
            crate::push_json_str(&mut out, &f.text);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Is this workspace path part of the disk/cache hot paths (narrowing-cast
/// territory)?
fn is_hot(path: &Path) -> bool {
    let slashed = slash_path(path);
    slashed.contains("/disk/src/") || slashed.contains("/cache/src/")
}

/// Lint every `crates/*/src/**/*.rs` under `root` with up to `jobs`
/// scanner threads, dropping findings the allow-list covers, then run the
/// trace-schema cross-check and the unused-suppression check.
///
/// Finding order is deterministic at any job count: files are walked in
/// sorted order and the parallel map returns results in input order.
pub fn lint_workspace(root: &Path, allow: &mut AllowList, jobs: usize) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let sources: Vec<(PathBuf, String)> = files
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p)?;
            Ok((p, text))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let scans = parallel_map(&sources, jobs, |_, (path, text)| {
        scan_file(path, text, is_hot(path))
    });

    let mut findings = Vec::new();
    let mut emits: Vec<(PathBuf, TraceEmit)> = Vec::new();
    for ((path, _), scan) in sources.iter().zip(scans) {
        findings.extend(scan.findings.into_iter().filter(|f| !allow.permits(f)));
        emits.extend(scan.emits.into_iter().map(|e| (path.clone(), e)));
    }
    findings.extend(
        cross_check_schema(root, &emits)
            .into_iter()
            .filter(|f| !allow.permits(f)),
    );
    findings.extend(allow.unused_findings());
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    Ok(LintReport {
        files_scanned: sources.len(),
        findings,
    })
}

/// Diff the statically-extracted emit sites against the canonical
/// `TRACE_SCHEMA` registry: unregistered pairs are findings at the emit
/// site, registered-but-unemitted pairs are findings at the schema table.
fn cross_check_schema(root: &Path, emits: &[(PathBuf, TraceEmit)]) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (path, e) in emits {
        if !dualpar_telemetry::schema::is_registered(&e.component, &e.kind) {
            findings.push(LintFinding {
                path: path.clone(),
                line: e.line,
                rule: "trace-schema",
                severity: Severity::Deny,
                text: format!(
                    "emitted pair (\"{}\", \"{}\") is not registered in telemetry's TRACE_SCHEMA",
                    e.component, e.kind
                ),
            });
        }
    }
    for spec in TRACE_SCHEMA {
        let emitted = emits
            .iter()
            .any(|(_, e)| e.component == spec.component && e.kind == spec.kind);
        if !emitted {
            findings.push(LintFinding {
                path: root.join("crates/telemetry/src/schema.rs"),
                line: 1,
                rule: "trace-schema",
                severity: Severity::Deny,
                text: format!(
                    "registered pair (\"{}\", \"{}\") has no non-test emit site — check `{}` is dead",
                    spec.component, spec.kind, spec.audit_check
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str, hot: bool) -> Vec<&'static str> {
        scan_file(Path::new("crates/x/src/lib.rs"), src, hot)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn scan_file_attaches_text_and_severity() {
        let scan = scan_file(
            Path::new("crates/x/src/lib.rs"),
            "fn f() {\n    opt.unwrap();\n}\n",
            false,
        );
        assert_eq!(scan.findings.len(), 1);
        let f = &scan.findings[0];
        assert_eq!(f.line, 2);
        assert_eq!(f.text, "opt.unwrap();");
        assert_eq!(f.severity, Severity::Deny);
        assert_eq!(
            f.render(),
            "crates/x/src/lib.rs:2: [deny unwrap] opt.unwrap();"
        );
    }

    #[test]
    fn inline_marker_suppresses_the_line() {
        let src = "fn f() { opt.unwrap(); } // audit:allow — startup only\n";
        assert!(rules_of(src, false).is_empty());
        // The marker only works from comments, not string contents.
        let src = "fn f() { let s = \"audit:allow\"; opt.unwrap(); use_(s); }\n";
        assert_eq!(rules_of(src, false), vec!["unwrap"]);
    }

    #[test]
    fn allow_list_matches_and_tracks_usage() {
        let f = LintFinding {
            path: PathBuf::from("crates/bench/src/lib.rs"),
            line: 10,
            rule: "unwrap",
            severity: Severity::Deny,
            text: "let name = dat.file_name().unwrap();".to_string(),
        };
        let mut allow = AllowList::parse(
            "# comment\n\
             unwrap crates/bench/src/lib.rs file_name()\n\
             panic crates/never/src/used.rs boom\n",
        );
        assert!(allow.permits(&f));
        let other = LintFinding {
            path: PathBuf::from("crates/core/src/emc.rs"),
            ..f.clone()
        };
        assert!(!allow.permits(&other));
        let unused = allow.unused_findings();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "unused-suppression");
        assert_eq!(unused[0].line, 3);
        assert!(unused[0].text.contains("crates/never/src/used.rs"));
    }

    #[test]
    fn report_counts_and_json_shape() {
        let report = LintReport {
            files_scanned: 2,
            findings: vec![
                LintFinding {
                    path: PathBuf::from("crates/x/src/lib.rs"),
                    line: 1,
                    rule: "unwrap",
                    severity: Severity::Deny,
                    text: "x.unwrap();".into(),
                },
                LintFinding {
                    path: PathBuf::from("crates/x/src/lib.rs"),
                    line: 2,
                    rule: "float-accum",
                    severity: Severity::Warn,
                    text: "v.iter().sum::<f64>()".into(),
                },
            ],
        };
        assert_eq!(report.deny(), 1);
        assert_eq!(report.warn(), 1);
        assert!(!report.ok());
        let json = report.to_json();
        assert!(json.starts_with(
            "{\"files_scanned\":2,\"deny\":1,\"warn\":1,\"unused_suppressions\":0,\"ok\":false,\"findings\":["
        ));
        assert!(json.contains("\"rule\":\"unwrap\""));
        assert!(json.contains("\"severity\":\"warn\""));
        assert!(json.ends_with("}]}"));
    }

    #[test]
    fn cross_check_flags_unregistered_and_dead_pairs() {
        let emits = vec![
            (
                PathBuf::from("crates/x/src/lib.rs"),
                TraceEmit {
                    component: "disk".into(),
                    kind: "seek".into(),
                    line: 7,
                },
            ),
            (
                PathBuf::from("crates/x/src/lib.rs"),
                TraceEmit {
                    component: "disk".into(),
                    kind: "start".into(),
                    line: 8,
                },
            ),
        ];
        let findings = cross_check_schema(Path::new("."), &emits);
        // One unregistered emit…
        assert!(findings
            .iter()
            .any(|f| f.line == 7 && f.text.contains("\"seek\"")));
        // …and every registered pair except disk/start is unemitted here.
        let dead = findings
            .iter()
            .filter(|f| f.text.contains("no non-test emit site"))
            .count();
        assert_eq!(dead, TRACE_SCHEMA.len() - 1);
        assert!(!findings
            .iter()
            .any(|f| f.text.contains("(\"disk\", \"start\") has no")));
    }
}
