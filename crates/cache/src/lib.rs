//! # dualpar-cache
//!
//! The global client-side I/O cache — our stand-in for the Memcached layer
//! of §IV-D. A file is partitioned into chunks equal to the PVFS2 stripe
//! unit (64 KB) so a chunk touches exactly one data server; chunk *homes*
//! are spread round-robin over the compute nodes; every chunk carries a
//! reference-time tag for idle eviction; and per-owner accounting supports
//! the per-process quota and the mis-prefetch ratio that EMC monitors.
//!
//! The cache stores *metadata about byte ranges*, not data bytes: the
//! simulator only needs to know whether a read hits, how much is dirty,
//! and which node's memory holds a chunk (to charge network transfers).

pub mod store;

pub use store::{CacheConfig, CacheStats, GlobalCache, NodeId, OwnerId, ReadResult};
