//! The chunked global cache store.

use dualpar_pfs::{FileId, FileRegion, RangeSet};
use dualpar_sim::{FxHashMap, FxHashSet, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A compute node in the cluster (cache homes live on compute nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A cache-accounting identity — one per MPI process in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OwnerId(pub u64);

/// Cache geometry and policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Chunk size — set to the PVFS2 stripe unit (64 KB) so one chunk maps
    /// to one data server (§IV-D).
    pub chunk_size: u64,
    /// Number of compute nodes the cache is distributed over.
    pub num_nodes: u32,
    /// A chunk unused for this long is evictable.
    pub idle_ttl: SimDuration,
    /// Memory available for cache chunks on each compute node; inserting
    /// past it evicts that node's least-recently-used clean chunks
    /// (Memcached's LRU under memory pressure).
    pub node_capacity: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            chunk_size: 64 * 1024,
            num_nodes: 1,
            idle_ttl: SimDuration::from_secs(30),
            node_capacity: u64::MAX,
        }
    }
}

#[derive(Debug, Default)]
struct Chunk {
    /// Byte ranges (absolute file offsets) present in the cache.
    present: RangeSet,
    /// Dirty (buffered-write) ranges awaiting write-back.
    dirty: RangeSet,
    /// Prefetched ranges not yet consumed by a normal read.
    prefetched_unused: RangeSet,
    last_ref: SimTime,
    /// Quota charges against each inserting owner (usually one or a few
    /// entries; interleaved writers can share a chunk).
    charges: Vec<(OwnerId, u64)>,
}

impl Chunk {
    fn charge(&mut self, owner: OwnerId, added: u64) {
        if added == 0 {
            return;
        }
        match self.charges.iter_mut().find(|(o, _)| *o == owner) {
            Some((_, c)) => *c += added,
            None => self.charges.push((owner, added)),
        }
    }

    /// Owners whose prefetched data this chunk may hold.
    fn charged_owners(&self) -> impl Iterator<Item = OwnerId> + '_ {
        self.charges.iter().map(|&(o, _)| o)
    }
}

/// Result of a cache read probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// True iff every requested byte was present.
    pub hit: bool,
    /// Bytes of the request found in the cache.
    pub bytes_found: u64,
    /// `(home node, bytes)` touched — the caller charges network transfers
    /// for remote homes.
    pub homes: Vec<(NodeId, u64)>,
}

/// Aggregate counters, exposed for tests and the experiment harnesses.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CacheStats {
    /// Read probes issued.
    pub read_probes: u64,
    /// Probes that fully hit.
    pub read_hits: u64,
    /// Bytes inserted by prefetching.
    pub bytes_prefetched: u64,
    /// Bytes inserted by buffered writes.
    pub bytes_written: u64,
    /// Bytes removed by any eviction path.
    pub bytes_evicted: u64,
    /// High-water mark of buffered dirty bytes (peak write-back backlog).
    pub dirty_hwm: u64,
}

/// Exact byte ledger of speculative (prefetched) data, maintained as a
/// delta on every mutation of the chunks' `prefetched_unused` coverage.
/// Unlike [`CacheStats`] (which counts request bytes and can double-count
/// overlapping inserts), the ledger is conservation-exact:
///
/// ```text
/// inserted == consumed + overwritten + evicted + misprefetched + unused_now
/// ```
///
/// The trace auditor (`dualpar-audit`) checks this identity on the
/// `cache/conservation` trace event the engine emits at end of run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PrefetchLedger {
    /// New speculative bytes added by `put_prefetch` (overlaps excluded).
    pub inserted: u64,
    /// Speculative bytes consumed by a normal read.
    pub consumed: u64,
    /// Speculative bytes overwritten by a buffered write (live data now).
    pub overwritten: u64,
    /// Speculative bytes dropped by any eviction/invalidation path.
    pub evicted: u64,
    /// Speculative bytes written off as mis-prefetched at epoch ends.
    pub misprefetched: u64,
    /// Speculative bytes still sitting unused in the cache.
    pub unused_now: u64,
}

impl PrefetchLedger {
    /// Does the conservation identity hold?
    pub fn balanced(&self) -> bool {
        self.inserted
            == self.consumed + self.overwritten + self.evicted + self.misprefetched
                + self.unused_now
    }
}

/// The distributed cache (metadata model).
pub struct GlobalCache {
    cfg: CacheConfig,
    chunks: FxHashMap<(FileId, u64), Chunk>,
    /// Bytes charged per owner.
    usage: FxHashMap<OwnerId, u64>,
    /// Bytes prefetched per owner in the current epoch (for the
    /// mis-prefetch ratio).
    epoch_prefetched: FxHashMap<OwnerId, u64>,
    stats: CacheStats,
    /// Conservation-exact accounting of prefetched bytes.
    ledger: PrefetchLedger,
    /// Incremental mirror of [`GlobalCache::dirty_bytes`] — dirty data only
    /// changes in `put_write` and `drain_dirty` (evictions skip dirty
    /// chunks), so a running total avoids the O(chunks) scan per update.
    dirty_now: u64,
}

impl GlobalCache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.chunk_size > 0 && cfg.num_nodes > 0);
        GlobalCache {
            cfg,
            chunks: FxHashMap::default(),
            usage: FxHashMap::default(),
            epoch_prefetched: FxHashMap::default(),
            stats: CacheStats::default(),
            ledger: PrefetchLedger::default(),
            dirty_now: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The conservation-exact prefetched-byte ledger.
    pub fn prefetch_ledger(&self) -> PrefetchLedger {
        self.ledger
    }

    /// Recount the speculative bytes actually present in the chunks.
    fn scan_unused(&self) -> u64 {
        self.chunks
            .values()
            .map(|c| c.prefetched_unused.covered())
            .sum()
    }

    /// Panic unless the ledger balances *and* its incremental `unused_now`
    /// matches a full rescan of the chunks. O(chunks) — used by property
    /// tests and the strict-invariant checks at phase boundaries.
    pub fn assert_conservation(&self) {
        assert!(
            self.ledger.balanced(),
            "prefetch ledger out of balance: {:?}",
            self.ledger
        );
        assert_eq!(
            self.ledger.unused_now,
            self.scan_unused(),
            "prefetch ledger unused_now diverged from chunk contents"
        );
    }

    /// Drop `removed` speculative bytes into the given ledger bucket.
    fn ledger_remove(&mut self, removed: u64, bucket: fn(&mut PrefetchLedger) -> &mut u64) {
        if removed == 0 {
            return;
        }
        dualpar_sim::strict_assert!(
            self.ledger.unused_now >= removed,
            "prefetch ledger underflow: removing {removed} of {}",
            self.ledger.unused_now
        );
        self.ledger.unused_now = self.ledger.unused_now.saturating_sub(removed);
        *bucket(&mut self.ledger) += removed;
    }

    /// Home node of a chunk: round-robin by chunk index (§IV-D).
    #[inline]
    pub fn home_of(&self, _file: FileId, chunk_idx: u64) -> NodeId {
        let node = u32::try_from(chunk_idx % u64::from(self.cfg.num_nodes))
            .expect("residue of a u32 modulus fits in u32");
        NodeId(node)
    }

    fn chunk_range(&self, region: FileRegion) -> (u64, u64) {
        let first = region.offset / self.cfg.chunk_size;
        let last = (region.end() - 1) / self.cfg.chunk_size;
        (first, last)
    }

    /// Iterate the (chunk_idx, sub-region) decomposition of `region`.
    fn per_chunk(&self, region: FileRegion) -> Vec<(u64, FileRegion)> {
        if region.len == 0 {
            return Vec::new();
        }
        let (first, last) = self.chunk_range(region);
        let mut out = Vec::with_capacity((last - first + 1) as usize);
        for idx in first..=last {
            let cs = idx * self.cfg.chunk_size;
            let ce = cs + self.cfg.chunk_size;
            let s = region.offset.max(cs);
            let e = region.end().min(ce);
            out.push((idx, FileRegion::new(s, e - s)));
        }
        out
    }

    fn charge(&mut self, chunk: &mut Chunk, owner: OwnerId, added: u64) {
        if added == 0 {
            return;
        }
        chunk.charge(owner, added);
        *self.usage.entry(owner).or_insert(0) += added;
    }

    /// Insert prefetched data for `owner`. Returns `(home, bytes)` pairs for
    /// network-cost charging of the insertion.
    pub fn put_prefetch(
        &mut self,
        owner: OwnerId,
        file: FileId,
        region: FileRegion,
        now: SimTime,
    ) -> Vec<(NodeId, u64)> {
        let mut homes = Vec::new();
        for (idx, sub) in self.per_chunk(region) {
            let home = self.home_of(file, idx);
            let mut chunk = self.chunks.remove(&(file, idx)).unwrap_or_default();
            let before = chunk.present.covered();
            let pf_before = chunk.prefetched_unused.covered();
            chunk.present.insert(sub.offset, sub.len);
            chunk.prefetched_unused.insert(sub.offset, sub.len);
            chunk.last_ref = now;
            let added = chunk.present.covered() - before;
            let pf_added = chunk.prefetched_unused.covered() - pf_before;
            self.ledger.inserted += pf_added;
            self.ledger.unused_now = self.ledger.unused_now.saturating_add(pf_added);
            self.charge(&mut chunk, owner, added);
            self.chunks.insert((file, idx), chunk);
            homes.push((home, sub.len));
        }
        dualpar_sim::strict_assert!(self.ledger.balanced(), "ledger after put_prefetch");
        self.stats.bytes_prefetched += region.len;
        *self.epoch_prefetched.entry(owner).or_insert(0) += region.len;
        for &(home, _) in &homes {
            self.enforce_node_capacity(home);
        }
        homes
    }

    /// Buffer a write for `owner` (data-driven mode write path).
    pub fn put_write(
        &mut self,
        owner: OwnerId,
        file: FileId,
        region: FileRegion,
        now: SimTime,
    ) -> Vec<(NodeId, u64)> {
        let mut homes = Vec::new();
        let mut overwritten = 0u64;
        for (idx, sub) in self.per_chunk(region) {
            let home = self.home_of(file, idx);
            let mut chunk = self.chunks.remove(&(file, idx)).unwrap_or_default();
            let before = chunk.present.covered();
            let dirty_before = chunk.dirty.covered();
            let pf_before = chunk.prefetched_unused.covered();
            chunk.present.insert(sub.offset, sub.len);
            chunk.dirty.insert(sub.offset, sub.len);
            self.dirty_now = self.dirty_now.saturating_add(chunk.dirty.covered() - dirty_before);
            // Written bytes are live data, not speculative.
            chunk.prefetched_unused.remove(sub.offset, sub.len);
            overwritten += pf_before - chunk.prefetched_unused.covered();
            chunk.last_ref = now;
            let added = chunk.present.covered() - before;
            self.charge(&mut chunk, owner, added);
            self.chunks.insert((file, idx), chunk);
            homes.push((home, sub.len));
        }
        self.ledger_remove(overwritten, |l| &mut l.overwritten);
        dualpar_sim::strict_assert!(self.ledger.balanced(), "ledger after put_write");
        self.stats.bytes_written += region.len;
        self.stats.dirty_hwm = self.stats.dirty_hwm.max(self.dirty_now);
        for &(home, _) in &homes {
            self.enforce_node_capacity(home);
        }
        homes
    }

    /// Bytes currently cached on `node`.
    pub fn node_bytes(&self, node: NodeId) -> u64 {
        self.chunks
            .iter()
            .filter(|(&(f, idx), _)| self.home_of(f, idx) == node)
            .map(|(_, c)| c.present.covered())
            .sum()
    }

    /// Evict the node's least-recently-used *clean* chunks until it fits
    /// within `node_capacity`. Dirty chunks are pinned until write-back.
    fn enforce_node_capacity(&mut self, node: NodeId) {
        if self.cfg.node_capacity == u64::MAX {
            return;
        }
        let mut used = self.node_bytes(node);
        if used <= self.cfg.node_capacity {
            return;
        }
        // Collect this node's clean chunks oldest-first.
        let mut victims: Vec<((FileId, u64), SimTime, u64)> = self
            .chunks
            .iter()
            .filter(|(&(f, idx), c)| self.home_of(f, idx) == node && c.dirty.is_empty())
            .map(|(&k, c)| (k, c.last_ref, c.present.covered()))
            .collect();
        victims.sort_by_key(|&(k, t, _)| (t, k));
        for (key, _, bytes) in victims {
            if used <= self.cfg.node_capacity {
                break;
            }
            if let Some(chunk) = self.chunks.remove(&key) {
                self.ledger_remove(chunk.prefetched_unused.covered(), |l| &mut l.evicted);
                for (ow, charged) in chunk.charges {
                    if let Some(u) = self.usage.get_mut(&ow) {
                        *u = u.saturating_sub(charged);
                    }
                }
                self.stats.bytes_evicted += bytes;
                used = used.saturating_sub(bytes);
            }
        }
        dualpar_sim::strict_assert_eq!(
            self.ledger.unused_now,
            self.scan_unused(),
            "ledger unused_now after enforce_node_capacity"
        );
    }

    /// Probe (and consume) a read. Full hits mark the bytes as used and
    /// refresh the time tag.
    pub fn read(&mut self, file: FileId, region: FileRegion, now: SimTime) -> ReadResult {
        self.stats.read_probes += 1;
        let mut found = 0u64;
        let mut consumed = 0u64;
        let mut homes = Vec::new();
        for (idx, sub) in self.per_chunk(region) {
            if let Some(chunk) = self.chunks.get_mut(&(file, idx)) {
                let n = chunk.present.intersect_len(sub.offset, sub.len);
                if n > 0 {
                    found += n;
                    let pf_before = chunk.prefetched_unused.covered();
                    chunk.prefetched_unused.remove(sub.offset, sub.len);
                    consumed += pf_before - chunk.prefetched_unused.covered();
                    chunk.last_ref = now;
                    homes.push((self.home_of(file, idx), n));
                }
            }
        }
        self.ledger_remove(consumed, |l| &mut l.consumed);
        let hit = found == region.len && region.len > 0;
        if hit {
            self.stats.read_hits += 1;
        }
        ReadResult {
            hit,
            bytes_found: found,
            homes,
        }
    }

    /// Non-consuming probe: is every byte of `region` present? Does not
    /// touch reference times or prefetch-usage markers.
    pub fn contains(&self, file: FileId, region: FileRegion) -> bool {
        if region.len == 0 {
            return true;
        }
        self.per_chunk(region).iter().all(|(idx, sub)| {
            self.chunks
                .get(&(file, *idx))
                .is_some_and(|c| c.present.contains_range(sub.offset, sub.len))
        })
    }

    /// Evict every *clean* chunk of the given files regardless of idle
    /// time, releasing the owners' quota. Used by DualPar at phase
    /// boundaries: the previous phase's consumed prefetch data and
    /// written-back data must stop counting against the per-process quota.
    /// Returns bytes evicted. Dirty chunks are kept.
    pub fn evict_clean_for(&mut self, files: &FxHashSet<FileId>) -> u64 {
        let mut evicted = 0u64;
        let mut pf_evicted = 0u64;
        let mut freed: Vec<(OwnerId, u64)> = Vec::new();
        self.chunks.retain(|&(f, _), chunk| {
            if !files.contains(&f) || !chunk.dirty.is_empty() {
                return true;
            }
            evicted += chunk.present.covered();
            pf_evicted += chunk.prefetched_unused.covered();
            freed.extend(chunk.charges.iter().copied());
            false
        });
        self.ledger_remove(pf_evicted, |l| &mut l.evicted);
        for (ow, bytes) in freed {
            if let Some(u) = self.usage.get_mut(&ow) {
                *u = u.saturating_sub(bytes);
            }
        }
        self.stats.bytes_evicted += evicted;
        evicted
    }

    /// Collect all dirty ranges for write-back, clearing dirty state but
    /// keeping the data cached. Output is sorted by (file, offset) — the
    /// order the CRM wants anyway.
    pub fn drain_dirty(&mut self) -> Vec<(FileId, FileRegion)> {
        let mut out = Vec::new();
        for (&(file, _), chunk) in self.chunks.iter_mut() {
            for (s, e) in chunk.dirty.iter() {
                out.push((file, FileRegion::new(s, e - s)));
            }
            chunk.dirty.clear();
        }
        self.dirty_now = 0;
        out.sort_by_key(|&(f, r)| (f, r.offset));
        // Merge adjacent regions of the same file (chunk boundaries split
        // logically contiguous writes).
        let mut merged: Vec<(FileId, FileRegion)> = Vec::with_capacity(out.len());
        for (f, r) in out {
            if let Some(last) = merged.last_mut() {
                if last.0 == f && last.1.end() == r.offset {
                    last.1.len += r.len;
                    continue;
                }
            }
            merged.push((f, r));
        }
        merged
    }

    /// Total dirty bytes currently buffered.
    pub fn dirty_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.dirty_now,
            self.chunks.values().map(|c| c.dirty.covered()).sum::<u64>(),
            "incremental dirty counter out of sync"
        );
        self.dirty_now
    }

    /// Bytes charged to `owner`.
    pub fn usage(&self, owner: OwnerId) -> u64 {
        self.usage.get(&owner).copied().unwrap_or(0)
    }

    /// Total bytes cached across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.values().map(|c| c.present.covered()).sum()
    }

    /// End the prefetch epoch for `owner`: return the mis-prefetch ratio
    /// (unused prefetched bytes / prefetched bytes) and reset the epoch.
    /// Returns `None` if nothing was prefetched this epoch.
    pub fn end_prefetch_epoch(&mut self, owner: OwnerId) -> Option<f64> {
        let total = self.epoch_prefetched.remove(&owner)?;
        if total == 0 {
            return None;
        }
        let mut unused = 0u64;
        for chunk in self.chunks.values_mut() {
            if chunk.charged_owners().any(|o| o == owner) {
                unused += chunk.prefetched_unused.covered();
                chunk.prefetched_unused.clear();
            }
        }
        self.ledger_remove(unused, |l| &mut l.misprefetched);
        dualpar_sim::strict_assert_eq!(
            self.ledger.unused_now,
            self.scan_unused(),
            "ledger unused_now after end_prefetch_epoch"
        );
        Some((unused.min(total)) as f64 / total as f64)
    }

    /// Evict chunks idle since before `now - ttl`. Dirty chunks are never
    /// evicted (they must be written back first). Returns bytes evicted.
    pub fn evict_idle(&mut self, now: SimTime) -> u64 {
        let ttl = self.cfg.idle_ttl;
        let mut evicted = 0u64;
        let mut pf_evicted = 0u64;
        let mut freed: Vec<(OwnerId, u64)> = Vec::new();
        self.chunks.retain(|_, chunk| {
            let idle = now.since(chunk.last_ref) >= ttl;
            if idle && chunk.dirty.is_empty() {
                evicted += chunk.present.covered();
                pf_evicted += chunk.prefetched_unused.covered();
                freed.extend(chunk.charges.iter().copied());
                false
            } else {
                true
            }
        });
        self.ledger_remove(pf_evicted, |l| &mut l.evicted);
        for (ow, bytes) in freed {
            if let Some(u) = self.usage.get_mut(&ow) {
                *u = u.saturating_sub(bytes);
            }
        }
        self.stats.bytes_evicted += evicted;
        evicted
    }

    /// Drop everything cached for `file` (used on file close / test reset).
    ///
    /// # Panics
    /// Panics if the file still has dirty data — losing buffered writes is
    /// always a bug in the caller's phase logic.
    pub fn invalidate(&mut self, file: FileId) {
        let mut freed: Vec<(OwnerId, u64)> = Vec::new();
        let mut pf_evicted = 0u64;
        self.chunks.retain(|&(f, _), chunk| {
            if f != file {
                return true;
            }
            assert!(
                chunk.dirty.is_empty(),
                "invalidating {file:?} with dirty data"
            );
            pf_evicted += chunk.prefetched_unused.covered();
            freed.extend(chunk.charges.iter().copied());
            false
        });
        self.ledger_remove(pf_evicted, |l| &mut l.evicted);
        for (ow, bytes) in freed {
            if let Some(u) = self.usage.get_mut(&ow) {
                *u = u.saturating_sub(bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNK: u64 = 64 * 1024;

    fn cache(nodes: u32) -> GlobalCache {
        GlobalCache::new(CacheConfig {
            chunk_size: CHUNK,
            num_nodes: nodes,
            idle_ttl: SimDuration::from_secs(10),
            node_capacity: u64::MAX,
        })
    }

    fn f(n: u32) -> FileId {
        FileId(n)
    }

    #[test]
    fn miss_then_prefetch_then_hit() {
        let mut c = cache(2);
        let region = FileRegion::new(1000, 5000);
        assert!(!c.read(f(1), region, SimTime::ZERO).hit);
        c.put_prefetch(OwnerId(1), f(1), region, SimTime::ZERO);
        let r = c.read(f(1), region, SimTime::from_millis(1));
        assert!(r.hit);
        assert_eq!(r.bytes_found, 5000);
    }

    #[test]
    fn partial_presence_is_a_miss() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(1), f(1), FileRegion::new(0, 1000), SimTime::ZERO);
        let r = c.read(f(1), FileRegion::new(0, 2000), SimTime::ZERO);
        assert!(!r.hit);
        assert_eq!(r.bytes_found, 1000);
    }

    #[test]
    fn cross_chunk_read_reports_homes_round_robin() {
        let mut c = cache(3);
        let region = FileRegion::new(0, 3 * CHUNK);
        c.put_prefetch(OwnerId(1), f(1), region, SimTime::ZERO);
        let r = c.read(f(1), region, SimTime::ZERO);
        assert!(r.hit);
        let nodes: Vec<u32> = r.homes.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 2]);
        assert!(r.homes.iter().all(|&(_, b)| b == CHUNK));
    }

    #[test]
    fn writes_are_dirty_until_drained() {
        let mut c = cache(1);
        c.put_write(OwnerId(1), f(1), FileRegion::new(100, 50), SimTime::ZERO);
        c.put_write(OwnerId(1), f(1), FileRegion::new(150, 50), SimTime::ZERO);
        assert_eq!(c.dirty_bytes(), 100);
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![(f(1), FileRegion::new(100, 100))]);
        assert_eq!(c.dirty_bytes(), 0);
        // Data still cached after write-back.
        assert!(c.read(f(1), FileRegion::new(100, 100), SimTime::ZERO).hit);
    }

    #[test]
    fn drain_merges_across_chunk_boundary() {
        let mut c = cache(4);
        let region = FileRegion::new(CHUNK - 100, 200); // straddles chunks 0/1
        c.put_write(OwnerId(1), f(1), region, SimTime::ZERO);
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![(f(1), region)]);
    }

    #[test]
    fn quota_usage_tracks_inserted_bytes() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(7), f(1), FileRegion::new(0, 1000), SimTime::ZERO);
        assert_eq!(c.usage(OwnerId(7)), 1000);
        // Overlapping insert charges only new bytes.
        c.put_prefetch(OwnerId(7), f(1), FileRegion::new(500, 1000), SimTime::ZERO);
        assert_eq!(c.usage(OwnerId(7)), 1500);
    }

    #[test]
    fn misprefetch_ratio_counts_unused() {
        let mut c = cache(1);
        let ow = OwnerId(1);
        c.put_prefetch(ow, f(1), FileRegion::new(0, 1000), SimTime::ZERO);
        c.put_prefetch(ow, f(1), FileRegion::new(10_000, 1000), SimTime::ZERO);
        // Consume only the first region.
        assert!(c.read(f(1), FileRegion::new(0, 1000), SimTime::ZERO).hit);
        let ratio = c.end_prefetch_epoch(ow).unwrap();
        assert!((ratio - 0.5).abs() < 1e-9, "ratio {ratio}");
        // New epoch starts clean.
        assert!(c.end_prefetch_epoch(ow).is_none());
    }

    #[test]
    fn fully_used_prefetch_has_zero_ratio() {
        let mut c = cache(1);
        let ow = OwnerId(1);
        c.put_prefetch(ow, f(1), FileRegion::new(0, 4096), SimTime::ZERO);
        c.read(f(1), FileRegion::new(0, 4096), SimTime::ZERO);
        assert_eq!(c.end_prefetch_epoch(ow), Some(0.0));
    }

    #[test]
    fn idle_eviction_frees_clean_chunks_only() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(1), f(1), FileRegion::new(0, 1000), SimTime::ZERO);
        c.put_write(OwnerId(1), f(2), FileRegion::new(0, 1000), SimTime::ZERO);
        let evicted = c.evict_idle(SimTime::from_secs(60));
        assert_eq!(evicted, 1000); // only the clean chunk
        assert!(!c.read(f(1), FileRegion::new(0, 1000), SimTime::from_secs(60)).hit);
        assert_eq!(c.dirty_bytes(), 1000);
        assert_eq!(c.usage(OwnerId(1)), 1000);
    }

    #[test]
    fn recently_used_chunks_survive_eviction() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(1), f(1), FileRegion::new(0, 100), SimTime::ZERO);
        c.read(f(1), FileRegion::new(0, 100), SimTime::from_secs(55));
        assert_eq!(c.evict_idle(SimTime::from_secs(60)), 0);
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn invalidate_dirty_file_panics() {
        let mut c = cache(1);
        c.put_write(OwnerId(1), f(1), FileRegion::new(0, 10), SimTime::ZERO);
        c.invalidate(f(1));
    }

    #[test]
    fn invalidate_clean_file_frees_usage() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(1), f(1), FileRegion::new(0, 512), SimTime::ZERO);
        c.invalidate(f(1));
        assert_eq!(c.usage(OwnerId(1)), 0);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn node_capacity_evicts_lru_clean() {
        let mut c = GlobalCache::new(CacheConfig {
            chunk_size: CHUNK,
            num_nodes: 1,
            idle_ttl: SimDuration::from_secs(1000),
            node_capacity: 2 * CHUNK,
        });
        // Three full chunks, touched in order: the oldest must go.
        for i in 0..3u64 {
            c.put_prefetch(
                OwnerId(1),
                f(1),
                FileRegion::new(i * CHUNK, CHUNK),
                SimTime::from_secs(i),
            );
        }
        assert!(c.node_bytes(NodeId(0)) <= 2 * CHUNK);
        assert!(!c.read(f(1), FileRegion::new(0, CHUNK), SimTime::from_secs(9)).hit);
        assert!(c.read(f(1), FileRegion::new(2 * CHUNK, CHUNK), SimTime::from_secs(9)).hit);
        assert_eq!(c.usage(OwnerId(1)), 2 * CHUNK);
    }

    #[test]
    fn node_capacity_never_evicts_dirty() {
        let mut c = GlobalCache::new(CacheConfig {
            chunk_size: CHUNK,
            num_nodes: 1,
            idle_ttl: SimDuration::from_secs(1000),
            node_capacity: CHUNK,
        });
        c.put_write(OwnerId(1), f(1), FileRegion::new(0, CHUNK), SimTime::ZERO);
        c.put_write(OwnerId(1), f(1), FileRegion::new(CHUNK, CHUNK), SimTime::from_secs(1));
        // Over capacity, but both chunks are dirty: nothing may be lost.
        assert_eq!(c.dirty_bytes(), 2 * CHUNK);
        assert!(c.node_bytes(NodeId(0)) > CHUNK);
    }

    #[test]
    fn prefetch_ledger_balances_across_all_paths() {
        let mut c = cache(1);
        let ow = OwnerId(1);
        // Insert (overlap must not double-count), consume, overwrite.
        c.put_prefetch(ow, f(1), FileRegion::new(0, 1000), SimTime::ZERO);
        c.put_prefetch(ow, f(1), FileRegion::new(500, 1000), SimTime::ZERO);
        c.read(f(1), FileRegion::new(0, 300), SimTime::ZERO);
        c.put_write(ow, f(1), FileRegion::new(300, 200), SimTime::ZERO);
        let l = c.prefetch_ledger();
        assert_eq!(l.inserted, 1500);
        assert_eq!(l.consumed, 300);
        assert_eq!(l.overwritten, 200);
        assert_eq!(l.unused_now, 1000);
        c.assert_conservation();
        // Epoch end writes off what's left as mis-prefetched.
        c.end_prefetch_epoch(ow);
        let l = c.prefetch_ledger();
        assert_eq!(l.misprefetched, 1000);
        assert_eq!(l.unused_now, 0);
        c.assert_conservation();
        // Eviction of fresh speculative data lands in `evicted`.
        c.put_prefetch(ow, f(2), FileRegion::new(0, 256), SimTime::ZERO);
        c.evict_idle(SimTime::from_secs(60));
        let l = c.prefetch_ledger();
        assert_eq!(l.evicted, 256);
        assert!(l.balanced());
        c.assert_conservation();
    }

    #[test]
    fn dirty_high_water_mark_tracks_peak_backlog() {
        let mut c = cache(1);
        c.put_write(OwnerId(1), f(1), FileRegion::new(0, 300), SimTime::ZERO);
        c.put_write(OwnerId(1), f(1), FileRegion::new(1000, 200), SimTime::ZERO);
        // Overlapping re-write adds no new dirty bytes.
        c.put_write(OwnerId(1), f(1), FileRegion::new(0, 300), SimTime::ZERO);
        assert_eq!(c.dirty_bytes(), 500);
        assert_eq!(c.stats().dirty_hwm, 500);
        c.drain_dirty();
        assert_eq!(c.dirty_bytes(), 0);
        // The mark persists after drain; a smaller later burst can't lower it.
        c.put_write(OwnerId(1), f(1), FileRegion::new(0, 100), SimTime::ZERO);
        assert_eq!(c.stats().dirty_hwm, 500);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache(1);
        c.put_prefetch(OwnerId(1), f(1), FileRegion::new(0, 100), SimTime::ZERO);
        c.read(f(1), FileRegion::new(0, 100), SimTime::ZERO);
        c.read(f(1), FileRegion::new(500, 100), SimTime::ZERO);
        let s = c.stats();
        assert_eq!(s.read_probes, 2);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.bytes_prefetched, 100);
    }
}
