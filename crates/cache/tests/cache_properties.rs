//! Property tests for the global cache: read-your-prefetch, quota
//! consistency, and dirty-data conservation through drain.

use dualpar_cache::{CacheConfig, GlobalCache, OwnerId};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn cache() -> GlobalCache {
    GlobalCache::new(CacheConfig {
        chunk_size: 4096,
        num_nodes: 4,
        idle_ttl: SimDuration::from_secs(10),
        node_capacity: u64::MAX,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Anything prefetched is readable in full (read-your-prefetch).
    #[test]
    fn read_your_prefetch(regions in proptest::collection::vec((0u64..100_000, 1u64..10_000), 1..40)) {
        let mut c = cache();
        for &(off, len) in &regions {
            c.put_prefetch(OwnerId(1), FileId(1), FileRegion::new(off, len), SimTime::ZERO);
        }
        for &(off, len) in &regions {
            let r = c.read(FileId(1), FileRegion::new(off, len), SimTime::ZERO);
            prop_assert!(r.hit, "prefetched region {off}+{len} must hit");
        }
    }

    /// Total usage across owners equals total present bytes, regardless of
    /// the interleaving of prefetches and writes.
    #[test]
    fn usage_matches_present(
        ops in proptest::collection::vec(
            (0u64..4, 0u64..50_000, 1u64..5_000, any::<bool>()), 1..60)
    ) {
        let mut c = cache();
        for &(owner, off, len, is_write) in &ops {
            let region = FileRegion::new(off, len);
            if is_write {
                c.put_write(OwnerId(owner), FileId(1), region, SimTime::ZERO);
            } else {
                c.put_prefetch(OwnerId(owner), FileId(1), region, SimTime::ZERO);
            }
        }
        let total_usage: u64 = (0..4).map(|o| c.usage(OwnerId(o))).sum();
        prop_assert_eq!(total_usage, c.total_bytes());
    }

    /// Dirty bytes drained equal dirty bytes written (no loss, no
    /// duplication), and the drained regions are sorted and disjoint.
    #[test]
    fn drain_conserves_dirty(
        writes in proptest::collection::vec((0u64..100_000, 1u64..8_000), 1..40)
    ) {
        let mut c = cache();
        let mut expect = dualpar_pfs::RangeSet::new();
        for &(off, len) in &writes {
            c.put_write(OwnerId(1), FileId(1), FileRegion::new(off, len), SimTime::ZERO);
            expect.insert(off, len);
        }
        prop_assert_eq!(c.dirty_bytes(), expect.covered());
        let drained = c.drain_dirty();
        let mut got = dualpar_pfs::RangeSet::new();
        let mut last_end = 0u64;
        for (file, r) in &drained {
            prop_assert_eq!(*file, FileId(1));
            prop_assert!(r.offset >= last_end, "drained regions must be sorted/disjoint");
            last_end = r.end();
            got.insert(r.offset, r.len);
        }
        prop_assert_eq!(got, expect);
        prop_assert_eq!(c.dirty_bytes(), 0);
    }

    /// Eviction never removes dirty data and usage never goes negative.
    #[test]
    fn eviction_safe(
        ops in proptest::collection::vec((0u64..50_000, 1u64..4_000, any::<bool>()), 1..40),
        evict_at in 0u64..100,
    ) {
        let mut c = cache();
        for (i, &(off, len, is_write)) in ops.iter().enumerate() {
            let t = SimTime::from_secs(i as u64 / 10);
            if is_write {
                c.put_write(OwnerId(1), FileId(1), FileRegion::new(off, len), t);
            } else {
                c.put_prefetch(OwnerId(1), FileId(1), FileRegion::new(off, len), t);
            }
        }
        let dirty_before = c.dirty_bytes();
        c.evict_idle(SimTime::from_secs(evict_at));
        prop_assert_eq!(c.dirty_bytes(), dirty_before, "eviction must not lose dirty data");
        prop_assert!(c.total_bytes() >= c.dirty_bytes());
    }

    /// Mis-prefetch ratio is always within [0, 1].
    #[test]
    fn misprefetch_ratio_bounded(
        prefetches in proptest::collection::vec((0u64..50_000, 1u64..4_000), 1..20),
        reads in proptest::collection::vec((0u64..50_000, 1u64..4_000), 0..20),
    ) {
        let mut c = cache();
        for &(off, len) in &prefetches {
            c.put_prefetch(OwnerId(1), FileId(1), FileRegion::new(off, len), SimTime::ZERO);
        }
        for &(off, len) in &reads {
            c.read(FileId(1), FileRegion::new(off, len), SimTime::ZERO);
        }
        if let Some(ratio) = c.end_prefetch_epoch(OwnerId(1)) {
            prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
        }
    }
}
