//! Property tests for the request algebra: coverage conservation through
//! sort/merge/coalesce, and collective plans covering exactly what ranks
//! asked for.

use dualpar_mpiio::{
    build_batch, plan_collective, plan_strided, sort_and_merge, CollectiveConfig, SieveConfig,
};
use dualpar_pfs::{FileId, FileRegion, RangeSet};
use proptest::prelude::*;

fn regions() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1_000_000, 1u64..50_000), 1..60)
}

fn to_rangeset(items: &[(u64, u64)]) -> RangeSet {
    let mut s = RangeSet::new();
    for &(o, l) in items {
        s.insert(o, l);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sort_and_merge output covers exactly the union of inputs, sorted and
    /// disjoint.
    #[test]
    fn sort_merge_is_union(items in regions()) {
        let input: Vec<(FileId, FileRegion)> =
            items.iter().map(|&(o, l)| (FileId(1), FileRegion::new(o, l))).collect();
        let out = sort_and_merge(input);
        let expect = to_rangeset(&items);
        let mut got = RangeSet::new();
        let mut last_end = 0u64;
        for (f, r) in &out {
            prop_assert_eq!(*f, FileId(1));
            prop_assert!(r.offset >= last_end || last_end == 0 && r.offset == 0,
                "output not sorted/disjoint");
            prop_assert!(r.len > 0);
            last_end = r.end();
            got.insert(r.offset, r.len);
        }
        prop_assert_eq!(got, expect);
        prop_assert_eq!(out.len(), to_rangeset(&items).num_runs());
    }

    /// build_batch: every requested byte appears in exactly one cover's
    /// useful list; covers are disjoint; hole bytes only appear with a
    /// nonzero hole threshold.
    #[test]
    fn batch_conserves_bytes(items in regions(), max_hole in 0u64..100_000) {
        let input: Vec<(FileId, FileRegion)> =
            items.iter().map(|&(o, l)| (FileId(3), FileRegion::new(o, l))).collect();
        let batch = build_batch(input, max_hole);
        let expect = to_rangeset(&items);
        let mut useful_all = RangeSet::new();
        let mut last_cover_end = None::<u64>;
        for io in &batch {
            if let Some(e) = last_cover_end {
                prop_assert!(io.cover.offset > e, "covers must be disjoint & sorted");
            }
            last_cover_end = Some(io.cover.end());
            let mut last = io.cover.offset;
            for u in &io.useful {
                prop_assert!(u.offset >= last);
                prop_assert!(u.end() <= io.cover.end());
                last = u.end();
                useful_all.insert(u.offset, u.len);
            }
            // Gaps inside a cover never exceed the hole threshold.
            let mut prev_end = io.useful[0].end();
            for u in &io.useful[1..] {
                prop_assert!(u.offset - prev_end <= max_hole);
                prev_end = u.end();
            }
        }
        prop_assert_eq!(useful_all, expect);
    }

    /// Data sieving plans cover all requested bytes and respect the buffer
    /// bound.
    #[test]
    fn sieve_covers_everything(items in regions(), enabled in any::<bool>()) {
        let merged = sort_and_merge(
            items.iter().map(|&(o, l)| (FileId(1), FileRegion::new(o, l))).collect());
        let rs: Vec<FileRegion> = merged.into_iter().map(|(_, r)| r).collect();
        let cfg = SieveConfig { enabled, ..SieveConfig::default() };
        let plan = plan_strided(FileId(1), &rs, &cfg);
        let mut got = RangeSet::new();
        for io in &plan {
            prop_assert!(io.cover.len <= cfg.buffer_bytes.max(io.useful_bytes()));
            for u in &io.useful {
                got.insert(u.offset, u.len);
            }
        }
        prop_assert_eq!(got, to_rangeset(&items));
    }

    /// Collective plans: aggregator useful bytes equal the union of rank
    /// requests; exchange bytes never exceed total requested bytes.
    #[test]
    fn collective_plan_covers_union(
        rank_items in proptest::collection::vec(regions(), 1..8),
        naggs in 1usize..8,
    ) {
        let per_rank: Vec<Vec<FileRegion>> = rank_items
            .iter()
            .map(|items| items.iter().map(|&(o, l)| FileRegion::new(o, l)).collect())
            .collect();
        let plan = plan_collective(FileId(1), &per_rank, &CollectiveConfig {
            num_aggregators: naggs,
            max_hole: 1 << 20,
        }).unwrap();
        let mut expect = RangeSet::new();
        let mut total_requested = 0u64;
        for items in &rank_items {
            for &(o, l) in items {
                expect.insert(o, l);
                total_requested += l;
            }
        }
        let mut got = RangeSet::new();
        for agg in &plan.aggregators {
            for io in &agg.ios {
                for u in &io.useful {
                    got.insert(u.offset, u.len);
                }
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert!(plan.exchange_bytes <= total_requested);
        prop_assert_eq!(plan.useful_bytes, total_requested);
    }
}
