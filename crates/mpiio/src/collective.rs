//! Two-phase collective I/O (ROMIO's generalised collective buffering).
//!
//! In phase one the participating ranks exchange their access information
//! and the *file domain* — the span from the lowest to the highest byte
//! requested in this call — is divided evenly among the aggregator ranks.
//! Each aggregator then performs one large contiguous access covering the
//! requested bytes inside its domain; in phase two the data is shuffled
//! between aggregators and the ranks that actually wanted it.
//!
//! The model captures the two costs that drive Fig. 4:
//! * aggregators issue *large sorted requests* (the benefit), but
//! * every byte not already resident on its requester crosses the network,
//!   and each (rank, aggregator) pair costs a message — so with more
//!   processes over the same per-call data, exchange overhead grows while
//!   per-aggregator request size shrinks.

use crate::access::{coalesce_with_holes, sort_and_merge, CoalescedIo};
use dualpar_pfs::{FileId, FileRegion};
use serde::{Deserialize, Serialize};

/// Work assigned to one aggregator by a collective call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatorIo {
    /// The rank acting as aggregator.
    pub agg_rank: usize,
    /// The coalesced accesses it performs (sorted, within its domain).
    pub ios: Vec<CoalescedIo>,
}

/// The plan for one collective call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectivePlan {
    /// Per-aggregator work assignments.
    pub aggregators: Vec<AggregatorIo>,
    /// Bytes that must move between a requesting rank and a different
    /// aggregator rank in the shuffle phase.
    pub exchange_bytes: u64,
    /// Number of point-to-point messages in the shuffle phase.
    pub exchange_msgs: u64,
    /// Total bytes the ranks asked for.
    pub useful_bytes: u64,
}

/// Configuration of the collective planner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveConfig {
    /// Number of aggregator ranks (ROMIO `cb_nodes`); clamped to nprocs.
    pub num_aggregators: usize,
    /// Maximum hole absorbed inside an aggregator's domain when coalescing
    /// (ROMIO reads the full extent between the first and last requested
    /// byte of its domain; holes beyond this threshold split the access).
    pub max_hole: u64,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            // ROMIO's default is one aggregator per node; experiments in
            // this repo typically run co-located ranks, so default to "all
            // ranks aggregate" and let the cluster config override.
            num_aggregators: usize::MAX,
            max_hole: 4 << 20,
        }
    }
}

/// Plan a collective call given each rank's requested regions.
///
/// `per_rank[r]` lists rank `r`'s regions (any order). All regions refer to
/// `file`. Returns `None` when nobody requested anything.
pub fn plan_collective(
    file: FileId,
    per_rank: &[Vec<FileRegion>],
    cfg: &CollectiveConfig,
) -> Option<CollectivePlan> {
    let nprocs = per_rank.len();
    let naggs = cfg.num_aggregators.clamp(1, nprocs.max(1));
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    let mut useful_bytes = 0u64;
    for regions in per_rank {
        for r in regions.iter().filter(|r| r.len > 0) {
            lo = lo.min(r.offset);
            hi = hi.max(r.end());
            useful_bytes += r.len;
        }
    }
    if useful_bytes == 0 {
        return None;
    }
    let span = hi - lo;
    let domain = span.div_ceil(naggs as u64).max(1);

    // Slice every rank's regions by aggregator domain, tracking which bytes
    // come from which requester for exchange accounting.
    let mut per_agg: Vec<Vec<(FileId, FileRegion)>> = vec![Vec::new(); naggs];
    let mut exchange_bytes = 0u64;
    let mut pair_has_traffic = vec![false; naggs * nprocs];
    for (rank, regions) in per_rank.iter().enumerate() {
        for r in regions.iter().filter(|r| r.len > 0) {
            let mut off = r.offset;
            while off < r.end() {
                let d = ((off - lo) / domain) as usize;
                let d = d.min(naggs - 1);
                let d_end = lo + (d as u64 + 1) * domain;
                let seg_end = r.end().min(d_end);
                let seg = FileRegion::new(off, seg_end - off);
                per_agg[d].push((file, seg));
                // Aggregator rank for domain d: spread over ranks.
                let agg_rank = d * nprocs / naggs;
                if agg_rank != rank {
                    exchange_bytes += seg.len;
                    pair_has_traffic[d * nprocs + rank] = true;
                }
                off = seg_end;
            }
        }
    }
    let exchange_msgs = pair_has_traffic.iter().filter(|&&b| b).count() as u64;

    let mut aggregators = Vec::new();
    for (d, items) in per_agg.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let merged = sort_and_merge(items);
        let regions: Vec<FileRegion> = merged.into_iter().map(|(_, r)| r).collect();
        let ios = coalesce_with_holes(file, &regions, cfg.max_hole);
        aggregators.push(AggregatorIo {
            agg_rank: d * nprocs / naggs,
            ios,
        });
    }
    Some(CollectivePlan {
        aggregators,
        exchange_bytes,
        exchange_msgs,
        useful_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(offset: u64, len: u64) -> FileRegion {
        FileRegion::new(offset, len)
    }

    fn cfg(naggs: usize) -> CollectiveConfig {
        CollectiveConfig {
            num_aggregators: naggs,
            max_hole: 4 << 20,
        }
    }

    #[test]
    fn interleaved_ranks_fuse_into_contiguous_aggregate() {
        // 4 ranks, rank i requests bytes [i*1K + 4K*j, +1K) — a perfect
        // interleave covering [0, 16K).
        let per_rank: Vec<Vec<FileRegion>> = (0..4u64)
            .map(|i| (0..4u64).map(|j| r(i * 1024 + j * 4096, 1024)).collect())
            .collect();
        let plan = plan_collective(FileId(1), &per_rank, &cfg(1)).unwrap();
        assert_eq!(plan.aggregators.len(), 1);
        let ios = &plan.aggregators[0].ios;
        assert_eq!(ios.len(), 1);
        assert_eq!(ios[0].cover, r(0, 16 * 1024));
        assert_eq!(ios[0].hole_bytes(), 0);
        assert_eq!(plan.useful_bytes, 16 * 1024);
        // Aggregator is rank 0; ranks 1-3's bytes are exchanged.
        assert_eq!(plan.exchange_bytes, 12 * 1024);
        assert_eq!(plan.exchange_msgs, 3);
    }

    #[test]
    fn domains_divide_span_among_aggregators() {
        let per_rank: Vec<Vec<FileRegion>> =
            (0..4u64).map(|i| vec![r(i * 1_000_000, 1000)]).collect();
        let plan = plan_collective(FileId(1), &per_rank, &cfg(4)).unwrap();
        assert_eq!(plan.aggregators.len(), 4);
        // Each rank's data is in a distinct quarter of the span, and the
        // aggregator of domain d is rank d — so no exchange at all.
        assert_eq!(plan.exchange_bytes, 0);
        assert_eq!(plan.exchange_msgs, 0);
    }

    #[test]
    fn region_straddling_domain_boundary_is_split() {
        // Span [0, 2000), two domains of 1000 each; one request crosses.
        let per_rank = vec![vec![r(0, 10)], vec![r(900, 200)], vec![r(1990, 10)]];
        let plan = plan_collective(FileId(1), &per_rank, &cfg(2)).unwrap();
        let total: u64 = plan
            .aggregators
            .iter()
            .flat_map(|a| &a.ios)
            .map(|io| io.useful_bytes())
            .sum();
        assert_eq!(total, 220);
        // Rank 1's region appears in both domains.
        assert!(plan.aggregators.len() == 2);
    }

    #[test]
    fn empty_call_returns_none() {
        assert!(plan_collective(FileId(1), &[vec![], vec![]], &cfg(2)).is_none());
        assert!(plan_collective(FileId(1), &[vec![r(5, 0)]], &cfg(1)).is_none());
    }

    #[test]
    fn more_procs_same_data_means_more_exchange_messages() {
        // The Fig. 4 effect: fix the call's data domain at 64 KB, vary the
        // number of processes sharing it.
        let msgs = |nprocs: u64| {
            // Interleaved (BTIO-like): rank i holds every nprocs-th element,
            // so each rank's data is scattered across all domains.
            let elem = 64u64;
            let elems_per_rank = 65536 / elem / nprocs;
            let per_rank: Vec<Vec<FileRegion>> = (0..nprocs)
                .map(|i| {
                    (0..elems_per_rank)
                        .map(|j| r((j * nprocs + i) * elem, elem))
                        .collect()
                })
                .collect();
            let plan =
                plan_collective(FileId(1), &per_rank, &cfg(usize::MAX)).unwrap();
            plan.exchange_msgs
        };
        assert!(msgs(64) > msgs(16));
        assert!(msgs(256) > msgs(64));
    }

    #[test]
    fn overlapping_requests_counted_once_in_ios() {
        let per_rank = vec![vec![r(0, 100)], vec![r(50, 100)]];
        let plan = plan_collective(FileId(1), &per_rank, &cfg(1)).unwrap();
        let io = &plan.aggregators[0].ios[0];
        assert_eq!(io.cover, r(0, 150));
        assert_eq!(io.useful_bytes(), 150);
        // useful_bytes counts what ranks asked for (with double counting —
        // both ranks receive their copy).
        assert_eq!(plan.useful_bytes, 200);
    }
}
