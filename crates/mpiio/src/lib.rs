//! # dualpar-mpiio
//!
//! The MPI-IO layer of the reproduction: derived datatypes, the
//! process-script execution model, request algebra (sort/merge/coalesce/
//! hole-fill/list-I/O), the two-phase collective-I/O planner, and data
//! sieving. These are the mechanisms the paper instruments (ROMIO's ADIO
//! functions) and compares against (collective I/O).

pub mod access;
pub mod collective;
pub mod datatype;
pub mod ops;
pub mod sieve;

pub use access::{avg_cover_bytes, build_batch, coalesce_with_holes, pack_list_io, sort_and_merge, CoalescedIo};
pub use collective::{plan_collective, AggregatorIo, CollectiveConfig, CollectivePlan};
pub use datatype::Datatype;
pub use ops::{IoCall, IoKind, Op, ProcessScript, ProgramScript};
pub use sieve::{plan_strided, SieveConfig};
