//! The process-script model: what an MPI process *does*.
//!
//! A process is a sequence of compute bursts, I/O calls, and barriers. This
//! is the level at which DualPar's ghost processes replay execution: a ghost
//! walks the same script ahead of the blocked main process, *recording* the
//! I/O it encounters instead of issuing it.
//!
//! Data-dependent I/O (Table III) is modelled by attaching to an op the
//! regions a ghost would *predict*: for ordinary I/O prediction is perfect
//! (pre-execution re-runs the real computation), for dependent I/O the
//! prediction is wrong and the prefetched data goes unused.

use crate::datatype::Datatype;
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::SimDuration;
use serde::{Deserialize, Serialize};

pub use dualpar_disk::IoKind;

/// One I/O call as issued by the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCall {
    /// Read or write.
    pub kind: IoKind,
    /// Target file.
    pub file: FileId,
    /// The regions actually accessed, ascending by offset.
    pub regions: Vec<FileRegion>,
    /// Whether this call is a collective MPI-IO call (all ranks must arrive
    /// before any proceeds).
    pub collective: bool,
    /// For data-dependent accesses: what a ghost pre-execution would fetch
    /// instead (it cannot know the true addresses because the data they
    /// depend on has not been read yet). `None` means prediction is exact.
    pub predicted: Option<Vec<FileRegion>>,
}

impl IoCall {
    /// An independent read of `regions`.
    pub fn read(file: FileId, regions: Vec<FileRegion>) -> Self {
        IoCall {
            kind: IoKind::Read,
            file,
            regions,
            collective: false,
            predicted: None,
        }
    }

    /// An independent write of `regions`.
    pub fn write(file: FileId, regions: Vec<FileRegion>) -> Self {
        IoCall {
            kind: IoKind::Write,
            file,
            regions,
            collective: false,
            predicted: None,
        }
    }

    /// A call whose regions come from one datatype instance at `base`.
    pub fn from_datatype(kind: IoKind, file: FileId, dt: &Datatype, base: u64) -> Self {
        IoCall {
            kind,
            file,
            regions: dt.regions_at(base),
            collective: false,
            predicted: None,
        }
    }

    /// Mark the call collective (all ranks synchronise on it).
    pub fn collective(mut self) -> Self {
        self.collective = true;
        self
    }

    /// Mark as data-dependent with the given (wrong) ghost prediction.
    pub fn with_prediction(mut self, predicted: Vec<FileRegion>) -> Self {
        self.predicted = Some(predicted);
        self
    }

    /// The regions a ghost pre-execution would request.
    pub fn ghost_regions(&self) -> &[FileRegion] {
        self.predicted.as_deref().unwrap_or(&self.regions)
    }

    /// Total bytes the call moves.
    pub fn bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }
}

/// One step of a process script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Pure computation for the given duration.
    Compute(SimDuration),
    /// A (synchronous) I/O call.
    Io(IoCall),
    /// Synchronise with all ranks of the program at this barrier id.
    /// Barrier ids must appear in the same order in every rank's script.
    Barrier(u64),
}

/// The full script of one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessScript {
    /// The steps, executed in order.
    pub ops: Vec<Op>,
}

impl ProcessScript {
    /// Wrap an op list.
    pub fn new(ops: Vec<Op>) -> Self {
        ProcessScript { ops }
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the script has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total compute time in the script.
    pub fn total_compute(&self) -> SimDuration {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Compute(d) => Some(*d),
                _ => None,
            })
            .sum()
    }

    /// Total bytes moved by I/O calls.
    pub fn total_io_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Io(c) => Some(c.bytes()),
                _ => None,
            })
            .sum()
    }

    /// Number of I/O calls in the script.
    pub fn num_io_calls(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Io(_))).count()
    }
}

/// A multi-rank program: one script per rank plus a label.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramScript {
    /// Program label used in reports.
    pub name: String,
    /// One script per rank.
    pub ranks: Vec<ProcessScript>,
}

impl ProgramScript {
    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.ranks.len()
    }

    /// Sanity check: all ranks see the same barrier sequence.
    pub fn barriers_consistent(&self) -> bool {
        let seq = |s: &ProcessScript| -> Vec<u64> {
            s.ops
                .iter()
                .filter_map(|o| match o {
                    Op::Barrier(id) => Some(*id),
                    _ => None,
                })
                .collect()
        };
        let Some(first) = self.ranks.first() else {
            return true;
        };
        let reference = seq(first);
        self.ranks.iter().all(|r| seq(r) == reference)
    }

    /// Total bytes moved by all ranks.
    pub fn total_io_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.total_io_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_regions_default_to_actual() {
        let call = IoCall::read(FileId(1), vec![FileRegion::new(0, 100)]);
        assert_eq!(call.ghost_regions(), &[FileRegion::new(0, 100)]);
    }

    #[test]
    fn ghost_regions_use_prediction_when_dependent() {
        let call = IoCall::read(FileId(1), vec![FileRegion::new(0, 100)])
            .with_prediction(vec![FileRegion::new(5000, 100)]);
        assert_eq!(call.ghost_regions(), &[FileRegion::new(5000, 100)]);
        assert_eq!(call.regions, vec![FileRegion::new(0, 100)]);
    }

    #[test]
    fn script_accounting() {
        let s = ProcessScript::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::Io(IoCall::read(FileId(1), vec![FileRegion::new(0, 1000)])),
            Op::Barrier(0),
            Op::Compute(SimDuration::from_millis(3)),
            Op::Io(IoCall::write(FileId(1), vec![FileRegion::new(0, 500)])),
        ]);
        assert_eq!(s.total_compute(), SimDuration::from_millis(8));
        assert_eq!(s.total_io_bytes(), 1500);
        assert_eq!(s.num_io_calls(), 2);
    }

    #[test]
    fn barrier_consistency_check() {
        let a = ProcessScript::new(vec![Op::Barrier(0), Op::Barrier(1)]);
        let b = ProcessScript::new(vec![
            Op::Compute(SimDuration::from_millis(1)),
            Op::Barrier(0),
            Op::Barrier(1),
        ]);
        let good = ProgramScript {
            name: "p".into(),
            ranks: vec![a.clone(), b],
        };
        assert!(good.barriers_consistent());
        let bad = ProgramScript {
            name: "p".into(),
            ranks: vec![a, ProcessScript::new(vec![Op::Barrier(1)])],
        };
        assert!(!bad.barriers_consistent());
    }
}
