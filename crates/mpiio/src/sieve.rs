//! Data sieving (Thakur et al., "Data Sieving and Collective I/O in
//! ROMIO"): an *independent* strided access can be served by reading the
//! single contiguous extent from its first to its last byte and copying out
//! the pieces, trading wasted transfer for far fewer requests.
//!
//! The paper's "vanilla MPI-IO" baseline issues each noncontiguous segment
//! as its own request (that is what makes BTIO's 8-byte accesses so
//! pathological), so sieving defaults to off; it is exposed for the
//! `ablation_crm` bench and for completeness of the ROMIO model.

use crate::access::CoalescedIo;
use dualpar_pfs::{FileId, FileRegion};
use serde::{Deserialize, Serialize};

/// Data-sieving policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SieveConfig {
    /// Apply sieving at all.
    pub enabled: bool,
    /// Maximum extent read at once (ROMIO `ind_rd_buffer_size`, 4 MB
    /// default).
    pub buffer_bytes: u64,
    /// Do not sieve unless the useful fraction of the extent is at least
    /// this much (pure overhead guard; ROMIO always sieves reads, but a
    /// threshold keeps the model honest for pathological strides).
    pub min_useful_fraction: f64,
}

impl Default for SieveConfig {
    fn default() -> Self {
        SieveConfig {
            enabled: false,
            buffer_bytes: 4 << 20,
            min_useful_fraction: 0.0625, // 1/16th useful is still a win on disk
        }
    }
}

/// Plan the accesses for one independent strided call.
///
/// Input regions must be sorted and disjoint. Returns the accesses to issue:
/// either sieved covering extents or the raw regions.
pub fn plan_strided(file: FileId, regions: &[FileRegion], cfg: &SieveConfig) -> Vec<CoalescedIo> {
    debug_assert!(regions.windows(2).all(|w| w[0].end() <= w[1].offset));
    let passthrough = |regions: &[FileRegion]| -> Vec<CoalescedIo> {
        regions
            .iter()
            .filter(|r| r.len > 0)
            .map(|&r| CoalescedIo {
                file,
                cover: r,
                useful: vec![r],
            })
            .collect()
    };
    if !cfg.enabled || regions.len() < 2 {
        return passthrough(regions);
    }
    // Greedily grow sieve windows bounded by buffer_bytes.
    let mut out = Vec::new();
    let mut window: Vec<FileRegion> = Vec::new();
    let flush = |window: &mut Vec<FileRegion>, out: &mut Vec<CoalescedIo>| {
        if window.is_empty() {
            return;
        }
        let last_end = window.last().expect("window checked non-empty").end();
        let cover = FileRegion::new(window[0].offset, last_end - window[0].offset);
        let useful: u64 = window.iter().map(|r| r.len).sum();
        if window.len() >= 2 && (useful as f64) >= cfg.min_useful_fraction * cover.len as f64 {
            out.push(CoalescedIo {
                file,
                cover,
                useful: std::mem::take(window),
            });
        } else {
            for r in window.drain(..) {
                out.push(CoalescedIo {
                    file,
                    cover: r,
                    useful: vec![r],
                });
            }
        }
    };
    for &r in regions.iter().filter(|r| r.len > 0) {
        let would_span = match window.first() {
            Some(first) => r.end() - first.offset,
            None => r.len,
        };
        if !window.is_empty() && would_span > cfg.buffer_bytes {
            flush(&mut window, &mut out);
        }
        window.push(r);
    }
    flush(&mut window, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(o: u64, l: u64) -> FileRegion {
        FileRegion::new(o, l)
    }

    fn on() -> SieveConfig {
        SieveConfig {
            enabled: true,
            ..SieveConfig::default()
        }
    }

    #[test]
    fn disabled_passes_regions_through() {
        let regions = vec![r(0, 8), r(1000, 8), r(2000, 8)];
        let out = plan_strided(FileId(1), &regions, &SieveConfig::default());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|io| io.hole_bytes() == 0));
    }

    #[test]
    fn enabled_sieves_dense_stride() {
        // 16 bytes every 64: dense enough to sieve.
        let regions: Vec<FileRegion> = (0..100).map(|i| r(i * 64, 16)).collect();
        let out = plan_strided(FileId(1), &regions, &on());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cover, r(0, 99 * 64 + 16));
        assert_eq!(out[0].useful_bytes(), 1600);
    }

    #[test]
    fn sparse_stride_not_sieved() {
        // 8 bytes every 1 MB: 1/131072 useful — worse than the threshold.
        let regions: Vec<FileRegion> = (0..4).map(|i| r(i << 20, 8)).collect();
        let out = plan_strided(FileId(1), &regions, &on());
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|io| io.hole_bytes() == 0));
    }

    #[test]
    fn buffer_bound_splits_windows() {
        let cfg = SieveConfig {
            enabled: true,
            buffer_bytes: 1024,
            min_useful_fraction: 0.0,
        };
        let regions: Vec<FileRegion> = (0..10).map(|i| r(i * 512, 256)).collect();
        let out = plan_strided(FileId(1), &regions, &cfg);
        assert!(out.len() > 1);
        assert!(out.iter().all(|io| io.cover.len <= 1024));
        let useful: u64 = out.iter().map(|io| io.useful_bytes()).sum();
        assert_eq!(useful, 2560);
    }

    #[test]
    fn single_region_never_sieved() {
        let out = plan_strided(FileId(1), &[r(0, 100)], &on());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].hole_bytes(), 0);
    }
}
