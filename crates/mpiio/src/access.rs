//! Request algebra: sorting, merging, hole-filling coalescing, and list-I/O
//! packing. This is the machinery CRM applies to the requests recorded by
//! pre-execution (§IV-D): requests from different processes are sorted,
//! adjacent ones merged, small holes absorbed ("for reads the data in the
//! holes are added to the requests; for writes the holes are filled by
//! additional reads"), and small survivors packed with list I/O in ascending
//! offset order.

use dualpar_pfs::{FileId, FileRegion};
use serde::{Deserialize, Serialize};

/// A coalesced I/O covering one contiguous file extent, possibly including
/// small holes between the useful regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescedIo {
    /// File the access targets.
    pub file: FileId,
    /// The contiguous extent actually transferred.
    pub cover: FileRegion,
    /// The caller-requested regions inside `cover`, sorted, disjoint.
    pub useful: Vec<FileRegion>,
}

impl CoalescedIo {
    /// Bytes the caller actually asked for.
    pub fn useful_bytes(&self) -> u64 {
        self.useful.iter().map(|r| r.len).sum()
    }

    /// Bytes transferred that nobody asked for (hole filling overhead).
    pub fn hole_bytes(&self) -> u64 {
        self.cover.len - self.useful_bytes()
    }
}

/// Sort `(file, region)` pairs by (file, offset) and merge overlapping or
/// adjacent regions of the same file. The output is the canonical request
/// order CRM issues to the data servers.
pub fn sort_and_merge(mut items: Vec<(FileId, FileRegion)>) -> Vec<(FileId, FileRegion)> {
    items.retain(|(_, r)| r.len > 0);
    items.sort_by_key(|&(f, r)| (f, r.offset, r.len));
    let mut out: Vec<(FileId, FileRegion)> = Vec::with_capacity(items.len());
    for (f, r) in items {
        if let Some((lf, lr)) = out.last_mut() {
            if *lf == f && r.offset <= lr.end() {
                let new_end = lr.end().max(r.end());
                lr.len = new_end - lr.offset;
                continue;
            }
        }
        out.push((f, r));
    }
    out
}

/// Coalesce sorted, disjoint regions of a single file into covering extents,
/// absorbing holes up to `max_hole` bytes. Returns covers in ascending
/// offset order.
///
/// # Panics
/// Debug-asserts that input is sorted and disjoint (use [`sort_and_merge`]
/// first).
pub fn coalesce_with_holes(
    file: FileId,
    regions: &[FileRegion],
    max_hole: u64,
) -> Vec<CoalescedIo> {
    debug_assert!(
        regions.windows(2).all(|w| w[0].end() <= w[1].offset),
        "coalesce input must be sorted and disjoint"
    );
    let mut out = Vec::new();
    let mut iter = regions.iter().filter(|r| r.len > 0).copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut cover = first;
    let mut useful = vec![first];
    for r in iter {
        let gap = r.offset - cover.end();
        if gap <= max_hole {
            cover.len = r.end() - cover.offset;
            useful.push(r);
        } else {
            out.push(CoalescedIo {
                file,
                cover,
                useful: std::mem::take(&mut useful),
            });
            cover = r;
            useful.push(r);
        }
    }
    out.push(CoalescedIo {
        file,
        cover,
        useful,
    });
    out
}

/// Full CRM pipeline over a mixed multi-file request batch: sort, merge,
/// then coalesce per file with the given hole threshold.
pub fn build_batch(
    items: Vec<(FileId, FileRegion)>,
    max_hole: u64,
) -> Vec<CoalescedIo> {
    let merged = sort_and_merge(items);
    let mut out = Vec::new();
    let mut i = 0;
    while i < merged.len() {
        let file = merged[i].0;
        let j = merged[i..]
            .iter()
            .position(|&(f, _)| f != file)
            .map_or(merged.len(), |p| i + p);
        let regions: Vec<FileRegion> = merged[i..j].iter().map(|&(_, r)| r).collect();
        out.extend(coalesce_with_holes(file, &regions, max_hole));
        i = j;
    }
    out
}

/// List-I/O packing (§IV-D, citing Ching et al.): group up to
/// `max_per_pack` small requests into one request message, in ascending
/// offset order. Returns the packs; the network layer charges one message
/// per pack rather than one per region.
pub fn pack_list_io(ios: &[CoalescedIo], max_per_pack: usize) -> Vec<Vec<CoalescedIo>> {
    assert!(max_per_pack > 0);
    ios.chunks(max_per_pack).map(|c| c.to_vec()).collect()
}

/// Average size (bytes) of the covers in a batch — the "average request
/// size" statistic the paper reports (128 KB for Strategy 3 vs 12 KB for
/// Strategy 2 in §II).
pub fn avg_cover_bytes(ios: &[CoalescedIo]) -> f64 {
    if ios.is_empty() {
        return 0.0;
    }
    ios.iter().map(|io| io.cover.len as f64).sum::<f64>() / ios.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(offset: u64, len: u64) -> FileRegion {
        FileRegion::new(offset, len)
    }

    #[test]
    fn sort_and_merge_orders_and_fuses() {
        let items = vec![
            (FileId(2), r(0, 10)),
            (FileId(1), r(100, 50)),
            (FileId(1), r(0, 50)),
            (FileId(1), r(50, 50)), // adjacent to previous: merge
        ];
        let out = sort_and_merge(items);
        assert_eq!(
            out,
            vec![(FileId(1), r(0, 150)), (FileId(2), r(0, 10))]
        );
    }

    #[test]
    fn sort_and_merge_handles_overlap_and_zero_len() {
        let items = vec![
            (FileId(1), r(0, 100)),
            (FileId(1), r(50, 100)), // overlapping
            (FileId(1), r(200, 0)),  // dropped
        ];
        assert_eq!(sort_and_merge(items), vec![(FileId(1), r(0, 150))]);
    }

    #[test]
    fn coalesce_absorbs_small_holes_only() {
        let regions = vec![r(0, 10), r(15, 10), r(1000, 10)];
        let out = coalesce_with_holes(FileId(1), &regions, 8);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].cover, r(0, 25));
        assert_eq!(out[0].useful_bytes(), 20);
        assert_eq!(out[0].hole_bytes(), 5);
        assert_eq!(out[1].cover, r(1000, 10));
        assert_eq!(out[1].hole_bytes(), 0);
    }

    #[test]
    fn coalesce_zero_hole_threshold_merges_only_adjacent() {
        let regions = vec![r(0, 10), r(10, 10), r(21, 10)];
        let out = coalesce_with_holes(FileId(1), &regions, 0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].cover, r(0, 20));
    }

    #[test]
    fn build_batch_end_to_end() {
        // Interleaved requests from 4 "processes" over two files.
        let mut items = Vec::new();
        for rank in 0..4u64 {
            for call in 0..4u64 {
                items.push((
                    FileId(1),
                    r((call * 4 + rank) * 1024, 1024), // perfectly interleaved
                ));
            }
            items.push((FileId(2), r(rank * 1_000_000, 1024)));
        }
        let batch = build_batch(items, 4096);
        // File 1's 16 interleaved 1 KB requests fuse into one 16 KB cover.
        let f1: Vec<_> = batch.iter().filter(|b| b.file == FileId(1)).collect();
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].cover, r(0, 16 * 1024));
        assert_eq!(f1[0].hole_bytes(), 0);
        // File 2's far-apart requests stay separate.
        let f2: Vec<_> = batch.iter().filter(|b| b.file == FileId(2)).collect();
        assert_eq!(f2.len(), 4);
    }

    #[test]
    fn batch_output_is_sorted_within_file() {
        let items = vec![
            (FileId(1), r(5_000_000, 10)),
            (FileId(1), r(0, 10)),
            (FileId(1), r(2_000_000, 10)),
        ];
        let batch = build_batch(items, 0);
        let offsets: Vec<u64> = batch.iter().map(|b| b.cover.offset).collect();
        assert_eq!(offsets, vec![0, 2_000_000, 5_000_000]);
    }

    #[test]
    fn pack_list_io_groups() {
        let ios: Vec<CoalescedIo> = (0..7)
            .map(|i| CoalescedIo {
                file: FileId(1),
                cover: r(i * 100, 10),
                useful: vec![r(i * 100, 10)],
            })
            .collect();
        let packs = pack_list_io(&ios, 3);
        assert_eq!(packs.len(), 3);
        assert_eq!(packs[0].len(), 3);
        assert_eq!(packs[2].len(), 1);
    }

    #[test]
    fn avg_cover_matches_paper_statistic() {
        let ios = vec![
            CoalescedIo {
                file: FileId(1),
                cover: r(0, 128 * 1024),
                useful: vec![r(0, 128 * 1024)],
            },
            CoalescedIo {
                file: FileId(1),
                cover: r(1 << 20, 128 * 1024),
                useful: vec![r(1 << 20, 128 * 1024)],
            },
        ];
        assert_eq!(avg_cover_bytes(&ios), 128.0 * 1024.0);
        assert_eq!(avg_cover_bytes(&[]), 0.0);
    }
}
