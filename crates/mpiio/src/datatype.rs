//! MPI derived datatypes — the subset the paper's benchmarks use.
//!
//! `demo` and `noncontig` build file views from *vector* datatypes
//! (`count` blocks of `blocklen` elements separated by `stride` elements);
//! the rest use contiguous types. A datatype lowers to a list of
//! [`FileRegion`]s relative to a base file offset, which is all the I/O
//! layers below need.

use dualpar_pfs::FileRegion;
use serde::{Deserialize, Serialize};

/// A file-access datatype.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Datatype {
    /// `len` contiguous bytes.
    Contiguous {
        /// Bytes selected.
        len: u64,
    },
    /// MPI_Type_vector: `count` blocks of `block_bytes`, with consecutive
    /// block starts `stride_bytes` apart. `stride_bytes >= block_bytes`.
    Vector {
        /// Number of blocks.
        count: u64,
        /// Bytes per block.
        block_bytes: u64,
        /// Distance between consecutive block starts, in bytes.
        stride_bytes: u64,
    },
    /// Explicit region list (MPI_Type_indexed / hindexed), offsets relative
    /// to the view base.
    Indexed {
        /// `(offset, len)` pairs relative to the view base.
        blocks: Vec<(u64, u64)>,
    },
    /// MPI_Type_create_subarray in two dimensions (row-major): a
    /// `sub_rows × sub_cols` window at `(row_off, col_off)` inside a
    /// global `rows × cols` array of `elem_bytes` elements — the file view
    /// BT-style block-decomposed solvers construct.
    Subarray2 {
        /// Global array rows.
        rows: u64,
        /// Global array columns.
        cols: u64,
        /// Bytes per element.
        elem_bytes: u64,
        /// Window start row.
        row_off: u64,
        /// Window start column.
        col_off: u64,
        /// Window rows.
        sub_rows: u64,
        /// Window columns.
        sub_cols: u64,
    },
}

impl Datatype {
    /// Total bytes of data selected by one instance of the type.
    pub fn extent_data(&self) -> u64 {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count, block_bytes, ..
            } => count * block_bytes,
            Datatype::Indexed { blocks } => blocks.iter().map(|&(_, l)| l).sum(),
            Datatype::Subarray2 {
                elem_bytes,
                sub_rows,
                sub_cols,
                ..
            } => sub_rows * sub_cols * elem_bytes,
        }
    }

    /// Span from the first selected byte to one past the last.
    pub fn extent_span(&self) -> u64 {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count,
                block_bytes,
                stride_bytes,
            } => {
                if *count == 0 {
                    0
                } else {
                    (count - 1) * stride_bytes + block_bytes
                }
            }
            Datatype::Indexed { blocks } => blocks
                .iter()
                .map(|&(o, l)| o + l)
                .max()
                .unwrap_or(0),
            Datatype::Subarray2 {
                cols,
                elem_bytes,
                row_off,
                col_off,
                sub_rows,
                sub_cols,
                ..
            } => {
                if *sub_rows == 0 || *sub_cols == 0 {
                    0
                } else {
                    let first = (row_off * cols + col_off) * elem_bytes;
                    let last_end =
                        ((row_off + sub_rows - 1) * cols + col_off + sub_cols) * elem_bytes;
                    last_end - first
                }
            }
        }
    }

    /// Lower one instance of the type at `base` into file regions,
    /// in ascending offset order.
    pub fn regions_at(&self, base: u64) -> Vec<FileRegion> {
        match self {
            Datatype::Contiguous { len } => {
                if *len == 0 {
                    Vec::new()
                } else {
                    vec![FileRegion::new(base, *len)]
                }
            }
            Datatype::Vector {
                count,
                block_bytes,
                stride_bytes,
            } => {
                debug_assert!(stride_bytes >= block_bytes, "overlapping vector blocks");
                (0..*count)
                    .filter(|_| *block_bytes > 0)
                    .map(|i| FileRegion::new(base + i * stride_bytes, *block_bytes))
                    .collect()
            }
            Datatype::Indexed { blocks } => {
                let mut v: Vec<FileRegion> = blocks
                    .iter()
                    .filter(|&&(_, l)| l > 0)
                    .map(|&(o, l)| FileRegion::new(base + o, l))
                    .collect();
                v.sort_by_key(|r| r.offset);
                v
            }
            Datatype::Subarray2 {
                rows,
                cols,
                elem_bytes,
                row_off,
                col_off,
                sub_rows,
                sub_cols,
            } => {
                debug_assert!(row_off + sub_rows <= *rows, "subarray rows out of bounds");
                debug_assert!(col_off + sub_cols <= *cols, "subarray cols out of bounds");
                if *sub_cols == 0 || *elem_bytes == 0 {
                    return Vec::new();
                }
                (0..*sub_rows)
                    .map(|r| {
                        FileRegion::new(
                            base + ((row_off + r) * cols + col_off) * elem_bytes,
                            sub_cols * elem_bytes,
                        )
                    })
                    .collect()
            }
        }
    }

    /// Is one instance a single contiguous run?
    pub fn is_contiguous(&self) -> bool {
        match self {
            Datatype::Contiguous { .. } => true,
            Datatype::Vector {
                count,
                block_bytes,
                stride_bytes,
            } => *count <= 1 || block_bytes == stride_bytes,
            Datatype::Indexed { blocks } => {
                let mut sorted: Vec<_> = blocks.iter().filter(|&&(_, l)| l > 0).collect();
                sorted.sort_by_key(|&&(o, _)| o);
                sorted
                    .windows(2)
                    .all(|w| w[0].0 + w[0].1 == w[1].0)
            }
            Datatype::Subarray2 {
                cols,
                sub_rows,
                sub_cols,
                ..
            } => *sub_rows <= 1 || sub_cols == cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_lowering() {
        let t = Datatype::Contiguous { len: 4096 };
        assert_eq!(t.regions_at(100), vec![FileRegion::new(100, 4096)]);
        assert_eq!(t.extent_data(), 4096);
        assert_eq!(t.extent_span(), 4096);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_lowering() {
        // 3 blocks of 16 bytes every 64 bytes.
        let t = Datatype::Vector {
            count: 3,
            block_bytes: 16,
            stride_bytes: 64,
        };
        assert_eq!(
            t.regions_at(1000),
            vec![
                FileRegion::new(1000, 16),
                FileRegion::new(1064, 16),
                FileRegion::new(1128, 16)
            ]
        );
        assert_eq!(t.extent_data(), 48);
        assert_eq!(t.extent_span(), 2 * 64 + 16);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn dense_vector_is_contiguous() {
        let t = Datatype::Vector {
            count: 4,
            block_bytes: 32,
            stride_bytes: 32,
        };
        assert!(t.is_contiguous());
    }

    #[test]
    fn indexed_lowering_sorts() {
        let t = Datatype::Indexed {
            blocks: vec![(100, 10), (0, 10), (50, 10)],
        };
        let rs = t.regions_at(0);
        assert_eq!(rs[0].offset, 0);
        assert_eq!(rs[1].offset, 50);
        assert_eq!(rs[2].offset, 100);
        assert_eq!(t.extent_data(), 30);
        assert_eq!(t.extent_span(), 110);
    }

    #[test]
    fn indexed_contiguity() {
        let t = Datatype::Indexed {
            blocks: vec![(10, 10), (0, 10)],
        };
        assert!(t.is_contiguous());
        let t2 = Datatype::Indexed {
            blocks: vec![(0, 10), (20, 10)],
        };
        assert!(!t2.is_contiguous());
    }

    #[test]
    fn subarray2_lowers_to_row_strips() {
        // 8x8 array of 4-byte elements; a 2x3 window at (1, 2).
        let t = Datatype::Subarray2 {
            rows: 8,
            cols: 8,
            elem_bytes: 4,
            row_off: 1,
            col_off: 2,
            sub_rows: 2,
            sub_cols: 3,
        };
        assert_eq!(
            t.regions_at(0),
            vec![FileRegion::new(40, 12), FileRegion::new(72, 12)]
        );
        assert_eq!(t.extent_data(), 24);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn subarray2_full_width_is_contiguous() {
        let t = Datatype::Subarray2 {
            rows: 4,
            cols: 4,
            elem_bytes: 8,
            row_off: 1,
            col_off: 0,
            sub_rows: 2,
            sub_cols: 4,
        };
        assert!(t.is_contiguous());
        let rs = t.regions_at(100);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].end(), rs[1].offset);
    }

    #[test]
    fn subarray2_span_and_base() {
        let t = Datatype::Subarray2 {
            rows: 10,
            cols: 10,
            elem_bytes: 1,
            row_off: 0,
            col_off: 5,
            sub_rows: 3,
            sub_cols: 5,
        };
        let rs = t.regions_at(1000);
        assert_eq!(rs[0].offset, 1005);
        assert_eq!(rs[2].end(), 1000 + 2 * 10 + 5 + 5);
        assert_eq!(t.extent_span(), 25);
    }

    #[test]
    fn zero_sized_types() {
        let t = Datatype::Vector {
            count: 0,
            block_bytes: 16,
            stride_bytes: 64,
        };
        assert!(t.regions_at(0).is_empty());
        assert_eq!(t.extent_span(), 0);
        let t2 = Datatype::Contiguous { len: 0 };
        assert!(t2.regions_at(5).is_empty());
    }
}
