//! The cluster simulator: nodes, servers, network, disks, and the event
//! loop. Strategy-specific op handling lives in `exec.rs` (vanilla,
//! barriers, collective I/O) and `datadriven.rs` (DualPar phases and
//! Strategy-2 prefetching).

use crate::config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec, ServerWriteMode};
use crate::metrics::{ModeEvent, ProgramReport, RunReport};
use dualpar_cache::{CacheConfig, GlobalCache, NodeId, OwnerId};
use dualpar_core::{DualParConfig, Emc, ExecMode, IoClock, ProgramId, ReqDistTracker};
use dualpar_disk::{Disk, DiskRequest, IoCtx, IoKind, Lbn, StartOutcome};
use dualpar_mpiio::{CoalescedIo, ProcessScript};
use dualpar_pfs::{FileId, FileRegion, Pvfs};
use dualpar_sim::{EventId, EventQueue, Link, SimDuration, SimTime, Slab, SlabKey, TimeSeries};
use dualpar_telemetry::{SpanId, SpanProfile, Telemetry};
use dualpar_sim::{FxHashMap, FxHashSet};

/// Safety valve: a single experiment should never need more events.
const MAX_EVENTS: u64 = 2_000_000_000;

/// Events driving the simulation.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A program begins.
    Start(usize),
    /// A process is ready to advance its script.
    ProcReady(usize),
    /// A request message arrived at a data server.
    ServerRecv { server: u32, sub: SubReq },
    /// Poke a disk (idle-anticipation timer expired).
    DiskKick(u32),
    /// A disk finished its in-flight request.
    DiskDone(u32),
    /// A response was delivered back; one sub-request of a group is done.
    SubDone { group: SlabKey },
    /// A ghost pre-execution finished its walk.
    GhostDone { prog: usize, proc: usize },
    /// A pre-execution phase hit its fill-time bound.
    PhaseTimeout { prog: usize, seq: u64 },
    /// EMC sampling slot boundary.
    EmcTick,
    /// A data server's write-back daemon flushes its dirty buffer.
    ServerFlush(u32),
}

/// One disk-bound sub-request (a resolved LBN run on one server).
#[derive(Debug, Clone)]
pub(crate) struct SubReq {
    pub id: u64,
    pub lbn: Lbn,
    pub sectors: u64,
    pub kind: IoKind,
    pub ctx: IoCtx,
}

/// Why a completion group exists — dispatched when its last sub-request
/// finishes.
#[derive(Debug, Clone)]
pub(crate) enum Purpose {
    /// One region of a vanilla (independent, synchronous) call.
    VanillaRegion { proc: usize },
    /// A Strategy-2 prefetch of a single predicted region.
    S2Prefetch {
        proc: usize,
        file: FileId,
        region: FileRegion,
    },
    /// Direct fetch issued after a mis-predicted region was detected.
    DirectFetch { proc: usize },
    /// All aggregator accesses of one collective call.
    CollIo { prog: usize },
    /// Collective shuffle phase finished (modelled as a delay event).
    CollResume { prog: usize },
    /// DualPar phase stages, in order.
    PhaseFill { prog: usize },
    PhaseWriteback { prog: usize },
    PhasePrefetch { prog: usize },
    /// Stand-alone write-back (program completion or mode revert).
    FlushWriteback { prog: usize, finalize: bool },
}

impl Purpose {
    /// Short label for per-purpose telemetry (group latency histograms).
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Purpose::VanillaRegion { .. } => "vanilla_region",
            Purpose::S2Prefetch { .. } => "s2_prefetch",
            Purpose::DirectFetch { .. } => "direct_fetch",
            Purpose::CollIo { .. } => "coll_io",
            Purpose::CollResume { .. } => "coll_resume",
            Purpose::PhaseFill { .. } => "phase_fill",
            Purpose::PhaseWriteback { .. } => "phase_writeback",
            Purpose::PhasePrefetch { .. } => "phase_prefetch",
            Purpose::FlushWriteback { .. } => "flush_writeback",
        }
    }
}

#[derive(Debug)]
pub(crate) struct Group {
    pub remaining: usize,
    pub purpose: Purpose,
    /// When the group was opened (for completion-latency histograms).
    pub opened: SimTime,
}

/// Side-table record for one in-flight sub-request, held in a slab keyed
/// by the sub-request id itself (the id *is* the raw slab key, so server
/// completion resolves it with one indexed load instead of a hash probe).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqInfo {
    /// The completion group this sub-request belongs to.
    pub group: SlabKey,
    /// Response payload size (data for reads, zero for writes).
    pub resp_bytes: u64,
    /// The sub-request's `req.life` span, keyed by the raw sub id
    /// (INVALID when spans are off).
    pub life: SpanId,
    /// The currently-open lifecycle stage child of `life`
    /// (`req.issue` → `server.queue` → `disk.service`).
    pub stage: SpanId,
}

/// Process execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PState {
    /// Waiting for a scheduled ProcReady (computing, or newly started).
    Computing,
    /// Blocked on a vanilla I/O op; regions are issued one at a time.
    VanillaIo { op: usize, next_region: usize },
    BarrierWait(u64),
    CollWait,
    /// Suspended in a data-driven phase. `retry_op` says whether the
    /// current op must be re-executed on resume (read miss) or was already
    /// applied (write that filled the cache).
    Suspended { retry_op: bool },
    /// Strategy 2: waiting for in-flight prefetches covering the op.
    S2Wait { op: usize },
    Done,
}

pub(crate) struct Proc {
    pub prog: usize,
    pub rank: usize,
    pub node: u32,
    pub ctx: IoCtx,
    /// Shared, immutable per-rank script. Behind an `Arc` so the hot
    /// execution paths can detach a cheap handle and borrow ops out of it
    /// while mutating the rest of the cluster — no per-op deep clones.
    pub script: std::sync::Arc<ProcessScript>,
    pub pos: usize,
    pub state: PState,
    pub clock: IoClock,
    /// When the current op (or suspension) began.
    pub op_start: SimTime,
    pub last_io_end: SimTime,
    pub owner: OwnerId,
    /// Ghost pre-execution resume point (never behind `pos`).
    pub ghost_pos: usize,
    /// Op index that already triggered a phase/prefetch: a second miss on
    /// it falls back to a direct fetch (mis-prediction escape hatch).
    pub miss_trigger_op: Option<usize>,
    /// Bytes the ghost recorded in the current phase (resume accounting).
    pub phase_bytes: u64,
    /// Regions waited on under Strategy 2.
    pub s2_waiting: FxHashSet<(u32, u64, u64)>,
    /// Recorded-but-not-yet-issued Strategy-2 prefetches (async window).
    pub s2_queue: std::collections::VecDeque<(FileId, FileRegion)>,
    /// Prefetch requests currently outstanding at the servers.
    pub s2_outstanding: usize,
    /// Pending ghost recording (applied at GhostDone).
    pub pending_ghost: Vec<(FileId, FileRegion)>,
    /// Event id of the scheduled GhostDone (cancellable at phase timeout).
    pub ghost_ev: Option<EventId>,
    /// Covers being issued for the current vanilla op (after sieving).
    pub cur_covers: Vec<FileRegion>,
    /// Whether a direct-fetch group for the current op is outstanding.
    pub direct_pending: bool,
    /// The open `proc.*` state span (INVALID when spans are off or the
    /// process is done).
    pub state_span: SpanId,
    /// Name of the open state span, used to skip no-op flips when a
    /// `PState` change stays within the same span category.
    pub state_span_name: Option<&'static str>,
    /// The open `proc.ghost` overlay span (child of the suspended span).
    pub ghost_span: SpanId,
}

/// Key identifying a process in `proc.*` spans: program index in the high
/// 32 bits, rank in the low 32 (rendered `p<prog>/r<rank>`).
pub(crate) fn proc_span_key(prog: usize, rank: usize) -> u64 {
    ((prog as u64) << 32) | rank as u64
}

/// The span category a process state falls into. `None` for `Done` (no
/// span while finished). Blocking states collapse into `proc.blocked_io`;
/// barrier waits are their own category so synchronization time is not
/// misattributed to the I/O system.
fn pstate_span_name(state: &PState) -> Option<&'static str> {
    match state {
        PState::Computing => Some("proc.compute"),
        PState::VanillaIo { .. } | PState::S2Wait { .. } | PState::CollWait => {
            Some("proc.blocked_io")
        }
        PState::BarrierWait(_) => Some("proc.barrier"),
        PState::Suspended { .. } => Some("proc.suspended"),
        PState::Done => None,
    }
}

/// Program-level phase of the data-driven machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Phase {
    Normal,
    /// Ghosts running; waiting for every live process to block and record.
    PreExec { waiting_ghosts: usize },
    /// Batch stages in flight.
    Fill,
    Writeback,
    Prefetch,
}

pub(crate) struct CollectState {
    pub arrived: Vec<Option<Vec<FileRegion>>>,
    pub count: usize,
    pub kind: Option<IoKind>,
    pub file: Option<FileId>,
}

pub(crate) struct Program {
    pub name: String,
    pub strategy: IoStrategy,
    pub procs: std::ops::Range<usize>,
    pub files: FxHashSet<FileId>,
    pub mode: ExecMode,
    pub phase: Phase,
    pub phase_seq: u64,
    pub phase_timeout: Option<EventId>,
    pub recordings: Vec<(OwnerId, FileId, FileRegion)>,
    /// Writes planned for after the fill stage.
    pub staged_writes: Vec<CoalescedIo>,
    pub staged_prefetch: Vec<CoalescedIo>,
    pub barrier_waits: FxHashMap<u64, Vec<usize>>,
    pub coll: CollectState,
    pub started: bool,
    pub start: SimTime,
    pub finish: Option<SimTime>,
    pub done_procs: usize,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub io_time: SimDuration,
    pub phases: u64,
    pub mis_sum: f64,
    pub mis_n: u64,
    pub final_flush_pending: bool,
    /// Exchange volume/messages of the collective call in flight.
    pub coll_exchange: (u64, u64),
    /// When the current pre-execution phase opened (telemetry).
    pub phase_opened: SimTime,
}

impl Program {
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }
}

/// The assembled cluster simulator.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) pvfs: Pvfs,
    pub(crate) cache: GlobalCache,
    pub(crate) emc: Emc,
    pub(crate) disks: Vec<Disk>,
    pub(crate) server_links: Vec<Link>,
    pub(crate) node_links: Vec<Link>,
    pub(crate) req_dist: Vec<ReqDistTracker>,
    pub(crate) procs: Vec<Proc>,
    pub(crate) programs: Vec<Program>,
    pub(crate) groups: Slab<Group>,
    pub(crate) req_info: Slab<ReqInfo>, // sub id == raw slab key
    pub(crate) s2_inflight: FxHashMap<(u32, u64, u64), Vec<usize>>,
    /// Per-server buffered (acknowledged, unflushed) write requests, used
    /// in the WriteBack server mode.
    pub(crate) server_dirty: Vec<Vec<DiskRequest>>,
    pub(crate) server_flush_scheduled: Vec<bool>,
    pub(crate) rng: dualpar_sim::DetRng,
    pub(crate) timeline: TimeSeries,
    pub(crate) mode_events: Vec<ModeEvent>,
    pub(crate) emc_improvement: Vec<(f64, f64)>,
    pub(crate) events_processed: u64,
    /// Time of the most recently handled event (monotonicity invariant).
    pub(crate) last_event_time: SimTime,
    pub(crate) finished_programs: usize,
    pub(crate) emc_active: bool,
    pub(crate) next_ctx: u32,
    pub(crate) tele: Telemetry,
    /// Epoch-stamped scratch for [`Cluster::cache_access_time`]: per-node
    /// byte accumulators that survive across calls so the hot path never
    /// allocates. A stamp older than `cat_epoch` means "logically zero".
    cat_bytes: Vec<u64>,
    cat_stamp: Vec<u64>,
    cat_epoch: u64,
    /// Reusable buffer for the `(home, bytes)` lists the data-driven paths
    /// feed into `cache_access_time` (taken and returned around each use).
    pub(crate) homes_scratch: Vec<(NodeId, u64)>,
}

// The parallel suite runner builds and runs whole clusters on scoped worker
// threads, so `Cluster` must stay `Send`. Compile-time check, no runtime cost.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Cluster>();
};

impl Cluster {
    /// Assemble a cluster from its configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let pvfs = Pvfs::new(
            cfg.num_data_servers,
            cfg.stripe_size,
            cfg.disk.capacity_sectors,
            cfg.alloc.clone(),
        );
        let cache = GlobalCache::new(CacheConfig {
            chunk_size: cfg.stripe_size,
            num_nodes: cfg.num_compute_nodes,
            idle_ttl: SimDuration::from_secs(30),
            node_capacity: u64::MAX,
        });
        let emc = Emc::new(cfg.dualpar.clone());
        let disks = (0..cfg.num_data_servers)
            .map(|_| Disk::new(cfg.disk.clone(), cfg.scheduler, cfg.trace_disks))
            .collect();
        let server_links = (0..cfg.num_data_servers)
            .map(|_| Link::new(cfg.net_latency, cfg.net_bandwidth))
            .collect();
        let node_links = (0..cfg.num_compute_nodes)
            .map(|_| Link::new(cfg.net_latency, cfg.net_bandwidth))
            .collect();
        let req_dist = (0..cfg.num_compute_nodes)
            .map(|_| ReqDistTracker::new())
            .collect();
        let rng = dualpar_sim::DetRng::for_stream(cfg.seed, "cluster");
        let tele = Telemetry::new(&cfg.telemetry);
        let nservers = cfg.num_data_servers as usize;
        let nnodes = cfg.num_compute_nodes as usize;
        Cluster {
            cfg,
            queue: EventQueue::new(),
            rng,
            pvfs,
            cache,
            emc,
            disks,
            server_links,
            node_links,
            req_dist,
            procs: Vec::new(),
            programs: Vec::new(),
            groups: Slab::with_capacity(64),
            req_info: Slab::with_capacity(256),
            s2_inflight: FxHashMap::default(),
            server_dirty: vec![Vec::new(); nservers],
            server_flush_scheduled: vec![false; nservers],
            timeline: TimeSeries::new(SimDuration::from_secs(1)),
            mode_events: Vec::new(),
            emc_improvement: Vec::new(),
            events_processed: 0,
            last_event_time: SimTime::ZERO,
            finished_programs: 0,
            emc_active: false,
            next_ctx: 1,
            tele,
            cat_bytes: vec![0; nnodes],
            cat_stamp: vec![0; nnodes],
            cat_epoch: 0,
            homes_scratch: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// DualPar's thresholds and quotas.
    pub fn dualpar_config(&self) -> &DualParConfig {
        &self.cfg.dualpar
    }

    /// Create a file in the parallel file system.
    pub fn create_file(&mut self, name: &str, size: u64) -> FileId {
        self.pvfs.create(name, size)
    }

    /// Register a program for execution. Returns its index.
    pub fn add_program(&mut self, spec: ProgramSpec) -> usize {
        assert!(
            spec.script.barriers_consistent(),
            "program {} has inconsistent barrier sequences",
            spec.script.name
        );
        let idx = self.programs.len();
        let nprocs = spec.script.nprocs();
        let name = spec.script.name.clone();
        let first_proc = self.procs.len();
        let mut files = FxHashSet::default();
        for (rank, script) in spec.script.ranks.into_iter().enumerate() {
            for op in &script.ops {
                if let dualpar_mpiio::Op::Io(call) = op {
                    files.insert(call.file);
                }
            }
            let node = (rank as u32) % self.cfg.num_compute_nodes;
            let ctx = IoCtx(self.next_ctx);
            self.next_ctx += 1;
            self.procs.push(Proc {
                prog: idx,
                rank,
                node,
                ctx,
                script: std::sync::Arc::new(script),
                pos: 0,
                state: PState::Computing,
                clock: IoClock::new(),
                op_start: SimTime::ZERO,
                last_io_end: SimTime::ZERO,
                owner: OwnerId(((idx as u64) << 32) | rank as u64),
                ghost_pos: 0,
                miss_trigger_op: None,
                phase_bytes: 0,
                s2_waiting: FxHashSet::default(),
                s2_queue: std::collections::VecDeque::new(),
                s2_outstanding: 0,
                pending_ghost: Vec::new(),
                ghost_ev: None,
                cur_covers: Vec::new(),
                direct_pending: false,
                state_span: SpanId::INVALID,
                state_span_name: None,
                ghost_span: SpanId::INVALID,
            });
        }
        for f in &files {
            assert!(
                self.pvfs.meta(*f).is_some(),
                "program {} references file {f:?} that was never created",
                name
            );
        }
        let mode = if spec.strategy == IoStrategy::DualParForced {
            ExecMode::DataDriven
        } else {
            ExecMode::ComputationDriven
        };
        if spec.strategy == IoStrategy::DualPar {
            self.emc.register(ProgramId(idx as u32));
            self.emc_active = true;
        }
        self.programs.push(Program {
            name,
            strategy: spec.strategy,
            procs: first_proc..first_proc + nprocs,
            files,
            mode,
            phase: Phase::Normal,
            phase_seq: 0,
            phase_timeout: None,
            recordings: Vec::new(),
            staged_writes: Vec::new(),
            staged_prefetch: Vec::new(),
            barrier_waits: FxHashMap::default(),
            coll: CollectState {
                arrived: vec![None; nprocs],
                count: 0,
                kind: None,
                file: None,
            },
            started: false,
            start: spec.start_at,
            finish: None,
            done_procs: 0,
            bytes_read: 0,
            bytes_written: 0,
            io_time: SimDuration::ZERO,
            phases: 0,
            mis_sum: 0.0,
            mis_n: 0,
            final_flush_pending: false,
            coll_exchange: (0, 0),
            phase_opened: SimTime::ZERO,
        });
        self.queue.schedule(spec.start_at, Ev::Start(idx));
        idx
    }

    /// Access a server's disk (for trace inspection after a run).
    pub fn disk(&self, server: u32) -> &Disk {
        &self.disks[server as usize]
    }

    /// The telemetry instance (counters, series, and the event trace).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Write the recorded JSONL event trace to `w`. Emits nothing below
    /// [`dualpar_telemetry::TelemetryLevel::Trace`].
    pub fn export_trace<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.tele.trace().export_jsonl(w)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    // ----- network + disk plumbing ------------------------------------

    /// Translate a fine-grained issuing identity into the disk-scheduler
    /// context the data server's kernel would actually see.
    pub(crate) fn effective_ctx(&self, prog: usize, fine: IoCtx) -> IoCtx {
        match self.cfg.ctx_mode {
            CtxMode::PerServer => IoCtx(0),
            CtxMode::PerClient => fine,
            CtxMode::PerProgram => IoCtx(prog as u32 + 1),
        }
    }


    /// Time to move the listed `(home, bytes)` chunks between this compute
    /// node and the cache. Accesses are batched per home node (a Memcached
    /// multi-get/multi-set): one round trip per distinct remote node plus
    /// the transfer volume, memory-copy cost for local chunks.
    pub(crate) fn cache_access_time(&mut self, node: u32, homes: &[(NodeId, u64)]) -> SimDuration {
        let mut t = SimDuration::from_micros(1);
        let mut local = 0u64;
        // Dense per-node accumulator: node ids are small contiguous
        // integers, so indexing beats hashing on this per-access path. The
        // accumulators persist across calls, stamped with a per-call epoch —
        // a stale stamp reads as "untouched", so there is nothing to clear
        // and the whole batch charge runs allocation-free. A touched remote
        // node costs its round-trip latency even for an empty payload.
        self.cat_epoch += 1;
        let epoch = self.cat_epoch;
        for &(home, bytes) in homes {
            if home.0 == node {
                local += bytes;
            } else {
                let i = home.0 as usize;
                if self.cat_stamp[i] != epoch {
                    self.cat_stamp[i] = epoch;
                    self.cat_bytes[i] = 0;
                }
                self.cat_bytes[i] += bytes;
            }
        }
        t += SimDuration::for_transfer(local, self.cfg.mem_bandwidth);
        for i in 0..self.cat_stamp.len() {
            if self.cat_stamp[i] == epoch {
                t += self.cfg.net_latency
                    + SimDuration::for_transfer(self.cat_bytes[i], self.cfg.net_bandwidth);
            }
        }
        t
    }

    // ----- span plumbing ------------------------------------------------

    /// Re-derive process `p`'s state-span category from its current
    /// [`PState`] and, if it changed, close the old span and open the new
    /// one at logical time `at`. `at` may lie ahead of the queue clock (a
    /// suspension taking effect when its triggering op completes); the
    /// mirrored trace events stay monotone via their `stamp`.
    ///
    /// Call *after* every `PState` assignment that can change category.
    pub(crate) fn sync_proc_span(&mut self, p: usize, at: SimTime) {
        if !self.tele.spans_enabled() {
            return;
        }
        let name = pstate_span_name(&self.procs[p].state);
        if name == self.procs[p].state_span_name {
            return;
        }
        let stamp = self.queue.now().as_secs_f64();
        let at = at.as_secs_f64();
        self.tele.span_close(stamp, self.procs[p].state_span, at);
        let key = proc_span_key(self.procs[p].prog, self.procs[p].rank);
        self.procs[p].state_span = match name {
            Some(n) => self.tele.span_open(stamp, at, n, SpanId::INVALID, key),
            None => SpanId::INVALID,
        };
        self.procs[p].state_span_name = name;
    }

    /// Record a blocked-I/O interval `[from, until]` for a process whose
    /// `PState` never leaves `Computing` — the inline cache-served ops that
    /// account their completion at a scheduled future instant (data-driven
    /// cache hits and writes).
    pub(crate) fn proc_blocked_span(&mut self, p: usize, from: SimTime, until: SimTime) {
        if !self.tele.spans_enabled() {
            return;
        }
        let stamp = self.queue.now().as_secs_f64();
        let key = proc_span_key(self.procs[p].prog, self.procs[p].rank);
        self.tele
            .span_close(stamp, self.procs[p].state_span, from.as_secs_f64());
        let blocked = self
            .tele
            .span_open(stamp, from.as_secs_f64(), "proc.blocked_io", SpanId::INVALID, key);
        self.tele.span_close(stamp, blocked, until.as_secs_f64());
        self.procs[p].state_span =
            self.tele
                .span_open(stamp, until.as_secs_f64(), "proc.compute", SpanId::INVALID, key);
        self.procs[p].state_span_name = Some("proc.compute");
    }

    /// Close the process's ghost overlay span (if any) at `at`.
    pub(crate) fn close_ghost_span(&mut self, p: usize, at: SimTime) {
        let gs = std::mem::replace(&mut self.procs[p].ghost_span, SpanId::INVALID);
        self.tele
            .span_close(self.queue.now().as_secs_f64(), gs, at.as_secs_f64());
    }

    /// Allocate a completion group.
    pub(crate) fn new_group(&mut self, purpose: Purpose) -> SlabKey {
        let opened = self.queue.now();
        self.groups.insert(Group {
            remaining: 0,
            purpose,
            opened,
        })
    }

    /// Issue the accesses of `ios` (already coalesced covers) to the data
    /// servers, attached to `group`. Requests leave through `node`'s NIC
    /// with context `ctx`. Returns the number of sub-requests issued.
    pub(crate) fn issue_covers(
        &mut self,
        now: SimTime,
        group: SlabKey,
        node: u32,
        ctx: IoCtx,
        kind: IoKind,
        ios: &[(FileId, FileRegion)],
    ) -> usize {
        let mut subs = Vec::new();
        for &(file, region) in ios {
            for run in self.pvfs.resolve(file, region) {
                subs.push((run.server, run.lbn, run.sectors, run.bytes));
            }
        }
        let n = subs.len();
        self.groups.get_mut(group).expect("group exists").remaining += n;
        for (server, lbn, sectors, bytes) in subs {
            let (req_msg, resp_bytes) = match kind {
                IoKind::Read => (self.cfg.msg_header, bytes),
                IoKind::Write => (self.cfg.msg_header + bytes, 0),
            };
            // The sub-request id *is* the raw slab key of its side-table
            // record, so completion resolves it with one indexed load.
            let id = self
                .req_info
                .insert(ReqInfo {
                    group,
                    resp_bytes,
                    life: SpanId::INVALID,
                    stage: SpanId::INVALID,
                })
                .raw();
            if self.tele.spans_enabled() {
                // `now` may be ahead of the queue clock (Strategy-2 pumps
                // issue at jittered future instants); stamp with the clock.
                let stamp = self.queue.now().as_secs_f64();
                let at = now.as_secs_f64();
                let life = self.tele.span_open(stamp, at, "req.life", SpanId::INVALID, id);
                let stage = self.tele.span_open(stamp, at, "req.issue", life, id);
                let info = self
                    .req_info
                    .get_mut(SlabKey::from_raw(id))
                    .expect("just inserted");
                info.life = life;
                info.stage = stage;
            }
            let deliver = self.node_links[node as usize].send(now, req_msg);
            self.queue.schedule(
                deliver,
                Ev::ServerRecv {
                    server: server.0,
                    sub: SubReq {
                        id,
                        lbn,
                        sectors,
                        kind,
                        ctx,
                    },
                },
            );
        }
        n
    }

    /// If the group is already complete (zero sub-requests), dispatch its
    /// purpose immediately via a SubDone-like path.
    pub(crate) fn finish_if_empty(&mut self, now: SimTime, group: SlabKey) {
        if self.groups.get(group).is_some_and(|g| g.remaining == 0) {
            let g = self.groups.remove(group).expect("checked");
            self.dispatch_group(now, g);
        }
    }

    pub(crate) fn kick_disk(&mut self, now: SimTime, server: u32) {
        match self.disks[server as usize].try_start(now) {
            StartOutcome::Started { finish } => {
                if self.tele.spans_enabled() {
                    // Queue merging is final once dispatch starts, so every
                    // absorbed sub-request enters service here. Flush-daemon
                    // replays carry ids already retired at ack time; the
                    // slab generation check skips them (no live record).
                    if let Some(req) = self.disks[server as usize].in_flight() {
                        let stamp = now.as_secs_f64();
                        for &id in req.merged_ids() {
                            if let Some(info) = self.req_info.get_mut(SlabKey::from_raw(id)) {
                                let (life, stage) = (info.life, info.stage);
                                self.tele.span_close(stamp, stage, stamp);
                                let svc =
                                    self.tele.span_open(stamp, stamp, "disk.service", life, id);
                                if let Some(info) =
                                    self.req_info.get_mut(SlabKey::from_raw(id))
                                {
                                    info.stage = svc;
                                }
                            }
                        }
                    }
                }
                if self.tele.tracing() {
                    if let Some(req) = self.disks[server as usize].in_flight() {
                        let (id, lbn, sectors) = (req.id, req.lbn, req.sectors);
                        let op = match req.kind {
                            IoKind::Read => "read",
                            IoKind::Write => "write",
                        };
                        self.tele.event(now.as_secs_f64(), "disk", "start", |e| {
                            e.u64("server", server as u64)
                                .u64("id", id)
                                .u64("lbn", lbn)
                                .u64("sectors", sectors)
                                .str("op", op)
                        });
                    }
                }
                self.queue.schedule(finish, Ev::DiskDone(server));
            }
            StartOutcome::Idle { until } => {
                self.queue.schedule(until, Ev::DiskKick(server));
            }
            StartOutcome::Quiescent => {}
        }
    }

    // ----- the event loop ----------------------------------------------

    /// Run until every program has finished. Returns the report.
    pub fn run(&mut self) -> RunReport {
        if self.tele.tracing() {
            // Lead the trace with the thresholds this run decides against,
            // so the offline auditor validates EMC transitions with the
            // actual (possibly tuned) configuration.
            let dp = &self.cfg.dualpar;
            let (ratio, imp, mis) = (
                dp.io_ratio_threshold,
                dp.t_improvement,
                dp.misprefetch_threshold,
            );
            self.tele.event(0.0, "emc", "config", |e| {
                e.f64("io_ratio_threshold", ratio)
                    .f64("t_improvement", imp)
                    .f64("misprefetch_threshold", mis)
            });
        }
        if self.emc_active {
            let slot = self.cfg.dualpar.sample_slot;
            self.queue.schedule(SimTime::ZERO + slot, Ev::EmcTick);
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed < MAX_EVENTS,
                "event budget exceeded — runaway simulation"
            );
            self.handle(now, ev);
            if self.finished_programs == self.programs.len() && !self.emc_active {
                break;
            }
            if self.finished_programs == self.programs.len() {
                // Only EMC ticks remain; stop.
                break;
            }
        }
        self.report()
    }

    /// Static counter name for an event kind (dispatch accounting).
    fn ev_counter(ev: &Ev) -> &'static str {
        match ev {
            Ev::Start(_) => "engine.ev.start",
            Ev::ProcReady(_) => "engine.ev.proc_ready",
            Ev::ServerRecv { .. } => "engine.ev.server_recv",
            Ev::DiskKick(_) => "engine.ev.disk_kick",
            Ev::DiskDone(_) => "engine.ev.disk_done",
            Ev::SubDone { .. } => "engine.ev.sub_done",
            Ev::GhostDone { .. } => "engine.ev.ghost_done",
            Ev::PhaseTimeout { .. } => "engine.ev.phase_timeout",
            Ev::EmcTick => "engine.ev.emc_tick",
            Ev::ServerFlush(_) => "engine.ev.server_flush",
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        dualpar_sim::strict_assert!(
            now >= self.last_event_time,
            "event time went backwards: {:?} < {:?}",
            now,
            self.last_event_time
        );
        self.last_event_time = now;
        self.tele.count(Self::ev_counter(&ev), 1);
        self.tele
            .gauge_max("engine.queue_depth_max", self.queue.len() as f64);
        match ev {
            Ev::Start(prog) => self.on_start(now, prog),
            Ev::ProcReady(p) => self.advance(now, p),
            Ev::ServerRecv { server, sub } => {
                let req = DiskRequest::new(sub.id, sub.ctx, sub.kind, sub.lbn, sub.sectors, now);
                let buffer_write = sub.kind == IoKind::Write
                    && self.cfg.server_write_mode == ServerWriteMode::WriteBack;
                if buffer_write {
                    // Acknowledge immediately; the flush daemon owns the
                    // disk write from here.
                    if let Some(info) = self.req_info.remove(SlabKey::from_raw(sub.id)) {
                        let deliver = self.server_links[server as usize]
                            .send(now, self.cfg.msg_header.saturating_add(info.resp_bytes));
                        self.queue
                            .schedule(deliver, Ev::SubDone { group: info.group });
                        if self.tele.spans_enabled() {
                            // Buffered ack: the queue/disk stages are owned
                            // by the flush daemon, so the lifecycle skips
                            // straight from issue to ack.
                            let stamp = now.as_secs_f64();
                            self.tele.span_close(stamp, info.stage, stamp);
                            let ack =
                                self.tele.span_open(stamp, stamp, "req.ack", info.life, sub.id);
                            self.tele.span_close(stamp, ack, deliver.as_secs_f64());
                            self.tele.span_close(stamp, info.life, deliver.as_secs_f64());
                        }
                    }
                    self.server_dirty[server as usize].push(req);
                    if !self.server_flush_scheduled[server as usize] {
                        self.server_flush_scheduled[server as usize] = true;
                        self.queue.schedule(
                            now.saturating_add(self.cfg.server_flush_interval),
                            Ev::ServerFlush(server),
                        );
                    }
                } else {
                    if self.tele.spans_enabled() {
                        if let Some(info) = self.req_info.get_mut(SlabKey::from_raw(sub.id)) {
                            let (life, stage) = (info.life, info.stage);
                            let stamp = now.as_secs_f64();
                            self.tele.span_close(stamp, stage, stamp);
                            let queue_span =
                                self.tele.span_open(stamp, stamp, "server.queue", life, sub.id);
                            if let Some(info) = self.req_info.get_mut(SlabKey::from_raw(sub.id)) {
                                info.stage = queue_span;
                            }
                        }
                    }
                    self.disks[server as usize].enqueue(req);
                    self.tele.gauge_max(
                        "disk.queue_depth_max",
                        self.disks[server as usize].queued() as f64,
                    );
                    if !self.disks[server as usize].is_busy() {
                        self.kick_disk(now, server);
                    }
                }
            }
            Ev::ServerFlush(server) => {
                self.server_flush_scheduled[server as usize] = false;
                let dirty = std::mem::take(&mut self.server_dirty[server as usize]);
                if dirty.is_empty() {
                    return;
                }
                // The flush daemon is one kernel context issuing in LBN
                // order — pdflush behaviour.
                let mut dirty = dirty;
                dirty.sort_by_key(|r| r.lbn);
                for mut r in dirty {
                    // Flush writes carry the daemon's context.
                    r.ctx = self.effective_ctx(0, IoCtx(0xFFFF_FFFF));
                    self.disks[server as usize].enqueue(r);
                }
                if !self.disks[server as usize].is_busy() {
                    self.kick_disk(now, server);
                }
                // The next timer is armed by the next write arrival.
            }
            Ev::DiskKick(server) => {
                if !self.disks[server as usize].is_busy() {
                    self.kick_disk(now, server);
                }
            }
            Ev::DiskDone(server) => {
                let req = self.disks[server as usize].complete();
                self.tele.event(now.as_secs_f64(), "disk", "done", |e| {
                    e.u64("server", server as u64).u64("id", req.id)
                });
                for &id in &req.merged {
                    // A write-back flush can replay ids already retired at
                    // ack time; the slab's generation check turns those
                    // stale lookups into clean misses.
                    if let Some(info) = self.req_info.remove(SlabKey::from_raw(id)) {
                        let deliver = self.server_links[server as usize]
                            .send(now, self.cfg.msg_header.saturating_add(info.resp_bytes));
                        self.queue
                            .schedule(deliver, Ev::SubDone { group: info.group });
                        if self.tele.spans_enabled() {
                            let stamp = now.as_secs_f64();
                            self.tele.span_close(stamp, info.stage, stamp);
                            let ack = self.tele.span_open(stamp, stamp, "req.ack", info.life, id);
                            self.tele.span_close(stamp, ack, deliver.as_secs_f64());
                            self.tele.span_close(stamp, info.life, deliver.as_secs_f64());
                        }
                    }
                }
                self.kick_disk(now, server);
            }
            Ev::SubDone { group } => {
                let done = {
                    let g = self.groups.get_mut(group).expect("live group");
                    dualpar_sim::strict_assert!(
                        g.remaining > 0,
                        "SubDone for group {group:?} with no outstanding sub-requests"
                    );
                    g.remaining -= 1;
                    g.remaining == 0
                };
                if done {
                    let g = self.groups.remove(group).expect("checked");
                    self.dispatch_group(now, g);
                }
            }
            Ev::GhostDone { prog, proc } => self.on_ghost_done(now, prog, proc),
            Ev::PhaseTimeout { prog, seq } => self.on_phase_timeout(now, prog, seq),
            Ev::EmcTick => self.on_emc_tick(now),
        }
    }

    fn on_start(&mut self, now: SimTime, prog: usize) {
        let program = &mut self.programs[prog];
        program.started = true;
        program.start = now;
        let range = program.procs.clone();
        if program.mode == ExecMode::DataDriven {
            // Forced-mode programs never pass through EMC, so record their
            // standing decision in the trace (not in `RunReport.mode_events`,
            // which is reserved for EMC-applied switches). Emitted here, at
            // the program's Start event, so the trace stays time-ordered.
            self.tele.count("emc.mode_forced", 1);
            self.tele.event(now.as_secs_f64(), "emc", "mode", |e| {
                e.u64("program", prog as u64)
                    .str("mode", ExecMode::DataDriven.label())
                    .str("reason", "forced")
            });
        }
        for p in range {
            self.procs[p].op_start = now;
            self.procs[p].last_io_end = now;
            // Opens the initial `proc.compute` span (state is `Computing`
            // and no span exists yet).
            self.sync_proc_span(p, now);
            self.queue.schedule(now, Ev::ProcReady(p));
        }
    }

    fn on_emc_tick(&mut self, now: SimTime) {
        // Gather seek-distance samples from every data server.
        for disk in &mut self.disks {
            if let Some(avg) = disk.trace_mut().take_window_avg_seek() {
                self.emc.report_seek_dist(avg);
            }
        }
        // Request-distance samples from every compute node.
        for tracker in &mut self.req_dist {
            if let Some(avg) = tracker.take_avg_req_dist() {
                self.emc.report_req_dist(avg);
            }
        }
        // Per-program I/O ratios.
        for (idx, program) in self.programs.iter().enumerate() {
            if program.strategy != IoStrategy::DualPar || program.finish.is_some() {
                continue;
            }
            let mut io = 0u64;
            let mut total = 0u64;
            for p in program.procs.clone() {
                let (i, t) = self.procs[p].clock.take_sample();
                io += i;
                total += t;
            }
            self.emc.report_times(ProgramId(idx as u32), io, total);
        }
        let changes = self.emc.tick();
        let t = now.as_secs_f64();
        if let Some(imp) = self.emc.last_improvement() {
            if imp.is_finite() {
                self.emc_improvement.push((t, imp));
                self.tele.sample("emc.improvement", t, imp);
            }
        }
        if self.tele.enabled() {
            // Per-program slot observations: the io_ratio EMC saw, the
            // improvement ratio (absent when no samples arrived; `null` in
            // the JSONL when infinite), and the mode it decided on — one
            // series point and one trace record per program per tick.
            let improvement = self.emc.last_improvement();
            let samples: Vec<_> = self.emc.last_tick_samples().to_vec();
            for s in samples {
                self.tele
                    .sample(&format!("emc.io_ratio.p{}", s.program.0), t, s.io_ratio);
                self.tele.event(t, "emc", "tick", |e| {
                    let e = e
                        .u64("program", s.program.0 as u64)
                        .f64("io_ratio", s.io_ratio);
                    let e = match improvement {
                        Some(imp) => e.f64("improvement", imp),
                        None => e,
                    };
                    e.str("mode", s.mode.label()).u64("vetoed", s.vetoed as u64)
                });
            }
        }
        for ch in changes {
            let idx = ch.program.0 as usize;
            if self.programs[idx].finish.is_some() {
                continue;
            }
            self.programs[idx].mode = ch.mode;
            self.mode_events.push(ModeEvent {
                at: now,
                program_index: idx,
                mode: ch.mode,
            });
            self.tele.count("emc.mode_switches", 1);
            self.tele.event(t, "emc", "mode", |e| {
                e.u64("program", idx as u64)
                    .str("mode", ch.mode.label())
                    .str("reason", "emc")
            });
            if ch.mode == ExecMode::ComputationDriven {
                self.flush_on_revert(now, idx);
            }
        }
        self.cache.evict_idle(now);
        // Keep ticking while any adaptive program is unfinished.
        let live = self
            .programs
            .iter()
            .any(|p| p.strategy == IoStrategy::DualPar && p.finish.is_none());
        if live {
            let slot = self.cfg.dualpar.sample_slot;
            self.queue.schedule(now.saturating_add(slot), Ev::EmcTick);
        } else {
            self.emc_active = false;
        }
    }

    // ----- reporting ----------------------------------------------------

    /// Fold end-of-run substrate statistics (cache counters, disk seek and
    /// per-context service totals) into the telemetry registry so the final
    /// snapshot carries them. No-op when telemetry is off.
    fn finalize_telemetry(&mut self) {
        // The conservation identity must hold whether or not telemetry is
        // on; under strict invariants, verify it against a full rescan.
        if cfg!(any(test, feature = "strict-invariants")) {
            self.cache.assert_conservation();
        }
        if !self.tele.enabled() {
            return;
        }
        let ledger = self.cache.prefetch_ledger();
        self.tele
            .event(self.queue.now().as_secs_f64(), "cache", "conservation", |e| {
                e.u64("inserted", ledger.inserted)
                    .u64("consumed", ledger.consumed)
                    .u64("overwritten", ledger.overwritten)
                    .u64("evicted", ledger.evicted)
                    .u64("misprefetched", ledger.misprefetched)
                    .u64("unused_now", ledger.unused_now)
            });
        if self.tele.spans_enabled() {
            // Every lifecycle is complete by the time all programs finish:
            // state spans close at proc_done, request spans at delivery.
            // (Flush-daemon disk work can outlive the run, but it never
            // opens spans — its ids are stale by ack time.)
            let open = self.tele.spans().open_count();
            dualpar_sim::strict_assert!(open == 0, "{open} spans left open at end of run");
            let total = self.tele.spans().len() as u64;
            self.tele.count("span.recorded", total);
            self.tele.count("span.unclosed", open);
        }
        let cs = self.cache.stats();
        self.tele.count("cache.read_probes", cs.read_probes);
        self.tele.count("cache.read_hits", cs.read_hits);
        self.tele
            .count("cache.read_misses", cs.read_probes - cs.read_hits);
        self.tele.count("cache.bytes_prefetched", cs.bytes_prefetched);
        self.tele.count("cache.bytes_written", cs.bytes_written);
        self.tele.count("cache.bytes_evicted", cs.bytes_evicted);
        self.tele.gauge_set("cache.dirty_hwm", cs.dirty_hwm as f64);
        let mut seek_total = 0u64;
        for i in 0..self.disks.len() {
            let disk = &self.disks[i];
            let seek = disk.total_seek_distance();
            let busy = disk.total_busy().as_secs_f64();
            let per_ctx: Vec<f64> = disk
                .per_ctx_service()
                .values()
                .map(|d| d.as_secs_f64())
                .collect();
            seek_total += seek;
            self.tele
                .gauge_set(&format!("disk.d{i}.seek_sectors"), seek as f64);
            self.tele.gauge_set(&format!("disk.d{i}.busy_secs"), busy);
            for secs in per_ctx {
                self.tele.observe("disk.ctx_service_secs", secs);
            }
        }
        self.tele.count("disk.seek_sectors_total", seek_total);
        self.tele
            .gauge_set("engine.events_processed", self.events_processed as f64);
    }

    fn report(&mut self) -> RunReport {
        self.finalize_telemetry();
        let programs = self
            .programs
            .iter()
            .map(|p| ProgramReport {
                name: p.name.clone(),
                nprocs: p.nprocs(),
                strategy: p.strategy.label(),
                start: p.start,
                finish: p.finish.unwrap_or_else(|| self.queue.now()),
                bytes_read: p.bytes_read,
                bytes_written: p.bytes_written,
                io_time: p.io_time,
                phases: p.phases,
                avg_misprefetch: if p.mis_n == 0 {
                    0.0
                } else {
                    p.mis_sum / p.mis_n as f64
                },
            })
            .collect();
        let span_profile = if self.tele.spans_enabled() {
            Some(SpanProfile::from_log(
                self.tele.spans(),
                self.queue.now().as_secs_f64(),
                |k| format!("p{}/r{}", k >> 32, k & 0xFFFF_FFFF),
            ))
        } else {
            None
        };
        RunReport {
            programs,
            sim_end: self.queue.now(),
            throughput_timeline: self.timeline.clone(),
            mode_events: self.mode_events.clone(),
            emc_improvement: self.emc_improvement.clone(),
            disk_bytes: self.disks.iter().map(|d| d.bytes_serviced()).sum(),
            events_processed: self.events_processed,
            telemetry: self.tele.snapshot(),
            span_profile,
        }
    }

    /// Mark a program finished if all procs are done and nothing is
    /// pending.
    pub(crate) fn maybe_finish_program(&mut self, now: SimTime, prog: usize) {
        let program = &self.programs[prog];
        if program.finish.is_some() || program.done_procs < program.nprocs() {
            return;
        }
        // Flush any dirty cache contents belonging to this program first.
        if !program.final_flush_pending {
            let files = program.files.clone();
            let dirty = self.drain_dirty_for(&files);
            if !dirty.is_empty() {
                self.programs[prog].final_flush_pending = true;
                self.issue_flush(now, prog, dirty, true);
                return;
            }
        } else {
            return; // flush in flight; FlushWriteback will finish us
        }
        self.finish_program(now, prog);
    }

    pub(crate) fn finish_program(&mut self, now: SimTime, prog: usize) {
        let program = &mut self.programs[prog];
        debug_assert!(program.finish.is_none());
        program.finish = Some(now);
        self.finished_programs += 1;
        if program.strategy == IoStrategy::DualPar {
            self.emc.deregister(ProgramId(prog as u32));
        }
    }

    /// Drain dirty cache data belonging to the given files only.
    pub(crate) fn drain_dirty_for(&mut self, files: &FxHashSet<FileId>) -> Vec<(FileId, FileRegion)> {
        // The cache drains everything; re-buffer what belongs to others.
        // (Programs touch disjoint files in all experiments, so the
        // re-buffer path is rare; correctness is what matters.)
        let drained = self.cache.drain_dirty();
        let mut ours = Vec::new();
        let now = self.queue.now();
        for (f, r) in drained {
            if files.contains(&f) {
                ours.push((f, r));
            } else {
                // Not ours: put it back as dirty under a neutral owner.
                self.cache.put_write(OwnerId(u64::MAX), f, r, now);
            }
        }
        ours
    }
}
