//! The cluster simulator: nodes, servers, network, disks, and the event
//! loop. Strategy-specific op handling lives in `exec.rs` (vanilla,
//! barriers, collective I/O) and `datadriven.rs` (DualPar phases and
//! Strategy-2 prefetching).

use crate::config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec};
use crate::metrics::{ModeEvent, ProgramReport, RunReport};
use crate::sharded::{CrossShardMsg, SEv, ServerShard, SubReq};
use dualpar_cache::{CacheConfig, GlobalCache, NodeId, OwnerId};
use dualpar_core::{DualParConfig, Emc, ExecMode, IoClock, ProgramId, ReqDistTracker};
use dualpar_disk::{Disk, IoCtx, IoKind};
use dualpar_mpiio::{CoalescedIo, ProcessScript};
use dualpar_pfs::{FileId, FileRegion, Pvfs};
use dualpar_sim::{
    merge_batches, EventId, EventQueue, Link, ShardPool, SimDuration, SimTime, Slab, SlabKey,
    TimeSeries, WindowCell,
};
use dualpar_telemetry::{SpanId, SpanProfile, Telemetry, TelemetryConfig};
use dualpar_sim::{FxHashMap, FxHashSet};

/// Safety valve: a single experiment should never need more events.
const MAX_EVENTS: u64 = 2_000_000_000;

/// Below this many events in a round, the next round runs its server
/// windows inline on the coordinator: dispatching near-empty windows to
/// worker threads costs more in barrier traffic than it saves. The
/// threshold reads only simulation state, so the inline/parallel decision
/// — which affects *where* windows run, never *what* they compute — is
/// itself deterministic.
const SMALL_ROUND_EVENTS: u64 = 64;

/// Events driving the client shard (programs, processes, the cache, EMC).
/// Everything server-side lives in [`crate::sharded::SEv`] on the per-data-
/// server shards.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A program begins.
    Start(usize),
    /// A process is ready to advance its script.
    ProcReady(usize),
    /// A response was delivered back; one sub-request of a group is done.
    SubDone { group: SlabKey },
    /// A ghost pre-execution finished its walk.
    GhostDone { prog: usize, proc: usize },
    /// A pre-execution phase hit its fill-time bound.
    PhaseTimeout { prog: usize, seq: u64 },
    /// EMC sampling slot boundary.
    EmcTick,
}

/// Why a completion group exists — dispatched when its last sub-request
/// finishes.
#[derive(Debug, Clone)]
pub(crate) enum Purpose {
    /// One region of a vanilla (independent, synchronous) call.
    VanillaRegion { proc: usize },
    /// A Strategy-2 prefetch of a single predicted region.
    S2Prefetch {
        proc: usize,
        file: FileId,
        region: FileRegion,
    },
    /// Direct fetch issued after a mis-predicted region was detected.
    DirectFetch { proc: usize },
    /// All aggregator accesses of one collective call.
    CollIo { prog: usize },
    /// Collective shuffle phase finished (modelled as a delay event).
    CollResume { prog: usize },
    /// DualPar phase stages, in order.
    PhaseFill { prog: usize },
    PhaseWriteback { prog: usize },
    PhasePrefetch { prog: usize },
    /// Stand-alone write-back (program completion or mode revert).
    FlushWriteback { prog: usize, finalize: bool },
}

impl Purpose {
    /// Short label for per-purpose telemetry (group latency histograms).
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Purpose::VanillaRegion { .. } => "vanilla_region",
            Purpose::S2Prefetch { .. } => "s2_prefetch",
            Purpose::DirectFetch { .. } => "direct_fetch",
            Purpose::CollIo { .. } => "coll_io",
            Purpose::CollResume { .. } => "coll_resume",
            Purpose::PhaseFill { .. } => "phase_fill",
            Purpose::PhaseWriteback { .. } => "phase_writeback",
            Purpose::PhasePrefetch { .. } => "phase_prefetch",
            Purpose::FlushWriteback { .. } => "flush_writeback",
        }
    }
}

#[derive(Debug)]
pub(crate) struct Group {
    pub remaining: usize,
    pub purpose: Purpose,
    /// When the group was opened (for completion-latency histograms).
    pub opened: SimTime,
}

/// Process execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PState {
    /// Waiting for a scheduled ProcReady (computing, or newly started).
    Computing,
    /// Blocked on a vanilla I/O op; regions are issued one at a time.
    VanillaIo { op: usize, next_region: usize },
    BarrierWait(u64),
    CollWait,
    /// Suspended in a data-driven phase. `retry_op` says whether the
    /// current op must be re-executed on resume (read miss) or was already
    /// applied (write that filled the cache).
    Suspended { retry_op: bool },
    /// Strategy 2: waiting for in-flight prefetches covering the op.
    S2Wait { op: usize },
    Done,
}

pub(crate) struct Proc {
    pub prog: usize,
    pub rank: usize,
    pub node: u32,
    pub ctx: IoCtx,
    /// Shared, immutable per-rank script. Behind an `Arc` so the hot
    /// execution paths can detach a cheap handle and borrow ops out of it
    /// while mutating the rest of the cluster — no per-op deep clones.
    pub script: std::sync::Arc<ProcessScript>,
    pub pos: usize,
    pub state: PState,
    pub clock: IoClock,
    /// When the current op (or suspension) began.
    pub op_start: SimTime,
    pub last_io_end: SimTime,
    pub owner: OwnerId,
    /// Ghost pre-execution resume point (never behind `pos`).
    pub ghost_pos: usize,
    /// Op index that already triggered a phase/prefetch: a second miss on
    /// it falls back to a direct fetch (mis-prediction escape hatch).
    pub miss_trigger_op: Option<usize>,
    /// Bytes the ghost recorded in the current phase (resume accounting).
    pub phase_bytes: u64,
    /// Regions waited on under Strategy 2.
    pub s2_waiting: FxHashSet<(u32, u64, u64)>,
    /// Recorded-but-not-yet-issued Strategy-2 prefetches (async window).
    pub s2_queue: std::collections::VecDeque<(FileId, FileRegion)>,
    /// Prefetch requests currently outstanding at the servers.
    pub s2_outstanding: usize,
    /// Pending ghost recording (applied at GhostDone).
    pub pending_ghost: Vec<(FileId, FileRegion)>,
    /// Event id of the scheduled GhostDone (cancellable at phase timeout).
    pub ghost_ev: Option<EventId>,
    /// Covers being issued for the current vanilla op (after sieving).
    pub cur_covers: Vec<FileRegion>,
    /// Whether a direct-fetch group for the current op is outstanding.
    pub direct_pending: bool,
    /// The open `proc.*` state span (INVALID when spans are off or the
    /// process is done).
    pub state_span: SpanId,
    /// Name of the open state span, used to skip no-op flips when a
    /// `PState` change stays within the same span category.
    pub state_span_name: Option<&'static str>,
    /// The open `proc.ghost` overlay span (child of the suspended span).
    pub ghost_span: SpanId,
}

/// Key identifying a process in `proc.*` spans: program index in the high
/// 32 bits, rank in the low 32 (rendered `p<prog>/r<rank>`).
pub(crate) fn proc_span_key(prog: usize, rank: usize) -> u64 {
    ((prog as u64) << 32) | rank as u64
}

/// The span category a process state falls into. `None` for `Done` (no
/// span while finished). Blocking states collapse into `proc.blocked_io`;
/// barrier waits are their own category so synchronization time is not
/// misattributed to the I/O system.
fn pstate_span_name(state: &PState) -> Option<&'static str> {
    match state {
        PState::Computing => Some("proc.compute"),
        PState::VanillaIo { .. } | PState::S2Wait { .. } | PState::CollWait => {
            Some("proc.blocked_io")
        }
        PState::BarrierWait(_) => Some("proc.barrier"),
        PState::Suspended { .. } => Some("proc.suspended"),
        PState::Done => None,
    }
}

/// Program-level phase of the data-driven machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Phase {
    Normal,
    /// Ghosts running; waiting for every live process to block and record.
    PreExec { waiting_ghosts: usize },
    /// Batch stages in flight.
    Fill,
    Writeback,
    Prefetch,
}

pub(crate) struct CollectState {
    pub arrived: Vec<Option<Vec<FileRegion>>>,
    pub count: usize,
    pub kind: Option<IoKind>,
    pub file: Option<FileId>,
}

pub(crate) struct Program {
    pub name: String,
    pub strategy: IoStrategy,
    pub procs: std::ops::Range<usize>,
    pub files: FxHashSet<FileId>,
    pub mode: ExecMode,
    pub phase: Phase,
    pub phase_seq: u64,
    pub phase_timeout: Option<EventId>,
    pub recordings: Vec<(OwnerId, FileId, FileRegion)>,
    /// Writes planned for after the fill stage.
    pub staged_writes: Vec<CoalescedIo>,
    pub staged_prefetch: Vec<CoalescedIo>,
    pub barrier_waits: FxHashMap<u64, Vec<usize>>,
    pub coll: CollectState,
    pub started: bool,
    pub start: SimTime,
    pub finish: Option<SimTime>,
    pub done_procs: usize,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub io_time: SimDuration,
    pub phases: u64,
    pub mis_sum: f64,
    pub mis_n: u64,
    pub final_flush_pending: bool,
    /// Exchange volume/messages of the collective call in flight.
    pub coll_exchange: (u64, u64),
    /// When the current pre-execution phase opened (telemetry).
    pub phase_opened: SimTime,
}

impl Program {
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }
}

/// The assembled cluster simulator: the client shard (programs, processes,
/// cache, EMC) plus one [`ServerShard`] cell per data server. The cells
/// are `Option`s only so the conservative-parallel runtime can move them
/// to worker threads for a window and back; between rounds every cell is
/// home (`Some`).
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) pvfs: Pvfs,
    pub(crate) cache: GlobalCache,
    pub(crate) emc: Emc,
    pub(crate) servers: Vec<Option<ServerShard>>,
    pub(crate) node_links: Vec<Link>,
    pub(crate) req_dist: Vec<ReqDistTracker>,
    pub(crate) procs: Vec<Proc>,
    pub(crate) programs: Vec<Program>,
    pub(crate) groups: Slab<Group>,
    /// Monotonic sub-request id counter (ids are globally unique per run).
    pub(crate) next_sub_id: u64,
    /// Outbound client→server requests of the current window, applied at
    /// the barrier exchange.
    pub(crate) outbox: Vec<(SimTime, CrossShardMsg)>,
    /// The absolute time of the next scheduled `EmcTick`, which clips the
    /// window horizon: the tick needs exclusive access to every shard, so
    /// it runs in a serial section between rounds.
    pub(crate) next_tick: Option<SimTime>,
    pub(crate) s2_inflight: FxHashMap<(u32, u64, u64), Vec<usize>>,
    pub(crate) rng: dualpar_sim::DetRng,
    pub(crate) timeline: TimeSeries,
    pub(crate) mode_events: Vec<ModeEvent>,
    pub(crate) emc_improvement: Vec<(f64, f64)>,
    pub(crate) events_processed: u64,
    /// Time of the most recently handled event (monotonicity invariant).
    pub(crate) last_event_time: SimTime,
    pub(crate) finished_programs: usize,
    pub(crate) emc_active: bool,
    pub(crate) next_ctx: u32,
    pub(crate) tele: Telemetry,
    /// Epoch-stamped scratch for [`Cluster::cache_access_time`]: per-node
    /// byte accumulators that survive across calls so the hot path never
    /// allocates. A stamp older than `cat_epoch` means "logically zero".
    cat_bytes: Vec<u64>,
    cat_stamp: Vec<u64>,
    cat_epoch: u64,
    /// Reusable buffer for the `(home, bytes)` lists the data-driven paths
    /// feed into `cache_access_time` (taken and returned around each use).
    pub(crate) homes_scratch: Vec<(NodeId, u64)>,
}

// The parallel suite runner builds and runs whole clusters on scoped worker
// threads, so `Cluster` must stay `Send`. Compile-time check, no runtime cost.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Cluster>();
};

impl Cluster {
    /// Assemble a cluster from its configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let pvfs = Pvfs::new(
            cfg.num_data_servers,
            cfg.stripe_size,
            cfg.disk.capacity_sectors,
            cfg.alloc.clone(),
        );
        let cache = GlobalCache::new(CacheConfig {
            chunk_size: cfg.stripe_size,
            num_nodes: cfg.num_compute_nodes,
            idle_ttl: SimDuration::from_secs(30),
            node_capacity: u64::MAX,
        });
        let emc = Emc::new(cfg.dualpar.clone());
        let servers = (0..cfg.num_data_servers)
            .map(|id| Some(ServerShard::new(id, &cfg)))
            .collect();
        let node_links = (0..cfg.num_compute_nodes)
            .map(|_| Link::new(cfg.net_latency, cfg.net_bandwidth))
            .collect();
        let req_dist = (0..cfg.num_compute_nodes)
            .map(|_| ReqDistTracker::new())
            .collect();
        let rng = dualpar_sim::DetRng::for_stream(cfg.seed, "cluster");
        let tele = Telemetry::new(&cfg.telemetry);
        let nnodes = cfg.num_compute_nodes as usize;
        Cluster {
            cfg,
            queue: EventQueue::new(),
            rng,
            pvfs,
            cache,
            emc,
            servers,
            node_links,
            req_dist,
            procs: Vec::new(),
            programs: Vec::new(),
            groups: Slab::with_capacity(64),
            next_sub_id: 0,
            outbox: Vec::new(),
            next_tick: None,
            s2_inflight: FxHashMap::default(),
            timeline: TimeSeries::new(SimDuration::from_secs(1)),
            mode_events: Vec::new(),
            emc_improvement: Vec::new(),
            events_processed: 0,
            last_event_time: SimTime::ZERO,
            finished_programs: 0,
            emc_active: false,
            next_ctx: 1,
            tele,
            cat_bytes: vec![0; nnodes],
            cat_stamp: vec![0; nnodes],
            cat_epoch: 0,
            homes_scratch: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// DualPar's thresholds and quotas.
    pub fn dualpar_config(&self) -> &DualParConfig {
        &self.cfg.dualpar
    }

    /// Create a file in the parallel file system.
    pub fn create_file(&mut self, name: &str, size: u64) -> FileId {
        self.pvfs.create(name, size)
    }

    /// Register a program for execution. Returns its index.
    pub fn add_program(&mut self, spec: ProgramSpec) -> usize {
        assert!(
            spec.script.barriers_consistent(),
            "program {} has inconsistent barrier sequences",
            spec.script.name
        );
        let idx = self.programs.len();
        let nprocs = spec.script.nprocs();
        let name = spec.script.name.clone();
        let first_proc = self.procs.len();
        let mut files = FxHashSet::default();
        for (rank, script) in spec.script.ranks.into_iter().enumerate() {
            for op in &script.ops {
                if let dualpar_mpiio::Op::Io(call) = op {
                    files.insert(call.file);
                }
            }
            let node = (rank as u32) % self.cfg.num_compute_nodes;
            let ctx = IoCtx(self.next_ctx);
            self.next_ctx += 1;
            self.procs.push(Proc {
                prog: idx,
                rank,
                node,
                ctx,
                script: std::sync::Arc::new(script),
                pos: 0,
                state: PState::Computing,
                clock: IoClock::new(),
                op_start: SimTime::ZERO,
                last_io_end: SimTime::ZERO,
                owner: OwnerId(((idx as u64) << 32) | rank as u64),
                ghost_pos: 0,
                miss_trigger_op: None,
                phase_bytes: 0,
                s2_waiting: FxHashSet::default(),
                s2_queue: std::collections::VecDeque::new(),
                s2_outstanding: 0,
                pending_ghost: Vec::new(),
                ghost_ev: None,
                cur_covers: Vec::new(),
                direct_pending: false,
                state_span: SpanId::INVALID,
                state_span_name: None,
                ghost_span: SpanId::INVALID,
            });
        }
        for f in &files {
            assert!(
                self.pvfs.meta(*f).is_some(),
                "program {} references file {f:?} that was never created",
                name
            );
        }
        let mode = if spec.strategy == IoStrategy::DualParForced {
            ExecMode::DataDriven
        } else {
            ExecMode::ComputationDriven
        };
        if spec.strategy == IoStrategy::DualPar {
            self.emc.register(ProgramId(idx as u32));
            self.emc_active = true;
        }
        self.programs.push(Program {
            name,
            strategy: spec.strategy,
            procs: first_proc..first_proc + nprocs,
            files,
            mode,
            phase: Phase::Normal,
            phase_seq: 0,
            phase_timeout: None,
            recordings: Vec::new(),
            staged_writes: Vec::new(),
            staged_prefetch: Vec::new(),
            barrier_waits: FxHashMap::default(),
            coll: CollectState {
                arrived: vec![None; nprocs],
                count: 0,
                kind: None,
                file: None,
            },
            started: false,
            start: spec.start_at,
            finish: None,
            done_procs: 0,
            bytes_read: 0,
            bytes_written: 0,
            io_time: SimDuration::ZERO,
            phases: 0,
            mis_sum: 0.0,
            mis_n: 0,
            final_flush_pending: false,
            coll_exchange: (0, 0),
            phase_opened: SimTime::ZERO,
        });
        self.queue.schedule(spec.start_at, Ev::Start(idx));
        idx
    }

    /// Access a server's disk (for trace inspection after a run).
    pub fn disk(&self, server: u32) -> &Disk {
        &self.servers[server as usize]
            .as_ref()
            .expect("server cell home between rounds")
            .disk
    }

    /// The telemetry instance (counters, series, and the event trace).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Write the recorded JSONL event trace to `w`. Emits nothing below
    /// [`dualpar_telemetry::TelemetryLevel::Trace`].
    pub fn export_trace<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.tele.trace().export_jsonl(w)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    // ----- network + disk plumbing ------------------------------------

    /// Translate a fine-grained issuing identity into the disk-scheduler
    /// context the data server's kernel would actually see.
    pub(crate) fn effective_ctx(&self, prog: usize, fine: IoCtx) -> IoCtx {
        match self.cfg.ctx_mode {
            CtxMode::PerServer => IoCtx(0),
            CtxMode::PerClient => fine,
            CtxMode::PerProgram => IoCtx(prog as u32 + 1),
        }
    }


    /// Time to move the listed `(home, bytes)` chunks between this compute
    /// node and the cache. Accesses are batched per home node (a Memcached
    /// multi-get/multi-set): one round trip per distinct remote node plus
    /// the transfer volume, memory-copy cost for local chunks.
    pub(crate) fn cache_access_time(&mut self, node: u32, homes: &[(NodeId, u64)]) -> SimDuration {
        let mut t = SimDuration::from_micros(1);
        let mut local = 0u64;
        // Dense per-node accumulator: node ids are small contiguous
        // integers, so indexing beats hashing on this per-access path. The
        // accumulators persist across calls, stamped with a per-call epoch —
        // a stale stamp reads as "untouched", so there is nothing to clear
        // and the whole batch charge runs allocation-free. A touched remote
        // node costs its round-trip latency even for an empty payload.
        self.cat_epoch += 1;
        let epoch = self.cat_epoch;
        for &(home, bytes) in homes {
            if home.0 == node {
                local += bytes;
            } else {
                let i = home.0 as usize;
                if self.cat_stamp[i] != epoch {
                    self.cat_stamp[i] = epoch;
                    self.cat_bytes[i] = 0;
                }
                self.cat_bytes[i] += bytes;
            }
        }
        t += SimDuration::for_transfer(local, self.cfg.mem_bandwidth);
        for i in 0..self.cat_stamp.len() {
            if self.cat_stamp[i] == epoch {
                t += self.cfg.net_latency
                    + SimDuration::for_transfer(self.cat_bytes[i], self.cfg.net_bandwidth);
            }
        }
        t
    }

    // ----- span plumbing ------------------------------------------------

    /// Re-derive process `p`'s state-span category from its current
    /// [`PState`] and, if it changed, close the old span and open the new
    /// one at logical time `at`. `at` may lie ahead of the queue clock (a
    /// suspension taking effect when its triggering op completes); the
    /// mirrored trace events stay monotone via their `stamp`.
    ///
    /// Call *after* every `PState` assignment that can change category.
    pub(crate) fn sync_proc_span(&mut self, p: usize, at: SimTime) {
        if !self.tele.spans_enabled() {
            return;
        }
        let name = pstate_span_name(&self.procs[p].state);
        if name == self.procs[p].state_span_name {
            return;
        }
        let stamp = self.queue.now().as_secs_f64();
        let at = at.as_secs_f64();
        self.tele.span_close(stamp, self.procs[p].state_span, at);
        let key = proc_span_key(self.procs[p].prog, self.procs[p].rank);
        self.procs[p].state_span = match name {
            Some(n) => self.tele.span_open(stamp, at, n, SpanId::INVALID, key),
            None => SpanId::INVALID,
        };
        self.procs[p].state_span_name = name;
    }

    /// Record a blocked-I/O interval `[from, until]` for a process whose
    /// `PState` never leaves `Computing` — the inline cache-served ops that
    /// account their completion at a scheduled future instant (data-driven
    /// cache hits and writes).
    pub(crate) fn proc_blocked_span(&mut self, p: usize, from: SimTime, until: SimTime) {
        if !self.tele.spans_enabled() {
            return;
        }
        let stamp = self.queue.now().as_secs_f64();
        let key = proc_span_key(self.procs[p].prog, self.procs[p].rank);
        self.tele
            .span_close(stamp, self.procs[p].state_span, from.as_secs_f64());
        let blocked = self
            .tele
            .span_open(stamp, from.as_secs_f64(), "proc.blocked_io", SpanId::INVALID, key);
        self.tele.span_close(stamp, blocked, until.as_secs_f64());
        self.procs[p].state_span =
            self.tele
                .span_open(stamp, until.as_secs_f64(), "proc.compute", SpanId::INVALID, key);
        self.procs[p].state_span_name = Some("proc.compute");
    }

    /// Close the process's ghost overlay span (if any) at `at`.
    pub(crate) fn close_ghost_span(&mut self, p: usize, at: SimTime) {
        let gs = std::mem::replace(&mut self.procs[p].ghost_span, SpanId::INVALID);
        self.tele
            .span_close(self.queue.now().as_secs_f64(), gs, at.as_secs_f64());
    }

    /// Allocate a completion group.
    pub(crate) fn new_group(&mut self, purpose: Purpose) -> SlabKey {
        let opened = self.queue.now();
        self.groups.insert(Group {
            remaining: 0,
            purpose,
            opened,
        })
    }

    /// Issue the accesses of `ios` (already coalesced covers) to the data
    /// servers, attached to `group`. Requests leave through `node`'s NIC
    /// with context `ctx`. Returns the number of sub-requests issued.
    pub(crate) fn issue_covers(
        &mut self,
        now: SimTime,
        group: SlabKey,
        node: u32,
        ctx: IoCtx,
        kind: IoKind,
        ios: &[(FileId, FileRegion)],
    ) -> usize {
        let mut subs = Vec::new();
        for &(file, region) in ios {
            for run in self.pvfs.resolve(file, region) {
                subs.push((run.server, run.lbn, run.sectors, run.bytes));
            }
        }
        let n = subs.len();
        self.groups.get_mut(group).expect("group exists").remaining += n;
        for (server, lbn, sectors, bytes) in subs {
            let (req_msg, resp_bytes) = match kind {
                IoKind::Read => (self.cfg.msg_header, bytes),
                IoKind::Write => (self.cfg.msg_header + bytes, 0),
            };
            let id = self.next_sub_id;
            self.next_sub_id += 1;
            let (mut life, mut stage) = (SpanId::INVALID, SpanId::INVALID);
            if self.tele.spans_enabled() {
                // `now` may be ahead of the queue clock (Strategy-2 pumps
                // issue at jittered future instants); stamp with the clock.
                let stamp = self.queue.now().as_secs_f64();
                let at = now.as_secs_f64();
                life = self.tele.span_open(stamp, at, "req.life", SpanId::INVALID, id);
                stage = self.tele.span_open(stamp, at, "req.issue", life, id);
            }
            // The request crosses the shard boundary: it rides the outbox
            // to the barrier exchange, which schedules the server's Recv.
            // `deliver ≥ now + net_latency ≥ horizon`, so the receiving
            // window is always a later one.
            let deliver = self.node_links[node as usize].send(now, req_msg);
            self.outbox.push((
                deliver,
                CrossShardMsg::Request {
                    server: server.0,
                    sub: SubReq {
                        id,
                        lbn,
                        sectors,
                        kind,
                        ctx,
                        group,
                        resp_bytes,
                        life,
                        stage,
                    },
                },
            ));
        }
        n
    }

    /// If the group is already complete (zero sub-requests), dispatch its
    /// purpose immediately via a SubDone-like path.
    pub(crate) fn finish_if_empty(&mut self, now: SimTime, group: SlabKey) {
        if self.groups.get(group).is_some_and(|g| g.remaining == 0) {
            let g = self.groups.remove(group).expect("checked");
            self.dispatch_group(now, g);
        }
    }

    // ----- the event loop ----------------------------------------------

    /// Run until every program has finished, executing every shard inline
    /// on the calling thread. Identical output to [`Cluster::run_sharded`]
    /// at any shard count. Returns the report.
    pub fn run(&mut self) -> RunReport {
        self.run_sharded(1)
    }

    /// Run until every program has finished, executing data-server windows
    /// on up to `shards` worker threads (clamped to the server count;
    /// `shards <= 1` runs everything inline).
    ///
    /// The algorithm is conservative parallel discrete-event simulation
    /// with the network's one-way latency as lookahead. Each round:
    ///
    /// 1. `global_next` = earliest pending event across every shard.
    /// 2. If the next EMC tick is at `global_next`, run a serial section
    ///    instead (the tick reads every disk's seek window).
    /// 3. Otherwise the window horizon is
    ///    `min(global_next + net_latency, next_tick)`; every shard
    ///    executes its events with `t < horizon` — in parallel, since no
    ///    message sent inside the window can be delivered before the
    ///    horizon.
    /// 4. At the barrier, outbound batches are exchanged in an order that
    ///    is a pure function of simulation state.
    ///
    /// `shards` therefore only chooses where windows execute; the
    /// simulation's output — report, trace, spans — is byte-identical at
    /// every value.
    pub fn run_sharded(&mut self, shards: usize) -> RunReport {
        if self.tele.tracing() {
            // Lead the trace with the thresholds this run decides against,
            // so the offline auditor validates EMC transitions with the
            // actual (possibly tuned) configuration.
            let dp = &self.cfg.dualpar;
            let (ratio, imp, mis) = (
                dp.io_ratio_threshold,
                dp.t_improvement,
                dp.misprefetch_threshold,
            );
            self.tele.event(0.0, "emc", "config", |e| {
                e.f64("io_ratio_threshold", ratio)
                    .f64("t_improvement", imp)
                    .f64("misprefetch_threshold", mis)
            });
        }
        if self.emc_active {
            let slot = self.cfg.dualpar.sample_slot;
            let at = SimTime::ZERO + slot;
            self.queue.schedule(at, Ev::EmcTick);
            self.next_tick = Some(at);
        }
        let lookahead = self.cfg.net_latency;
        let nservers = self.servers.len();
        let pool: Option<ShardPool<ServerShard>> =
            (shards > 1 && nservers > 1).then(|| ShardPool::new(shards.min(nservers)));
        let mut active: Vec<usize> = Vec::with_capacity(nservers);
        // No history before the first round: let the pool prove itself.
        let mut last_round_events = u64::MAX;
        loop {
            let mut global = self.queue.peek_time();
            for s in self.servers.iter_mut() {
                let t = s.as_mut().expect("cell home between rounds").queue.peek_time();
                global = match (global, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                };
            }
            let Some(gn) = global else { break };
            if self.next_tick == Some(gn) {
                // Serial section: the EMC tick is the earliest event, and
                // it reads every server's disk, so every cell must be
                // home. Drain the client events at exactly this instant
                // (the tick, plus anything scheduled alongside it); server
                // events at the same instant run in the following window —
                // a fixed, shard-count-independent ordering rule.
                while self.queue.peek_time() == Some(gn) {
                    let (now, ev) = self.queue.pop().expect("peeked event present");
                    self.events_processed += 1;
                    self.handle(now, ev);
                    if self.finished_programs == self.programs.len() && !self.programs.is_empty()
                    {
                        break;
                    }
                }
                self.exchange();
                if self.finished_programs == self.programs.len() && !self.programs.is_empty() {
                    break;
                }
                continue;
            }
            let mut horizon = gn.saturating_add(lookahead);
            if let Some(tick) = self.next_tick {
                horizon = horizon.min(tick);
            }
            active.clear();
            for (i, s) in self.servers.iter_mut().enumerate() {
                let peek = s.as_mut().expect("cell home between rounds").queue.peek_time();
                if peek.is_some_and(|t| t < horizon) {
                    active.push(i);
                }
            }
            let server_events = if active.is_empty() {
                // Client-only window. If every server queue is empty the
                // servers are fully quiescent (disk work always has a
                // DiskDone/DiskKick pending), so the client may run ahead
                // of the lookahead — up to the next tick, or until it
                // sends something a server must react to.
                let all_empty = self
                    .servers
                    .iter_mut()
                    .all(|s| s.as_mut().expect("cell home").queue.peek_time().is_none());
                if all_empty {
                    let h = self.next_tick.unwrap_or(SimTime::MAX);
                    self.run_client_window(h, true);
                } else {
                    self.run_client_window(horizon, false);
                }
                0
            } else if pool.is_some() && active.len() > 1 && last_round_events >= SMALL_ROUND_EVENTS
            {
                let pool = pool.as_ref().expect("checked");
                let mut cells = std::mem::take(&mut self.servers);
                let (sn, _) = pool.run_round(&mut cells, &active, horizon, || {
                    self.run_client_window(horizon, false)
                });
                self.servers = cells;
                sn
            } else {
                let mut sn = 0;
                for &i in &active {
                    sn += self.servers[i]
                        .as_mut()
                        .expect("cell home between rounds")
                        .run_window(horizon);
                }
                self.run_client_window(horizon, false);
                sn
            };
            self.events_processed += server_events;
            assert!(
                self.events_processed < MAX_EVENTS,
                "event budget exceeded — runaway simulation"
            );
            last_round_events = server_events;
            self.exchange();
            if self.finished_programs == self.programs.len() && !self.programs.is_empty() {
                break;
            }
        }
        self.report()
    }

    /// Execute the client shard's events with `t < horizon`. Stops early
    /// once every program has finished, or — in the extended (`stop_on_send`)
    /// window used while the servers are quiescent — as soon as an event
    /// queues an outbound request, which must reach its server before the
    /// client may run past `deliver` time.
    fn run_client_window(&mut self, horizon: SimTime, stop_on_send: bool) -> u64 {
        let mut n = 0u64;
        while self.queue.peek_time().is_some_and(|t| t < horizon) {
            let (now, ev) = self.queue.pop().expect("peeked event present");
            self.events_processed += 1;
            assert!(
                self.events_processed < MAX_EVENTS,
                "event budget exceeded — runaway simulation"
            );
            self.handle(now, ev);
            n += 1;
            if self.finished_programs == self.programs.len() && !self.programs.is_empty() {
                break;
            }
            if stop_on_send && !self.outbox.is_empty() {
                break;
            }
        }
        n
    }

    /// The window barrier's message exchange. Applies the client's
    /// outbound requests to the server queues in issue order, then merges
    /// every server's ack batch into the client queue ordered by
    /// `(deliver time, server)` — with ties inside one server kept in send
    /// order. Both orders are pure functions of simulation state, so
    /// delivery (and therefore FIFO pop order for same-time events) is
    /// identical at every shard/thread count.
    pub(crate) fn exchange(&mut self) {
        for (deliver, msg) in self.outbox.drain(..) {
            match msg {
                CrossShardMsg::Request { server, sub } => {
                    self.servers[server as usize]
                        .as_mut()
                        .expect("cell home at exchange")
                        .queue
                        .schedule(deliver, SEv::Recv(sub));
                }
                CrossShardMsg::Ack { .. } => unreachable!("client shard never emits acks"),
            }
        }
        if self
            .servers
            .iter()
            .all(|s| s.as_ref().expect("cell home").outbox.is_empty())
        {
            return;
        }
        let batches: Vec<Vec<(SimTime, CrossShardMsg)>> = self
            .servers
            .iter_mut()
            .map(|s| std::mem::take(&mut s.as_mut().expect("cell home").outbox))
            .collect();
        for (t, _src, msg) in merge_batches(batches) {
            match msg {
                CrossShardMsg::Ack { group } => {
                    self.queue.schedule(t, Ev::SubDone { group });
                }
                CrossShardMsg::Request { .. } => {
                    unreachable!("server shards never emit requests")
                }
            }
        }
    }

    /// Static counter name for an event kind (dispatch accounting).
    fn ev_counter(ev: &Ev) -> &'static str {
        match ev {
            Ev::Start(_) => "engine.ev.start",
            Ev::ProcReady(_) => "engine.ev.proc_ready",
            Ev::SubDone { .. } => "engine.ev.sub_done",
            Ev::GhostDone { .. } => "engine.ev.ghost_done",
            Ev::PhaseTimeout { .. } => "engine.ev.phase_timeout",
            Ev::EmcTick => "engine.ev.emc_tick",
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        dualpar_sim::strict_assert!(
            now >= self.last_event_time,
            "event time went backwards: {:?} < {:?}",
            now,
            self.last_event_time
        );
        self.last_event_time = now;
        self.tele.count(Self::ev_counter(&ev), 1);
        self.tele
            .gauge_max("engine.queue_depth_max", self.queue.len() as f64);
        match ev {
            Ev::Start(prog) => self.on_start(now, prog),
            Ev::ProcReady(p) => self.advance(now, p),
            Ev::SubDone { group } => {
                let done = {
                    let g = self.groups.get_mut(group).expect("live group");
                    dualpar_sim::strict_assert!(
                        g.remaining > 0,
                        "SubDone for group {group:?} with no outstanding sub-requests"
                    );
                    g.remaining -= 1;
                    g.remaining == 0
                };
                if done {
                    let g = self.groups.remove(group).expect("checked");
                    self.dispatch_group(now, g);
                }
            }
            Ev::GhostDone { prog, proc } => self.on_ghost_done(now, prog, proc),
            Ev::PhaseTimeout { prog, seq } => self.on_phase_timeout(now, prog, seq),
            Ev::EmcTick => self.on_emc_tick(now),
        }
    }

    fn on_start(&mut self, now: SimTime, prog: usize) {
        let program = &mut self.programs[prog];
        program.started = true;
        program.start = now;
        let range = program.procs.clone();
        if program.mode == ExecMode::DataDriven {
            // Forced-mode programs never pass through EMC, so record their
            // standing decision in the trace (not in `RunReport.mode_events`,
            // which is reserved for EMC-applied switches). Emitted here, at
            // the program's Start event, so the trace stays time-ordered.
            self.tele.count("emc.mode_forced", 1);
            self.tele.event(now.as_secs_f64(), "emc", "mode", |e| {
                e.u64("program", prog as u64)
                    .str("mode", ExecMode::DataDriven.label())
                    .str("reason", "forced")
            });
        }
        for p in range {
            self.procs[p].op_start = now;
            self.procs[p].last_io_end = now;
            // Opens the initial `proc.compute` span (state is `Computing`
            // and no span exists yet).
            self.sync_proc_span(p, now);
            self.queue.schedule(now, Ev::ProcReady(p));
        }
    }

    fn on_emc_tick(&mut self, now: SimTime) {
        // Gather seek-distance samples from every data server. The tick
        // runs in the serial section between rounds, so every shard cell
        // is home and its disk is directly readable.
        for s in self.servers.iter_mut() {
            let shard = s.as_mut().expect("cell home in serial section");
            if let Some(avg) = shard.disk.trace_mut().take_window_avg_seek() {
                self.emc.report_seek_dist(avg);
            }
        }
        // Request-distance samples from every compute node.
        for tracker in &mut self.req_dist {
            if let Some(avg) = tracker.take_avg_req_dist() {
                self.emc.report_req_dist(avg);
            }
        }
        // Per-program I/O ratios.
        for (idx, program) in self.programs.iter().enumerate() {
            if program.strategy != IoStrategy::DualPar || program.finish.is_some() {
                continue;
            }
            let mut io = 0u64;
            let mut total = 0u64;
            for p in program.procs.clone() {
                let (i, t) = self.procs[p].clock.take_sample();
                io += i;
                total += t;
            }
            self.emc.report_times(ProgramId(idx as u32), io, total);
        }
        let changes = self.emc.tick();
        let t = now.as_secs_f64();
        if let Some(imp) = self.emc.last_improvement() {
            if imp.is_finite() {
                self.emc_improvement.push((t, imp));
                self.tele.sample("emc.improvement", t, imp);
            }
        }
        if self.tele.enabled() {
            // Per-program slot observations: the io_ratio EMC saw, the
            // improvement ratio (absent when no samples arrived; `null` in
            // the JSONL when infinite), and the mode it decided on — one
            // series point and one trace record per program per tick.
            let improvement = self.emc.last_improvement();
            let samples: Vec<_> = self.emc.last_tick_samples().to_vec();
            for s in samples {
                self.tele
                    .sample(&format!("emc.io_ratio.p{}", s.program.0), t, s.io_ratio);
                self.tele.event(t, "emc", "tick", |e| {
                    let e = e
                        .u64("program", s.program.0 as u64)
                        .f64("io_ratio", s.io_ratio);
                    let e = match improvement {
                        Some(imp) => e.f64("improvement", imp),
                        None => e,
                    };
                    e.str("mode", s.mode.label()).u64("vetoed", s.vetoed as u64)
                });
            }
        }
        for ch in changes {
            let idx = ch.program.0 as usize;
            if self.programs[idx].finish.is_some() {
                continue;
            }
            self.programs[idx].mode = ch.mode;
            self.mode_events.push(ModeEvent {
                at: now,
                program_index: idx,
                mode: ch.mode,
            });
            self.tele.count("emc.mode_switches", 1);
            self.tele.event(t, "emc", "mode", |e| {
                e.u64("program", idx as u64)
                    .str("mode", ch.mode.label())
                    .str("reason", "emc")
            });
            if ch.mode == ExecMode::ComputationDriven {
                self.flush_on_revert(now, idx);
            }
        }
        self.cache.evict_idle(now);
        // Keep ticking while any adaptive program is unfinished.
        let live = self
            .programs
            .iter()
            .any(|p| p.strategy == IoStrategy::DualPar && p.finish.is_none());
        if live {
            let slot = self.cfg.dualpar.sample_slot;
            let at = now.saturating_add(slot);
            self.queue.schedule(at, Ev::EmcTick);
            self.next_tick = Some(at);
        } else {
            self.emc_active = false;
            self.next_tick = None;
        }
    }

    // ----- reporting ----------------------------------------------------

    /// Fold end-of-run substrate statistics (cache counters, disk seek and
    /// per-context service totals) into the telemetry registry so the final
    /// snapshot carries them. Runs after the shard streams are absorbed, so
    /// its events land at `end` — at or after every merged event — and the
    /// trace stays time-ordered. No-op when telemetry is off.
    fn finalize_telemetry(&mut self, end: SimTime) {
        // The conservation identity must hold whether or not telemetry is
        // on; under strict invariants, verify it against a full rescan.
        if cfg!(any(test, feature = "strict-invariants")) {
            self.cache.assert_conservation();
        }
        if !self.tele.enabled() {
            return;
        }
        let ledger = self.cache.prefetch_ledger();
        self.tele
            .event(end.as_secs_f64(), "cache", "conservation", |e| {
                e.u64("inserted", ledger.inserted)
                    .u64("consumed", ledger.consumed)
                    .u64("overwritten", ledger.overwritten)
                    .u64("evicted", ledger.evicted)
                    .u64("misprefetched", ledger.misprefetched)
                    .u64("unused_now", ledger.unused_now)
            });
        if self.tele.spans_enabled() {
            // Every lifecycle is complete by the time all programs finish:
            // state spans close at proc_done, request spans at delivery.
            // Cross-shard closes were applied by the merge, so the check
            // covers server-side lifecycles too. (Flush-daemon disk work
            // can outlive the run, but it never opens spans — its ids are
            // stale by ack time.)
            let open = self.tele.spans().open_count();
            dualpar_sim::strict_assert!(open == 0, "{open} spans left open at end of run");
            let total = self.tele.spans().len() as u64;
            self.tele.count("span.recorded", total);
            self.tele.count("span.unclosed", open);
        }
        let cs = self.cache.stats();
        self.tele.count("cache.read_probes", cs.read_probes);
        self.tele.count("cache.read_hits", cs.read_hits);
        self.tele
            .count("cache.read_misses", cs.read_probes - cs.read_hits);
        self.tele.count("cache.bytes_prefetched", cs.bytes_prefetched);
        self.tele.count("cache.bytes_written", cs.bytes_written);
        self.tele.count("cache.bytes_evicted", cs.bytes_evicted);
        self.tele.gauge_set("cache.dirty_hwm", cs.dirty_hwm as f64);
        let mut seek_total = 0u64;
        for i in 0..self.servers.len() {
            let disk = &self.servers[i].as_ref().expect("cell home").disk;
            let seek = disk.total_seek_distance();
            let busy = disk.total_busy().as_secs_f64();
            let per_ctx: Vec<f64> = disk
                .per_ctx_service()
                .values()
                .map(|d| d.as_secs_f64())
                .collect();
            seek_total += seek;
            self.tele
                .gauge_set(&format!("disk.d{i}.seek_sectors"), seek as f64);
            self.tele.gauge_set(&format!("disk.d{i}.busy_secs"), busy);
            for secs in per_ctx {
                self.tele.observe("disk.ctx_service_secs", secs);
            }
        }
        self.tele.count("disk.seek_sectors_total", seek_total);
        self.tele
            .gauge_set("engine.events_processed", self.events_processed as f64);
    }

    fn report(&mut self) -> RunReport {
        // The run ends where its last event ran, whichever shard that was.
        let end = self.servers.iter().fold(self.queue.now(), |e, s| {
            e.max(s.as_ref().expect("cell home").last_event_time)
        });
        // Stitch the per-shard telemetry streams into the client's: trace
        // rings merge in `(time, shard, position)` order, span logs get
        // their cross-shard closes applied, registries sum/max/merge.
        let shard_teles: Vec<Telemetry> = self
            .servers
            .iter_mut()
            .map(|s| {
                let shard = s.as_mut().expect("cell home");
                std::mem::replace(&mut shard.tele, Telemetry::new(&TelemetryConfig::default()))
            })
            .collect();
        self.tele.absorb_shards(shard_teles);
        self.finalize_telemetry(end);
        let programs = self
            .programs
            .iter()
            .map(|p| ProgramReport {
                name: p.name.clone(),
                nprocs: p.nprocs(),
                strategy: p.strategy.label(),
                start: p.start,
                finish: p.finish.unwrap_or(end),
                bytes_read: p.bytes_read,
                bytes_written: p.bytes_written,
                io_time: p.io_time,
                phases: p.phases,
                avg_misprefetch: if p.mis_n == 0 {
                    0.0
                } else {
                    p.mis_sum / p.mis_n as f64
                },
            })
            .collect();
        let span_profile = if self.tele.spans_enabled() {
            Some(SpanProfile::from_log(
                self.tele.spans(),
                end.as_secs_f64(),
                |k| format!("p{}/r{}", k >> 32, k & 0xFFFF_FFFF),
            ))
        } else {
            None
        };
        RunReport {
            programs,
            sim_end: end,
            throughput_timeline: self.timeline.clone(),
            mode_events: self.mode_events.clone(),
            emc_improvement: self.emc_improvement.clone(),
            disk_bytes: self
                .servers
                .iter()
                .map(|s| s.as_ref().expect("cell home").disk.bytes_serviced())
                .sum(),
            events_processed: self.events_processed,
            telemetry: self.tele.snapshot(),
            span_profile,
        }
    }

    /// Mark a program finished if all procs are done and nothing is
    /// pending.
    pub(crate) fn maybe_finish_program(&mut self, now: SimTime, prog: usize) {
        let program = &self.programs[prog];
        if program.finish.is_some() || program.done_procs < program.nprocs() {
            return;
        }
        // Flush any dirty cache contents belonging to this program first.
        if !program.final_flush_pending {
            let files = program.files.clone();
            let dirty = self.drain_dirty_for(&files);
            if !dirty.is_empty() {
                self.programs[prog].final_flush_pending = true;
                self.issue_flush(now, prog, dirty, true);
                return;
            }
        } else {
            return; // flush in flight; FlushWriteback will finish us
        }
        self.finish_program(now, prog);
    }

    pub(crate) fn finish_program(&mut self, now: SimTime, prog: usize) {
        let program = &mut self.programs[prog];
        debug_assert!(program.finish.is_none());
        program.finish = Some(now);
        self.finished_programs += 1;
        if program.strategy == IoStrategy::DualPar {
            self.emc.deregister(ProgramId(prog as u32));
        }
    }

    /// Drain dirty cache data belonging to the given files only.
    pub(crate) fn drain_dirty_for(&mut self, files: &FxHashSet<FileId>) -> Vec<(FileId, FileRegion)> {
        // The cache drains everything; re-buffer what belongs to others.
        // (Programs touch disjoint files in all experiments, so the
        // re-buffer path is rare; correctness is what matters.)
        let drained = self.cache.drain_dirty();
        let mut ours = Vec::new();
        let now = self.queue.now();
        for (f, r) in drained {
            if files.contains(&f) {
                ours.push((f, r));
            } else {
                // Not ours: put it back as dirty under a neutral owner.
                self.cache.put_write(OwnerId(u64::MAX), f, r, now);
            }
        }
        ours
    }
}
